//! Vendored stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no network access, so this crate implements the
//! subset of the proptest API that the workspace's property-based tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), [`Strategy`](strategy::Strategy) with
//! `prop_map`, integer-range and tuple strategies, [`strategy::Just`],
//! [`prop_oneof!`], [`collection::vec`], and the `prop_assert*` macros.
//!
//! Generation is pseudo-random but **deterministic**: every test function
//! derives its RNG seed from its own name, so failures reproduce across runs
//! and machines. The `proptest!` macro itself does not shrink; callers that
//! need minimization drive the standalone greedy reducer in [`shrink`].

pub mod shrink;
pub mod strategy;
pub mod test_runner;

/// Everything a property-based test usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Strategy for "any value of this type" (integers only in this stand-in).
    pub fn any<T: crate::strategy::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Generates a `Vec` whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the test case (with
/// the generated inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Picks one of several strategies (all producing the same value type)
/// uniformly at random for each generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Defines property-based test functions.
///
/// Mirrors the upstream macro shape: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg =
                                    $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                            )+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}
