//! Deterministic RNG, test configuration, and test-case failure type.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (carries the formatted assertion message).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A small, fast, deterministic RNG (splitmix64 core).
///
/// Seeds are derived from the test function's fully qualified name so runs
/// reproduce across machines without any persisted state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary string (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Seeds the RNG from a caller-chosen numeric seed.
    ///
    /// Distinct seeds map to distinct states; the `| 1` mirrors
    /// [`TestRng::from_name`]'s guarantee that the state is nonzero, and the
    /// multiplier decorrelates small consecutive seeds.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u128) -> u128 {
        // Modulo bias is irrelevant at the magnitudes tests use.
        self.next_u128() % bound
    }
}
