//! Greedy shrinking: reduce a failing value to a local minimum that still
//! fails.
//!
//! Upstream proptest interleaves shrinking with its `ValueTree` machinery;
//! this stand-in exposes the part the workspace needs as a standalone
//! fixed-point driver. A type opts in by implementing [`Shrink`], proposing
//! strictly-simpler candidate values; [`minimize`] repeatedly replaces the
//! current value with the first candidate that still satisfies the failure
//! predicate, until no candidate does (a local minimum) or the step budget
//! runs out.
//!
//! The driver is deterministic: candidates are tried in the order the
//! implementor returns them, and the predicate is the only source of
//! branching. Predicates are typically expensive (e.g. re-running a whole
//! verifier portfolio), so the budget bounds the total number of predicate
//! invocations, not just accepted steps.

/// Types that can propose strictly-simpler versions of themselves.
pub trait Shrink: Sized {
    /// Candidate simplifications, most aggressive first.
    ///
    /// Every candidate must be *strictly smaller* under some well-founded
    /// measure (fewer loop iterations, smaller constants, fewer statements),
    /// otherwise [`minimize`] may loop until the budget is exhausted instead
    /// of converging.
    fn shrink_candidates(&self) -> Vec<Self>;
}

/// Statistics from a [`minimize`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Number of candidates accepted (the value got simpler this many times).
    pub accepted: usize,
    /// Total predicate invocations, accepted or not.
    pub tested: usize,
    /// True when the run stopped because the budget ran out rather than
    /// because a local minimum was reached.
    pub budget_exhausted: bool,
}

/// Greedily minimizes `value` under `still_fails`.
///
/// `still_fails(&candidate)` must return `true` when the candidate still
/// exhibits the failure being minimized. The input `value` itself is assumed
/// to fail and is never re-tested. At most `budget` predicate calls are made.
pub fn minimize<T: Shrink>(
    mut value: T,
    mut still_fails: impl FnMut(&T) -> bool,
    budget: usize,
) -> (T, ShrinkStats) {
    let mut stats = ShrinkStats { accepted: 0, tested: 0, budget_exhausted: false };
    'outer: loop {
        let candidates = value.shrink_candidates();
        for candidate in candidates {
            if stats.tested >= budget {
                stats.budget_exhausted = true;
                break 'outer;
            }
            stats.tested += 1;
            if still_fails(&candidate) {
                value = candidate;
                stats.accepted += 1;
                continue 'outer;
            }
        }
        // No candidate still fails: local minimum.
        break;
    }
    (value, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Shrink for u32 {
        fn shrink_candidates(&self) -> Vec<u32> {
            if *self == 0 {
                return Vec::new();
            }
            let mut out = vec![*self / 2];
            if *self > 1 {
                out.push(*self - 1);
            }
            out
        }
    }

    #[test]
    fn converges_to_smallest_failing() {
        // Failure: value >= 17. Minimum failing value is 17.
        let (v, stats) = minimize(1000u32, |v| *v >= 17, 10_000);
        assert_eq!(v, 17);
        assert!(!stats.budget_exhausted);
        assert!(stats.accepted > 0);
    }

    #[test]
    fn budget_zero_returns_input() {
        let (v, stats) = minimize(99u32, |_| true, 0);
        assert_eq!(v, 99);
        assert!(stats.budget_exhausted);
        assert_eq!(stats.tested, 0);
    }
}
