//! Value-generation strategies: the subset of proptest's `Strategy` algebra
//! the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value using `rng`.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy (used by `prop_oneof!` so arms may have distinct types).
pub fn boxed<T>(s: impl Strategy<Value = T> + 'static) -> BoxedStrategy<T> {
    Box::new(s)
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between several strategies of the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be nonempty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u128) as usize;
        self.arms[i].new_value(rng)
    }
}

// The span is computed in 128-bit arithmetic so that narrow types with
// full-width ranges (e.g. `i8::MIN..i8::MAX`) do not wrap. For `start < end`
// the two's-complement difference modulo 2^128 is the true span, so casting
// the truncated draw back to `$t` and wrapping-adding is exact.
macro_rules! int_range_strategies {
    ($wide:ty; $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                if span == u128::MAX {
                    return rng.next_u128() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategies!(i128; i8, i16, i32, i64, i128, isize);
int_range_strategies!(u128; u8, u16, u32, u64, u128, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Length bounds for [`VecStrategy`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec-size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec-size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

/// Generates vectors with element strategy `S`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u128;
        let len = self.size.lo + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy (integers only here).
pub trait Arbitrary {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

arbitrary_ints!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);
