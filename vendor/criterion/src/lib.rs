//! Vendored stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no network access, so this crate implements the
//! subset of the Criterion API the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size`/`bench_function`/`finish`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a simple median-of-samples
//! measurement printed to stdout — adequate for relative comparisons, with
//! none of the statistical machinery of the original.

use std::time::Instant;

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored; present so
    /// `criterion_group!`'s default expansion keeps working).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 20 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id, 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Finishes the group (no-op; reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under `iter`.
pub struct Bencher {
    samples: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after one warmup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!("{id:<48} median {} ({} samples)", format_ns(median), bencher.samples.len());
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
