//! Invariant maps and their validation.
//!
//! An invariant map assigns a formula to (a subset of) the program locations.
//! Following §3 of the paper it is *safe and inductive* when the entry is
//! mapped to `true`, every transition preserves it, and the error location is
//! mapped to `false`.  The checker below verifies those conditions with the
//! combined solver; it is used both by the test-suite (to validate the output
//! of the synthesisers against an independent semantic check) and by the
//! template-refinement heuristics.

use crate::error::{InvgenError, InvgenResult};
use pathinv_ir::{Formula, Loc, Program};
use pathinv_smt::Solver;
use std::collections::BTreeMap;

/// An invariant map: a formula per location.  Locations that are absent are
/// treated as mapped to `true` (no information).
#[derive(Clone, Debug, Default)]
pub struct InvariantMap {
    /// The formula at each location.
    pub at: BTreeMap<Loc, Formula>,
}

impl InvariantMap {
    /// Creates an empty map (every location `true`).
    pub fn new() -> InvariantMap {
        InvariantMap::default()
    }

    /// The invariant at a location (`true` if absent).
    pub fn get(&self, l: Loc) -> Formula {
        self.at.get(&l).cloned().unwrap_or(Formula::True)
    }

    /// Sets the invariant at a location.
    pub fn set(&mut self, l: Loc, f: Formula) -> &mut Self {
        self.at.insert(l, f);
        self
    }

    /// Conjoins a formula to the invariant at a location.
    pub fn strengthen(&mut self, l: Loc, f: Formula) -> &mut Self {
        let cur = self.get(l);
        self.at.insert(l, Formula::and(vec![cur, f]));
        self
    }

    /// Checks conditions (I0)–(I2) of §3: initiation, inductiveness, and
    /// safety, using the combined solver for the entailment checks.
    ///
    /// Returns `Ok(())` when the map is a safe inductive invariant map and a
    /// descriptive error otherwise.
    pub fn check(&self, program: &Program) -> InvgenResult<()> {
        let solver = Solver::new();
        // (I0) Initiation.
        if !self.get(program.entry()).is_trivially_true() {
            let ok = solver.is_valid(&self.get(program.entry())).map_err(InvgenError::from)?;
            if !ok {
                return Err(InvgenError::no_invariant(
                    "initiation fails: the entry invariant is not `true`",
                ));
            }
        }
        // (I2) Safety.
        let err_inv = self.get(program.error());
        let err_ok = !solver.is_sat(&err_inv).map_err(InvgenError::from)?;
        if !err_ok {
            return Err(InvgenError::no_invariant(
                "safety fails: the error invariant is satisfiable",
            ));
        }
        // (I1) Inductiveness, one transition at a time.
        for t in program.transitions() {
            let pre = self.get(t.from);
            let post = self.get(t.to);
            if post.is_trivially_true() {
                continue;
            }
            let rel = t.action.to_relation(program.vars());
            let ante = Formula::and(vec![pre.clone(), rel]);
            let ok = solver.entails(&ante, &post.primed()).map_err(InvgenError::from)?;
            if !ok {
                return Err(InvgenError::no_invariant(format!(
                    "inductiveness fails on {} -> {} ({}): {} does not imply {}",
                    program.loc_label(t.from),
                    program.loc_label(t.to),
                    t.action,
                    pre,
                    post
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_ir::{corpus, Term};

    #[test]
    fn forward_manual_invariant_map_checks() {
        // The invariant map from §2.1 of the paper, adapted to our CFG labels.
        let p = corpus::forward();
        let l1 = corpus::find_loc(&p, "L1");
        let l5 = corpus::find_loc(&p, "L5");
        let mut m = InvariantMap::new();
        let a_plus_b = Term::var("a").add(Term::var("b"));
        m.set(
            l1,
            Formula::and(vec![
                Formula::eq(a_plus_b.clone(), Term::int(3).mul(Term::var("i"))),
                Formula::le(a_plus_b.clone(), Term::int(3).mul(Term::var("n"))),
                Formula::le(Term::var("i"), Term::var("n")),
            ]),
        );
        m.set(l5, Formula::eq(a_plus_b, Term::int(3).mul(Term::var("n"))));
        m.set(p.error(), Formula::False);
        // Also constrain the intermediate locations so inductiveness holds
        // edge by edge.
        let l0b = corpus::find_loc(&p, "L0b");
        m.set(l0b, Formula::ge(Term::var("n"), Term::int(0)));
        let l2 = corpus::find_loc(&p, "L2");
        let l3 = corpus::find_loc(&p, "L3");
        let l4 = corpus::find_loc(&p, "L4");
        let body = Formula::and(vec![
            Formula::eq(Term::var("a").add(Term::var("b")), Term::int(3).mul(Term::var("i"))),
            Formula::lt(Term::var("i"), Term::var("n")),
            Formula::le(Term::var("a").add(Term::var("b")), Term::int(3).mul(Term::var("n"))),
        ]);
        m.set(l2, body.clone());
        m.set(l3, body);
        m.set(
            l4,
            Formula::and(vec![
                Formula::eq(
                    Term::var("a").add(Term::var("b")),
                    Term::int(3).mul(Term::var("i")).add(Term::int(3)),
                ),
                Formula::le(Term::var("i").add(Term::int(1)), Term::var("n")),
                Formula::le(Term::var("a").add(Term::var("b")), Term::int(3).mul(Term::var("n"))),
            ]),
        );
        m.check(&p).unwrap();
    }

    #[test]
    fn wrong_invariant_map_is_rejected() {
        let p = corpus::forward();
        let l1 = corpus::find_loc(&p, "L1");
        let mut m = InvariantMap::new();
        // Too weak: does not rule out the error location.
        m.set(l1, Formula::ge(Term::var("i"), Term::int(0)));
        m.set(p.error(), Formula::False);
        assert!(m.check(&p).is_err());
    }

    #[test]
    fn missing_locations_default_to_true() {
        let p = corpus::forward();
        let m = InvariantMap::new();
        // Everything `true` except the error location is fine for
        // inductiveness but fails safety when error is reachable... here the
        // error invariant is `true`, so safety fails.
        let mut m2 = m.clone();
        m2.set(p.error(), Formula::False);
        assert!(m2.check(&p).is_err(), "false at error is not inductive with true elsewhere");
        assert_eq!(m.get(Loc(0)), Formula::True);
    }

    #[test]
    fn strengthen_conjoins() {
        let mut m = InvariantMap::new();
        m.strengthen(Loc(1), Formula::ge(Term::var("x"), Term::int(0)));
        m.strengthen(Loc(1), Formula::le(Term::var("x"), Term::int(5)));
        assert_eq!(m.get(Loc(1)).conjuncts().len(), 2);
    }
}
