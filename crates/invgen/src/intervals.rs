//! Interval abstract interpretation with widening.
//!
//! The paper notes (§1, §4.2) that the path-invariant framework "can equally
//! well be instantiated with an algorithm based on abstract interpretation".
//! This module provides that alternative instantiation for the scalar
//! fragment: a classic interval analysis over the control-flow graph with
//! widening at loop heads.  The ablation benchmark compares it against the
//! constraint-based template synthesiser on the scalar path programs: it is
//! much cheaper but cannot express relational facts such as `a + b = 3i`,
//! which is precisely the motivation for the template-based instantiation.

use pathinv_ir::{Action, Atom, Formula, Loc, Program, RelOp, Symbol, Term};
use std::collections::BTreeMap;

/// An integer interval with optional (±∞) bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (`None` = −∞).
    pub lo: Option<i128>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i128>,
}

impl Interval {
    /// The full interval (no information).
    pub const TOP: Interval = Interval { lo: None, hi: None };

    /// The singleton interval `[c, c]`.
    pub fn constant(c: i128) -> Interval {
        Interval { lo: Some(c), hi: Some(c) }
    }

    /// Whether the interval is empty (`lo > hi`).
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// Least upper bound.
    pub fn join(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Standard widening: bounds that grew are dropped to ±∞.
    pub fn widen(&self, newer: &Interval) -> Interval {
        if self.is_empty() {
            return *newer;
        }
        if newer.is_empty() {
            return *self;
        }
        Interval {
            lo: match (self.lo, newer.lo) {
                (Some(a), Some(b)) if b < a => None,
                (lo, _) => lo,
            },
            hi: match (self.hi, newer.hi) {
                (Some(a), Some(b)) if b > a => None,
                (hi, _) => hi,
            },
        }
    }

    /// Interval addition.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.zip(other.lo).and_then(|(a, b)| a.checked_add(b)),
            hi: self.hi.zip(other.hi).and_then(|(a, b)| a.checked_add(b)),
        }
    }

    /// Interval negation.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: self.hi.and_then(|h| h.checked_neg()),
            hi: self.lo.and_then(|l| l.checked_neg()),
        }
    }

    /// Multiplication by a constant.
    pub fn scale(&self, k: i128) -> Interval {
        if k == 0 {
            return Interval::constant(0);
        }
        let a = self.lo.and_then(|l| l.checked_mul(k));
        let b = self.hi.and_then(|h| h.checked_mul(k));
        if k > 0 {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// Intersection.
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (Some(a), None) | (None, Some(a)) => Some(a),
                (None, None) => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) | (None, Some(a)) => Some(a),
                (None, None) => None,
            },
        }
    }
}

/// An abstract environment: an interval per integer variable.
pub type IntervalEnv = BTreeMap<Symbol, Interval>;

fn eval_term(t: &Term, env: &IntervalEnv) -> Interval {
    match t {
        Term::Const(c) => Interval::constant(*c),
        Term::Var(v) => env.get(&v.sym).copied().unwrap_or(Interval::TOP),
        Term::Add(a, b) => eval_term(a, env).add(&eval_term(b, env)),
        Term::Sub(a, b) => eval_term(a, env).add(&eval_term(b, env).neg()),
        Term::Neg(a) => eval_term(a, env).neg(),
        Term::Mul(a, b) => {
            if let Some(k) = a.as_const() {
                eval_term(b, env).scale(k)
            } else if let Some(k) = b.as_const() {
                eval_term(a, env).scale(k)
            } else {
                Interval::TOP
            }
        }
        _ => Interval::TOP,
    }
}

/// Refines the environment with an atomic guard of the simple shapes
/// `x ⋈ constant-or-variable` (more complex guards are ignored — sound).
fn refine(env: &mut IntervalEnv, atom: &Atom) {
    let (var, op, bound) = match (&atom.lhs, &atom.rhs) {
        (Term::Var(v), _) => (v.sym, atom.op, eval_term(&atom.rhs, env)),
        (_, Term::Var(v)) => (v.sym, atom.op.flip(), eval_term(&atom.lhs, env)),
        _ => return,
    };
    let cur = env.get(&var).copied().unwrap_or(Interval::TOP);
    let refined = match op {
        RelOp::Eq => cur.meet(&bound),
        RelOp::Le => cur.meet(&Interval { lo: None, hi: bound.hi }),
        RelOp::Lt => cur.meet(&Interval { lo: None, hi: bound.hi.map(|h| h - 1) }),
        RelOp::Ge => cur.meet(&Interval { lo: bound.lo, hi: None }),
        RelOp::Gt => cur.meet(&Interval { lo: bound.lo.map(|l| l + 1), hi: None }),
        RelOp::Ne => {
            // Only the singleton-vs-singleton case can be refined exactly.
            if cur.lo == cur.hi && cur.lo.is_some() && cur.lo == bound.lo && cur.hi == bound.hi {
                Interval { lo: Some(1), hi: Some(0) }
            } else {
                cur
            }
        }
    };
    env.insert(var, refined);
}

fn transfer(action: &Action, env: &IntervalEnv) -> Option<IntervalEnv> {
    let mut out = env.clone();
    match action {
        Action::Skip | Action::ArrayAssign { .. } => {}
        Action::Havoc(xs) => {
            for x in xs {
                out.insert(*x, Interval::TOP);
            }
        }
        Action::Assume(g) => {
            for c in g.conjuncts() {
                if let Formula::Atom(a) = c {
                    refine(&mut out, &a);
                }
            }
            if out.values().any(Interval::is_empty) {
                return None;
            }
        }
        Action::Assign(asgs) => {
            let values: Vec<(Symbol, Interval)> =
                asgs.iter().map(|(x, t)| (*x, eval_term(t, env))).collect();
            for (x, v) in values {
                out.insert(x, v);
            }
        }
    }
    Some(out)
}

/// Result of the interval analysis.
#[derive(Clone, Debug)]
pub struct IntervalAnalysis {
    /// Abstract environment per reachable location.
    pub envs: BTreeMap<Loc, IntervalEnv>,
}

impl IntervalAnalysis {
    /// Whether the error location was proved unreachable.
    pub fn proves_safety(&self, program: &Program) -> bool {
        !self.envs.contains_key(&program.error())
    }

    /// Renders the abstract environment at a location as a formula.
    pub fn invariant_at(&self, l: Loc) -> Formula {
        let Some(env) = self.envs.get(&l) else { return Formula::False };
        let mut parts = Vec::new();
        for (x, iv) in env {
            if let Some(lo) = iv.lo {
                parts.push(Formula::ge(Term::var(*x), Term::int(lo)));
            }
            if let Some(hi) = iv.hi {
                parts.push(Formula::le(Term::var(*x), Term::int(hi)));
            }
        }
        Formula::and(parts)
    }
}

/// Runs the interval analysis to a post-fixpoint, widening at loop heads
/// after `widen_after` visits.
pub fn analyze(program: &Program, widen_after: usize) -> IntervalAnalysis {
    let heads = pathinv_ir::analysis::cutpoints(program);
    let mut envs: BTreeMap<Loc, IntervalEnv> = BTreeMap::new();
    envs.insert(program.entry(), IntervalEnv::new());
    let mut visits: BTreeMap<Loc, usize> = BTreeMap::new();
    let mut work: Vec<Loc> = vec![program.entry()];
    while let Some(l) = work.pop() {
        let env = envs.get(&l).cloned().unwrap_or_default();
        for &tid in program.outgoing(l) {
            let t = program.transition(tid);
            let Some(next) = transfer(&t.action, &env) else { continue };
            let target = t.to;
            let merged = match envs.get(&target) {
                None => next,
                Some(existing) => {
                    let mut joined = existing.clone();
                    for (x, iv) in &next {
                        let cur = joined.get(x).copied().unwrap_or(*iv);
                        joined.insert(*x, cur.join(iv));
                    }
                    // Variables absent from `next` are unconstrained there.
                    let keys: Vec<Symbol> = joined.keys().copied().collect();
                    for x in keys {
                        if !next.contains_key(&x) {
                            joined.insert(x, Interval::TOP);
                        }
                    }
                    let count = visits.entry(target).or_insert(0);
                    *count += 1;
                    if heads.contains(&target) && *count > widen_after {
                        let mut widened = existing.clone();
                        for (x, iv) in &joined {
                            let old = existing.get(x).copied().unwrap_or(Interval::TOP);
                            widened.insert(*x, old.widen(iv));
                        }
                        widened
                    } else {
                        joined
                    }
                }
            };
            if envs.get(&target) != Some(&merged) {
                envs.insert(target, merged);
                work.push(target);
            }
        }
    }
    IntervalAnalysis { envs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_ir::{corpus, parse_program};

    #[test]
    fn interval_lattice_operations() {
        let a = Interval { lo: Some(0), hi: Some(5) };
        let b = Interval { lo: Some(3), hi: Some(10) };
        assert_eq!(a.join(&b), Interval { lo: Some(0), hi: Some(10) });
        assert_eq!(a.meet(&b), Interval { lo: Some(3), hi: Some(5) });
        assert!(Interval { lo: Some(4), hi: Some(2) }.is_empty());
        assert_eq!(a.widen(&b), Interval { lo: Some(0), hi: None });
        assert_eq!(a.widen(&a), a);
    }

    #[test]
    fn interval_arithmetic() {
        let a = Interval { lo: Some(1), hi: Some(2) };
        let b = Interval { lo: Some(-1), hi: Some(3) };
        assert_eq!(a.add(&b), Interval { lo: Some(0), hi: Some(5) });
        assert_eq!(a.neg(), Interval { lo: Some(-2), hi: Some(-1) });
        assert_eq!(a.scale(-2), Interval { lo: Some(-4), hi: Some(-2) });
        assert_eq!(Interval::TOP.add(&a), Interval::TOP);
    }

    #[test]
    fn proves_simple_bounds_program() {
        // i counts from 0 to 10; assert i <= 10 at exit: intervals suffice.
        let p = parse_program(
            "proc bounded() {
                var i: int;
                i = 0;
                while (i < 10) { i = i + 1; }
                assert(i <= 10);
            }",
        )
        .unwrap();
        // A widening delay larger than the loop bound lets the analysis reach
        // the exact fixpoint [0, 10] (the classic precision/termination
        // trade-off of the interval domain).
        let analysis = analyze(&p, 20);
        assert!(analysis.proves_safety(&p), "intervals prove the bounded-counter program");
    }

    #[test]
    fn cannot_prove_relational_forward() {
        // FORWARD needs the relational fact a + b = 3i, which intervals cannot
        // express: the error location stays (abstractly) reachable.
        let p = corpus::forward();
        let analysis = analyze(&p, 2);
        assert!(!analysis.proves_safety(&p));
    }

    #[test]
    fn invariant_rendering() {
        let p =
            parse_program("proc r() { var i: int; i = 3; while (*) { skip; } assert(i == 3); }")
                .unwrap();
        let analysis = analyze(&p, 2);
        // Find some reachable location where i is pinned to 3.
        let pinned = p
            .locs()
            .filter(|l| analysis.envs.contains_key(l))
            .any(|l| analysis.invariant_at(l).to_string().contains("i >= 3"));
        assert!(pinned);
        assert!(analysis.proves_safety(&p));
    }

    #[test]
    fn unreachable_location_is_false() {
        let p = parse_program("proc u(x: int) { assume(false); assert(x == 0); }").unwrap();
        let analysis = analyze(&p, 2);
        assert!(analysis.proves_safety(&p));
        assert_eq!(analysis.invariant_at(p.error()), Formula::False);
    }
}
