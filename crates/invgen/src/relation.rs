//! Cut points and basic-path relations.
//!
//! Constraint-based invariant generation works on a *cutset* of the program —
//! the loop-head locations — and on the *basic paths* between cut points: the
//! acyclic control-flow paths that start at a cut point (or the entry) and
//! end at the next cut point (or the error location) without passing through
//! another cut point in between.  Each basic path is compiled into a
//! transition relation in constraint form: a conjunction of linear
//! constraints over SSA-tagged variables, plus the array writes and array
//! reads performed along the path (kept symbolic for the quantified-template
//! reduction of §4.2).

use crate::error::{InvgenError, InvgenResult};
use pathinv_ir::analysis::cutpoints as loop_heads;
use pathinv_ir::{Action, Atom, Formula, Loc, Program, RelOp, Symbol, Term, TransId, VarRef};
use pathinv_smt::{LinConstraint, LinExpr};
use std::collections::{BTreeMap, BTreeSet};

/// An array write `array[index] := value` along a basic path, with the index
/// and value expressed over the path's SSA-tagged variables.
#[derive(Clone, Debug)]
pub struct ArrayWrite {
    /// The written array.
    pub array: Symbol,
    /// The index expression.
    pub index: LinExpr<VarRef>,
    /// The written value.
    pub value: LinExpr<VarRef>,
}

/// An array read `array[index]` along a basic path, abstracted by a fresh
/// result variable.
#[derive(Clone, Debug)]
pub struct ArrayRead {
    /// The read array.
    pub array: Symbol,
    /// The index expression.
    pub index: LinExpr<VarRef>,
    /// The fresh variable standing for the read value.
    pub result: VarRef,
}

/// One disjunct of a basic-path relation (disequality guards are split into
/// cases at compile time so that every case is a pure conjunction).
#[derive(Clone, Debug, Default)]
pub struct RelationCase {
    /// Scalar constraints over the tagged variables (strict inequalities are
    /// already tightened using integrality).
    pub scalar: Vec<LinConstraint<VarRef>>,
    /// Array writes, in program order.
    pub writes: Vec<ArrayWrite>,
    /// Array reads, in program order.
    pub reads: Vec<ArrayRead>,
}

impl RelationCase {
    /// The writes to a particular array.
    pub fn writes_to(&self, array: Symbol) -> Vec<&ArrayWrite> {
        self.writes.iter().filter(|w| w.array == array).collect()
    }

    /// The reads from a particular array.
    pub fn reads_from(&self, array: Symbol) -> Vec<&ArrayRead> {
        self.reads.iter().filter(|r| r.array == array).collect()
    }
}

/// A basic path between cut points, compiled to constraint form.
#[derive(Clone, Debug)]
pub struct BasicPath {
    /// Source location (a cut point or the program entry).
    pub from: Loc,
    /// Target location (a cut point or the error location).
    pub to: Loc,
    /// The transitions of the path.
    pub trans: Vec<TransId>,
    /// The disjuncts of the relation.
    pub cases: Vec<RelationCase>,
    /// Pre-state variable of each scalar program variable.
    pub pre: BTreeMap<Symbol, VarRef>,
    /// Post-state variable of each scalar program variable.
    pub post: BTreeMap<Symbol, VarRef>,
}

/// The set of cut points used for invariant synthesis: the loop heads of the
/// program.
pub fn cutset(program: &Program) -> BTreeSet<Loc> {
    loop_heads(program)
}

/// Enumerates and compiles all basic paths of the program with respect to its
/// cutset.
///
/// # Errors
///
/// Returns an error if a guard or assignment is not linear.
pub fn basic_paths(program: &Program) -> InvgenResult<Vec<BasicPath>> {
    let cuts = cutset(program);
    let mut sources: Vec<Loc> = cuts.iter().copied().collect();
    if !cuts.contains(&program.entry()) {
        sources.insert(0, program.entry());
    }
    let mut out = Vec::new();
    for &src in &sources {
        let mut stack: Vec<Vec<TransId>> = program.outgoing(src).iter().map(|&t| vec![t]).collect();
        while let Some(path) = stack.pop() {
            let last = program.transition(*path.last().expect("non-empty path"));
            let here = last.to;
            if cuts.contains(&here) || here == program.error() {
                out.push(compile_basic_path(program, src, here, &path)?);
                continue;
            }
            if program.outgoing(here).is_empty() {
                // A terminal non-error location: no invariant obligation.
                continue;
            }
            for &next in program.outgoing(here) {
                // Basic paths are acyclic by construction (every cycle
                // contains a cut point), but guard against malformed inputs.
                if path.len() > program.num_locs() + 1 {
                    return Err(InvgenError::unsupported(
                        "cycle without a cut point while enumerating basic paths",
                    ));
                }
                let mut longer = path.clone();
                longer.push(next);
                stack.push(longer);
            }
        }
    }
    Ok(out)
}

/// Compiles a single basic path (given by its transition ids) into constraint
/// form.
pub fn compile_basic_path(
    program: &Program,
    from: Loc,
    to: Loc,
    trans: &[TransId],
) -> InvgenResult<BasicPath> {
    let mut versions: BTreeMap<Symbol, u32> = BTreeMap::new();
    for d in program.vars() {
        versions.insert(d.sym, 0);
    }
    let mut cases = vec![RelationCase::default()];
    for &tid in trans {
        let t = program.transition(tid);
        cases = apply_action(&t.action, &mut versions, cases)?;
    }
    let pre: BTreeMap<Symbol, VarRef> =
        program.int_vars().into_iter().map(|s| (s, VarRef::idx(s, 0))).collect();
    let post: BTreeMap<Symbol, VarRef> = program
        .int_vars()
        .into_iter()
        .map(|s| (s, VarRef::idx(s, versions.get(&s).copied().unwrap_or(0))))
        .collect();
    Ok(BasicPath { from, to, trans: trans.to_vec(), cases, pre, post })
}

fn rename_term(t: &Term, versions: &BTreeMap<Symbol, u32>) -> Term {
    t.map_vars(&|v| {
        if v.tag == pathinv_ir::Tag::Cur {
            Term::Var(VarRef::idx(v.sym, versions.get(&v.sym).copied().unwrap_or(0)))
        } else {
            Term::Var(v)
        }
    })
}

/// Abstracts array reads in a term, recording them, and returns a read-free
/// term.
// `versions` is threaded through for symmetry with `apply_action`; reads are
// currently abstracted version-insensitively.
#[allow(clippy::only_used_in_recursion)]
fn abstract_reads(
    t: &Term,
    versions: &BTreeMap<Symbol, u32>,
    reads: &mut Vec<ArrayRead>,
) -> InvgenResult<Term> {
    match t {
        Term::Const(_) | Term::Var(_) | Term::Bound(_) => Ok(t.clone()),
        Term::Add(a, b) => Ok(Term::Add(
            Box::new(abstract_reads(a, versions, reads)?),
            Box::new(abstract_reads(b, versions, reads)?),
        )),
        Term::Sub(a, b) => Ok(Term::Sub(
            Box::new(abstract_reads(a, versions, reads)?),
            Box::new(abstract_reads(b, versions, reads)?),
        )),
        Term::Neg(a) => Ok(Term::Neg(Box::new(abstract_reads(a, versions, reads)?))),
        Term::Mul(a, b) => Ok(Term::Mul(
            Box::new(abstract_reads(a, versions, reads)?),
            Box::new(abstract_reads(b, versions, reads)?),
        )),
        Term::Select(arr, idx) => {
            let array = match arr.as_ref() {
                Term::Var(v) => v.sym,
                other => {
                    return Err(InvgenError::unsupported(format!(
                        "read from a non-variable array expression `{other}`"
                    )))
                }
            };
            let idx = abstract_reads(idx, versions, reads)?;
            let idx_expr = LinExpr::from_term(&idx)?;
            if let Some(existing) = reads.iter().find(|r| r.array == array && r.index == idx_expr) {
                return Ok(Term::Var(existing.result));
            }
            let result = VarRef::cur(Symbol::fresh(&format!("rd_{array}")));
            reads.push(ArrayRead { array, index: idx_expr, result });
            Ok(Term::Var(result))
        }
        Term::Store(..) | Term::App(..) => {
            Err(InvgenError::unsupported(format!("unexpected term `{t}` in a guarded command")))
        }
    }
}

/// Converts an atom (with reads already renamed/abstracted) into one or two
/// relation cases' worth of constraints.
fn atom_cases(a: &Atom) -> InvgenResult<Vec<Vec<LinConstraint<VarRef>>>> {
    match a.op {
        RelOp::Ne => {
            let lt = LinConstraint::from_atom(&Atom::new(a.lhs.clone(), RelOp::Lt, a.rhs.clone()))?
                .tighten_for_integers()?;
            let gt = LinConstraint::from_atom(&Atom::new(a.lhs.clone(), RelOp::Gt, a.rhs.clone()))?
                .tighten_for_integers()?;
            Ok(vec![vec![lt], vec![gt]])
        }
        _ => Ok(vec![vec![LinConstraint::from_atom(a)?.tighten_for_integers()?]]),
    }
}

fn apply_action(
    action: &Action,
    versions: &mut BTreeMap<Symbol, u32>,
    cases: Vec<RelationCase>,
) -> InvgenResult<Vec<RelationCase>> {
    match action {
        Action::Skip => Ok(cases),
        Action::Havoc(xs) => {
            for x in xs {
                *versions.entry(*x).or_insert(0) += 1;
            }
            Ok(cases)
        }
        Action::Assume(g) => {
            // The guard is a conjunction of atoms (lowering splits
            // disjunctions across parallel edges).
            let mut per_atom: Vec<Vec<Vec<LinConstraint<VarRef>>>> = Vec::new();
            let mut new_reads: Vec<ArrayRead> = Vec::new();
            for conj in g.conjuncts() {
                match conj {
                    Formula::True => {}
                    Formula::False => return Ok(vec![]),
                    Formula::Atom(a) => {
                        let lhs = abstract_reads(
                            &rename_term(&a.lhs, versions),
                            versions,
                            &mut new_reads,
                        )?;
                        let rhs = abstract_reads(
                            &rename_term(&a.rhs, versions),
                            versions,
                            &mut new_reads,
                        )?;
                        per_atom.push(atom_cases(&Atom::new(lhs, a.op, rhs))?);
                    }
                    other => {
                        return Err(InvgenError::unsupported(format!(
                            "non-atomic guard `{other}` in a basic path"
                        )))
                    }
                }
            }
            // Cartesian product of the per-atom case splits.
            let mut out = Vec::new();
            for case in cases {
                let mut partials = vec![case];
                for alternatives in &per_atom {
                    let mut next = Vec::new();
                    for p in &partials {
                        for alt in alternatives {
                            let mut q = p.clone();
                            q.scalar.extend(alt.iter().cloned());
                            next.push(q);
                        }
                    }
                    partials = next;
                }
                for mut p in partials {
                    p.reads.extend(new_reads.iter().cloned());
                    out.push(p);
                }
            }
            Ok(out)
        }
        Action::Assign(asgs) => {
            let mut eqs = Vec::new();
            let mut new_reads = Vec::new();
            let renamed: Vec<(Symbol, Term)> = asgs
                .iter()
                .map(|(x, t)| {
                    Ok::<_, InvgenError>((
                        *x,
                        abstract_reads(&rename_term(t, versions), versions, &mut new_reads)?,
                    ))
                })
                .collect::<InvgenResult<_>>()?;
            for (x, t) in renamed {
                let next = versions.get(&x).copied().unwrap_or(0) + 1;
                versions.insert(x, next);
                eqs.push(LinConstraint::eq(
                    LinExpr::var(VarRef::idx(x, next)),
                    LinExpr::from_term(&t)?,
                )?);
            }
            Ok(cases
                .into_iter()
                .map(|mut c| {
                    c.scalar.extend(eqs.iter().cloned());
                    c.reads.extend(new_reads.iter().cloned());
                    c
                })
                .collect())
        }
        Action::ArrayAssign { array, index, value } => {
            let mut new_reads = Vec::new();
            let idx = abstract_reads(&rename_term(index, versions), versions, &mut new_reads)?;
            let val = abstract_reads(&rename_term(value, versions), versions, &mut new_reads)?;
            let write = ArrayWrite {
                array: *array,
                index: LinExpr::from_term(&idx)?,
                value: LinExpr::from_term(&val)?,
            };
            Ok(cases
                .into_iter()
                .map(|mut c| {
                    c.writes.push(write.clone());
                    c.reads.extend(new_reads.iter().cloned());
                    c
                })
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_ir::corpus;

    #[test]
    fn forward_basic_paths() {
        let p = corpus::forward();
        let paths = basic_paths(&p).unwrap();
        // Entry -> L1, L1 -> L1 (then), L1 -> L1 (else), L1 -> ERR, plus the
        // L1 -> EXIT path is dropped (terminal non-error) ... the assertion
        // success edge ends at EXIT which is terminal, so it is skipped.
        let to_l1 = paths.iter().filter(|bp| p.loc_label(bp.to) == "L1").count();
        let to_err = paths.iter().filter(|bp| bp.to == p.error()).count();
        assert_eq!(to_l1, 3, "entry->L1 and two loop-body paths");
        assert_eq!(to_err, 1);
        // The error path relation has one case (its guard a+b != 3n splits)...
        let err_path = paths.iter().find(|bp| bp.to == p.error()).unwrap();
        assert_eq!(err_path.cases.len(), 2, "disequality splits into two cases");
    }

    #[test]
    fn forward_loop_body_relation_is_linear() {
        let p = corpus::forward();
        let paths = basic_paths(&p).unwrap();
        let body = paths
            .iter()
            .find(|bp| p.loc_label(bp.from) == "L1" && p.loc_label(bp.to) == "L1")
            .unwrap();
        assert_eq!(body.cases.len(), 1);
        let case = &body.cases[0];
        // [i < n]; a := a+1; b := b+2 (or the else variant); i := i+1.
        assert_eq!(case.scalar.len(), 4);
        assert!(case.writes.is_empty());
        assert!(case.reads.is_empty());
        // Post map reflects the increments.
        let i = Symbol::intern("i");
        assert_ne!(body.pre[&i], body.post[&i]);
    }

    #[test]
    fn initcheck_relations_record_array_accesses() {
        let p = corpus::initcheck();
        let paths = basic_paths(&p).unwrap();
        let init_body = paths
            .iter()
            .find(|bp| {
                p.loc_label(bp.from) == "L1"
                    && p.loc_label(bp.to) == "L1"
                    && bp.cases.iter().any(|c| !c.writes.is_empty())
            })
            .expect("init loop body");
        let w = &init_body.cases[0].writes[0];
        assert_eq!(w.array, Symbol::intern("a"));
        assert!(w.value.is_constant());

        let err_path = paths.iter().find(|bp| bp.to == p.error()).expect("error path");
        assert!(err_path.cases.iter().all(|c| !c.reads.is_empty()));
        // The read result variable appears in the scalar constraints (a[i] != 0
        // split into < and >).
        for case in &err_path.cases {
            let rd = case.reads[0].result;
            assert!(case.scalar.iter().any(|c| !c.expr.coeff(&rd).is_zero()));
        }
    }

    #[test]
    fn cutset_is_loop_heads() {
        let p = corpus::initcheck();
        let cs = cutset(&p);
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn partition_basic_paths_have_single_array_write_each() {
        let p = corpus::partition();
        let paths = basic_paths(&p).unwrap();
        for bp in &paths {
            for case in &bp.cases {
                for array in [Symbol::intern("ge"), Symbol::intern("lt")] {
                    assert!(
                        case.writes_to(array).len() <= 1,
                        "at most one write per template array per basic path"
                    );
                }
            }
        }
        // The first-loop body reads `a` and writes `ge` or `lt`.
        let body_with_write = paths
            .iter()
            .find(|bp| bp.cases.iter().any(|c| !c.writes.is_empty()))
            .expect("loop body with a write");
        let case = body_with_write.cases.iter().find(|c| !c.writes.is_empty()).unwrap();
        assert!(!case.reads.is_empty(), "the written value comes from a read of `a`");
    }

    #[test]
    fn reads_at_same_index_share_a_variable() {
        let p = corpus::initcheck();
        let paths = basic_paths(&p).unwrap();
        // The check-loop body contains the read a[i] (in the pass guard); the
        // error path contains it in the fail guard.  Within one case the same
        // syntactic read maps to one variable.
        for bp in paths {
            for case in bp.cases {
                let mut seen = BTreeMap::new();
                for r in &case.reads {
                    let key = (r.array, format!("{:?}", r.index));
                    if let Some(prev) = seen.insert(key, r.result) {
                        assert_eq!(prev, r.result);
                    }
                }
            }
        }
    }
}
