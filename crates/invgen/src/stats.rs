//! Thread-local synthesis counters, mirroring `pathinv_smt::stats`.
//!
//! The conflict-driven frontier search ([`synth`](crate::synth)) and the
//! cross-refinement synthesis memo (in `pathinv-core`) do work that the
//! solver-call counters cannot see: branches skipped because a learned
//! conflict core covers them never reach the simplex at all, and memoized
//! syntheses never run the search.  These counters make that invisible work
//! measurable, deterministically: they depend only on the task and the
//! configuration, never on the machine or the worker count (the batch
//! harness pins each task to one worker thread and measures with
//! [`snapshot`] deltas, exactly as it does for the solver counters).

use std::cell::Cell;

/// A snapshot of the synthesis counters for the current thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SynthCounters {
    /// LP feasibility systems actually handed to the simplex by the
    /// frontier search (witness-satisfied and conflict-pruned extensions
    /// are *not* counted — they cost no solving).
    pub systems_solved: u64,
    /// Frontier branches (partial-solution × multiplier-choice extensions)
    /// considered by the search, including pruned ones.
    pub branches_explored: u64,
    /// Branches skipped without any solver work: a learned conflict core
    /// covered the decision set, or presolve refuted the extension on
    /// constant/contradictory rows alone.
    pub branches_pruned: u64,
    /// Conflict cores learned from infeasible extensions (IIS extraction
    /// plus presolve-detected contradictions).
    pub cores_learned: u64,
    /// Syntheses answered from the cross-refinement memo without running
    /// the search (recorded by the path-invariant refiner in
    /// `pathinv-core`).
    pub memo_hits: u64,
}

impl SynthCounters {
    /// The counter deltas accumulated since `earlier` (a snapshot taken
    /// earlier on the *same thread*).
    #[must_use]
    pub fn since(&self, earlier: &SynthCounters) -> SynthCounters {
        SynthCounters {
            systems_solved: self.systems_solved - earlier.systems_solved,
            branches_explored: self.branches_explored - earlier.branches_explored,
            branches_pruned: self.branches_pruned - earlier.branches_pruned,
            cores_learned: self.cores_learned - earlier.cores_learned,
            memo_hits: self.memo_hits - earlier.memo_hits,
        }
    }
}

thread_local! {
    static COUNTERS: Cell<SynthCounters> = const {
        Cell::new(SynthCounters {
            systems_solved: 0,
            branches_explored: 0,
            branches_pruned: 0,
            cores_learned: 0,
            memo_hits: 0,
        })
    };
}

/// Returns the current thread's cumulative synthesis counters.
pub fn snapshot() -> SynthCounters {
    COUNTERS.with(Cell::get)
}

fn bump(f: impl FnOnce(&mut SynthCounters)) {
    COUNTERS.with(|s| {
        let mut v = s.get();
        f(&mut v);
        s.set(v);
    });
}

pub(crate) fn record_system_solved() {
    bump(|s| s.systems_solved += 1);
}

pub(crate) fn record_branch_explored() {
    bump(|s| s.branches_explored += 1);
}

pub(crate) fn record_branch_pruned() {
    bump(|s| s.branches_pruned += 1);
}

/// Folds a delta measured on another thread into this thread's counters.
/// The parallel beam evaluator's workers record into their own thread-local
/// counters; the coordinator folds the deltas back so a caller's
/// [`snapshot`] delta around the whole synthesis stays accurate.
pub(crate) fn add(delta: &SynthCounters) {
    bump(|s| {
        s.systems_solved += delta.systems_solved;
        s.branches_explored += delta.branches_explored;
        s.branches_pruned += delta.branches_pruned;
        s.cores_learned += delta.cores_learned;
        s.memo_hits += delta.memo_hits;
    });
}

pub(crate) fn record_core_learned() {
    bump(|s| s.cores_learned += 1);
}

/// Records a synthesis answered from the cross-refinement memo.  Public
/// because the memo lives in `pathinv-core` (it is keyed on interned path
/// programs, which only the refiner sees).
pub fn record_memo_hit() {
    bump(|s| s.memo_hits += 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_componentwise() {
        let before = snapshot();
        record_system_solved();
        record_branch_explored();
        record_branch_explored();
        record_branch_pruned();
        record_core_learned();
        record_memo_hit();
        let delta = snapshot().since(&before);
        assert_eq!(
            delta,
            SynthCounters {
                systems_solved: 1,
                branches_explored: 2,
                branches_pruned: 1,
                cores_learned: 1,
                memo_hits: 1,
            }
        );
    }
}
