//! Invariant templates: parametric assertions whose unknown coefficients are
//! instantiated by constraint solving (§4.2 of the paper).
//!
//! A template at a cut point is a conjunction of *scalar rows* — parametric
//! linear equalities/inequalities over the program variables, e.g.
//! `c_i·i + c_n·n + c_a·a + c_b·b + c ≤ 0` — optionally conjoined with one
//! *array row*
//!
//! ```text
//! ∀k: p1(X) ≤ k ∧ k ≤ p2(X) → a[k] ⋈ p3(X)
//! ```
//!
//! where `p1, p2, p3` are again parametric linear expressions.  This is
//! exactly the "tractable form" the paper uses in its experiments.

use crate::error::{InvgenError, InvgenResult};
use pathinv_ir::{Formula, Loc, RelOp, Symbol, Term, VarRef};
use pathinv_smt::{LinExpr, Rat, SmtError};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a template parameter (an unknown rational coefficient).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ParamId(pub u32);

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A pool of template parameters with human-readable names.
#[derive(Clone, Debug, Default)]
pub struct ParamPool {
    names: Vec<String>,
}

impl ParamPool {
    /// Creates an empty pool.
    pub fn new() -> ParamPool {
        ParamPool::default()
    }

    /// Allocates a fresh parameter with the given descriptive name.
    pub fn fresh(&mut self, name: impl Into<String>) -> ParamId {
        self.names.push(name.into());
        ParamId((self.names.len() - 1) as u32)
    }

    /// The descriptive name of a parameter.
    pub fn name(&self, p: ParamId) -> &str {
        &self.names[p.0 as usize]
    }

    /// The number of parameters allocated so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A valuation of template parameters.
pub type ParamValuation = BTreeMap<ParamId, Rat>;

/// A *parametric* linear expression over program variables: each coefficient
/// (and the constant) is itself an affine expression over the template
/// parameters.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ParamLin {
    /// Coefficient of each program variable, as an affine function of the
    /// parameters.
    pub coeffs: BTreeMap<VarRef, LinExpr<ParamId>>,
    /// Constant part, as an affine function of the parameters.
    pub constant: LinExpr<ParamId>,
}

impl ParamLin {
    /// The zero expression.
    pub fn zero() -> ParamLin {
        ParamLin::default()
    }

    /// A concrete (parameter-free) expression.
    pub fn concrete(e: &LinExpr<VarRef>) -> ParamLin {
        let mut coeffs = BTreeMap::new();
        for (v, c) in e.terms() {
            coeffs.insert(*v, LinExpr::constant(c));
        }
        ParamLin { coeffs, constant: LinExpr::constant(e.constant_part()) }
    }

    /// The expression `p` (a bare parameter, used as a parametric constant).
    pub fn param(p: ParamId) -> ParamLin {
        ParamLin { coeffs: BTreeMap::new(), constant: LinExpr::var(p) }
    }

    /// Adds the term `p·v` to the expression.
    pub fn add_param_coeff(&mut self, v: VarRef, p: ParamId) -> InvgenResult<()> {
        let entry = self.coeffs.entry(v).or_insert_with(LinExpr::zero);
        *entry = entry.add(&LinExpr::var(p)).map_err(InvgenError::from)?;
        Ok(())
    }

    /// Adds a concrete multiple of a program variable.
    pub fn add_concrete_coeff(&mut self, v: VarRef, c: Rat) -> InvgenResult<()> {
        let entry = self.coeffs.entry(v).or_insert_with(LinExpr::zero);
        *entry = entry.add(&LinExpr::constant(c)).map_err(InvgenError::from)?;
        Ok(())
    }

    /// Adds another parametric expression.
    pub fn add(&self, other: &ParamLin) -> InvgenResult<ParamLin> {
        let mut out = self.clone();
        for (v, c) in &other.coeffs {
            let entry = out.coeffs.entry(*v).or_insert_with(LinExpr::zero);
            *entry = entry.add(c)?;
        }
        out.constant = out.constant.add(&other.constant)?;
        Ok(out)
    }

    /// Scales by a rational.
    pub fn scale(&self, k: Rat) -> InvgenResult<ParamLin> {
        let mut coeffs = BTreeMap::new();
        for (v, c) in &self.coeffs {
            coeffs.insert(*v, c.scale(k)?);
        }
        Ok(ParamLin { coeffs, constant: self.constant.scale(k)? })
    }

    /// Subtracts another parametric expression.
    pub fn sub(&self, other: &ParamLin) -> InvgenResult<ParamLin> {
        self.add(&other.scale(Rat::MINUS_ONE)?)
    }

    /// Re-tags the program variables with `f` (e.g. to express "the template
    /// evaluated on the post-state variables").
    pub fn retag_vars(&self, f: &impl Fn(VarRef) -> VarRef) -> ParamLin {
        let mut coeffs = BTreeMap::new();
        for (v, c) in &self.coeffs {
            let nv = f(*v);
            // Re-tagging is injective in all our uses; merge defensively.
            let entry = coeffs.entry(nv).or_insert_with(LinExpr::zero);
            *entry = entry.add(c).expect("parameter arithmetic overflow");
        }
        ParamLin { coeffs, constant: self.constant.clone() }
    }

    /// The program variables mentioned.
    pub fn vars(&self) -> Vec<VarRef> {
        self.coeffs.keys().copied().collect()
    }

    /// Evaluates the expression under a parameter valuation, producing a
    /// concrete linear expression over the program variables.
    pub fn eval(&self, valuation: &ParamValuation) -> InvgenResult<LinExpr<VarRef>> {
        let lookup = |p: &ParamId| valuation.get(p).copied().unwrap_or(Rat::ZERO);
        let mut out = LinExpr::constant(self.constant.eval(&lookup)?);
        for (v, c) in &self.coeffs {
            out.add_term(*v, c.eval(&lookup)?)?;
        }
        Ok(out)
    }

    /// Evaluates to an IR term with integer coefficients.
    ///
    /// # Errors
    ///
    /// Returns an error if the valuation produces fractional coefficients
    /// (they cannot be used verbatim as predicate text).
    pub fn eval_to_term(&self, valuation: &ParamValuation) -> InvgenResult<Term> {
        let e = self.eval(valuation)?;
        let (term, scale) = e.to_scaled_term()?;
        if scale != 1 {
            return Err(InvgenError::Smt(SmtError::unsupported(
                "fractional template coefficients in an array bound",
            )));
        }
        Ok(term.simplify())
    }
}

impl fmt::Display for ParamLin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "({c})*{v}")?;
            first = false;
        }
        if first {
            write!(f, "{}", self.constant)
        } else {
            write!(f, " + ({})", self.constant)
        }
    }
}

/// Relation of a template row against zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowOp {
    /// `expr ≤ 0`
    Le,
    /// `expr = 0`
    Eq,
}

/// A scalar template row `expr ⋈ 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScalarRow {
    /// The parametric expression.
    pub expr: ParamLin,
    /// The relation.
    pub op: RowOp,
}

/// A universally quantified array row
/// `∀k: lower(X) ≤ k ∧ k ≤ upper(X) → array[k] ⋈ rhs(X)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayRow {
    /// The array variable the row talks about.
    pub array: Symbol,
    /// Lower bound of the index range.
    pub lower: ParamLin,
    /// Upper bound of the index range.
    pub upper: ParamLin,
    /// Right-hand side of the cell constraint.
    pub rhs: ParamLin,
    /// Relation between the cell and the right-hand side (`=`, `≥`, `≤`, `<`,
    /// or `>`).
    pub op: RelOp,
}

/// The template attached to one cut point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Template {
    /// Scalar rows.
    pub scalar_rows: Vec<ScalarRow>,
    /// Optional quantified array row.
    pub array_row: Option<ArrayRow>,
}

impl Template {
    /// Returns `true` if the template has no rows at all.
    pub fn is_empty(&self) -> bool {
        self.scalar_rows.is_empty() && self.array_row.is_none()
    }

    /// Instantiates the template under a parameter valuation, producing the
    /// invariant formula at this cut point.
    pub fn instantiate(&self, valuation: &ParamValuation) -> InvgenResult<Formula> {
        let mut parts = Vec::new();
        for row in &self.scalar_rows {
            let e = row.expr.eval(valuation)?;
            if e.is_constant() && !e.constant_part().is_positive() {
                // A row like 0 <= 0: trivially true, omit.
                continue;
            }
            let op = match row.op {
                RowOp::Le => pathinv_smt::ConstrOp::Le,
                RowOp::Eq => pathinv_smt::ConstrOp::Eq,
            };
            parts.push(pathinv_smt::LinConstraint::new(e, op).to_formula()?);
        }
        if let Some(arr) = &self.array_row {
            let k = Symbol::intern("k");
            let lower = arr.lower.eval_to_term(valuation)?;
            let upper = arr.upper.eval_to_term(valuation)?;
            let rhs = arr.rhs.eval_to_term(valuation)?;
            let body = Formula::and(vec![
                Formula::le(lower, Term::Bound(k)),
                Formula::le(Term::Bound(k), upper),
            ])
            .implies(Formula::atom(
                Term::var(arr.array).select(Term::Bound(k)),
                arr.op,
                rhs,
            ));
            parts.push(Formula::forall(vec![k], body));
        }
        Ok(Formula::and(parts))
    }
}

/// A template map: one template per cut point, sharing one parameter pool.
#[derive(Clone, Debug, Default)]
pub struct TemplateMap {
    /// Templates per location.
    pub templates: BTreeMap<Loc, Template>,
    /// The shared parameter pool.
    pub params: ParamPool,
}

impl TemplateMap {
    /// Creates an empty template map.
    pub fn new() -> TemplateMap {
        TemplateMap::default()
    }

    /// Adds a fully parametric scalar row (one parameter per listed variable
    /// plus a parametric constant) to the template at `loc`, returning the
    /// allocated parameters.
    pub fn add_scalar_row(
        &mut self,
        loc: Loc,
        vars: &[Symbol],
        op: RowOp,
    ) -> InvgenResult<Vec<ParamId>> {
        let mut expr = ParamLin::zero();
        let mut ids = Vec::new();
        for v in vars {
            let p = self.params.fresh(format!("c_{v}@{loc}"));
            expr.add_param_coeff(VarRef::cur(*v), p)?;
            ids.push(p);
        }
        let c = self.params.fresh(format!("c0@{loc}"));
        expr.constant = expr.constant.add(&LinExpr::var(c))?;
        ids.push(c);
        self.templates.entry(loc).or_default().scalar_rows.push(ScalarRow { expr, op });
        Ok(ids)
    }

    /// Adds a fully parametric array row over `array` with bounds and
    /// right-hand side linear in the listed scalar variables.
    pub fn add_array_row(
        &mut self,
        loc: Loc,
        array: Symbol,
        scalars: &[Symbol],
        op: RelOp,
    ) -> InvgenResult<()> {
        let make = |tag: &str, pool: &mut ParamPool| -> InvgenResult<ParamLin> {
            let mut e = ParamLin::zero();
            for v in scalars {
                let p = pool.fresh(format!("{tag}_{v}@{loc}"));
                e.add_param_coeff(VarRef::cur(*v), p)?;
            }
            let c = pool.fresh(format!("{tag}0@{loc}"));
            e.constant = e.constant.add(&LinExpr::var(c))?;
            Ok(e)
        };
        let lower = make("p1", &mut self.params)?;
        let upper = make("p2", &mut self.params)?;
        let rhs = make("p3", &mut self.params)?;
        self.templates.entry(loc).or_default().array_row =
            Some(ArrayRow { array, lower, upper, rhs, op });
        Ok(())
    }

    /// Instantiates every template under a valuation, producing an invariant
    /// formula per cut point.
    pub fn instantiate(&self, valuation: &ParamValuation) -> InvgenResult<BTreeMap<Loc, Formula>> {
        let mut out = BTreeMap::new();
        for (loc, t) in &self.templates {
            out.insert(*loc, t.instantiate(valuation)?);
        }
        Ok(out)
    }

    /// The parameters that make an array-row range *grow*: the per-variable
    /// coefficients of each quantified row's upper bound, in deterministic
    /// (location, variable) order.
    ///
    /// The Farkas system of an array program usually admits both the
    /// generalising invariant (`∀k: 0 ≤ k ≤ i-1 → a[k] = 0`) and degenerate
    /// constant-range ones (`0 ≤ k ≤ 0`) — both are sound for the path
    /// program, but only the former eliminates every loop unwinding at
    /// once.  The synthesiser uses these parameters to bias model
    /// extraction toward ranges that track a program variable (§5's
    /// intent), instead of whichever vertex the feasibility search happens
    /// to land on.
    pub fn array_bound_growth_params(&self) -> Vec<ParamId> {
        let mut out = Vec::new();
        for t in self.templates.values() {
            if let Some(arr) = &t.array_row {
                for coeff in arr.upper.coeffs.values() {
                    out.extend(coeff.vars());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_pool_names() {
        let mut pool = ParamPool::new();
        let a = pool.fresh("c_i");
        let b = pool.fresh("c_n");
        assert_ne!(a, b);
        assert_eq!(pool.name(a), "c_i");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn paramlin_evaluation() {
        let mut pool = ParamPool::new();
        let p = pool.fresh("p");
        let q = pool.fresh("q");
        let mut e = ParamLin::zero();
        e.add_param_coeff(VarRef::cur("i".into()), p).unwrap();
        e.constant = LinExpr::var(q);
        let mut val = ParamValuation::new();
        val.insert(p, Rat::int(2));
        val.insert(q, Rat::int(-3));
        let concrete = e.eval(&val).unwrap();
        assert_eq!(concrete.coeff(&VarRef::cur("i".into())), Rat::int(2));
        assert_eq!(concrete.constant_part(), Rat::int(-3));
        let term = e.eval_to_term(&val).unwrap();
        assert_eq!(term.to_string(), "((2 * i) + -3)");
    }

    #[test]
    fn paramlin_missing_params_default_to_zero() {
        let mut pool = ParamPool::new();
        let p = pool.fresh("p");
        let e = ParamLin::param(p);
        let concrete = e.eval(&ParamValuation::new()).unwrap();
        assert!(concrete.is_constant());
        assert!(concrete.constant_part().is_zero());
    }

    #[test]
    fn retagging_variables() {
        let mut pool = ParamPool::new();
        let p = pool.fresh("p");
        let mut e = ParamLin::zero();
        e.add_param_coeff(VarRef::cur("i".into()), p).unwrap();
        let primed = e.retag_vars(&|v| v.primed());
        assert_eq!(primed.vars(), vec![VarRef::primed_of("i".into())]);
    }

    #[test]
    fn template_instantiation_produces_formulas() {
        let mut map = TemplateMap::new();
        let loc = Loc(1);
        let vars = [Symbol::intern("i"), Symbol::intern("n")];
        let ids = map.add_scalar_row(loc, &vars, RowOp::Eq).unwrap();
        let mut val = ParamValuation::new();
        // i - n = 0
        val.insert(ids[0], Rat::ONE);
        val.insert(ids[1], Rat::MINUS_ONE);
        val.insert(ids[2], Rat::ZERO);
        let inv = map.instantiate(&val).unwrap();
        let f = &inv[&loc];
        assert!(f.to_string().contains("= 0"));
        assert_eq!(f.var_names().len(), 2);
    }

    #[test]
    fn trivial_rows_are_dropped() {
        let mut map = TemplateMap::new();
        let loc = Loc(0);
        map.add_scalar_row(loc, &[Symbol::intern("x")], RowOp::Le).unwrap();
        // All-zero valuation: row becomes 0 <= 0, dropped.
        let inv = map.instantiate(&ParamValuation::new()).unwrap();
        assert_eq!(inv[&loc], Formula::True);
    }

    #[test]
    fn array_row_instantiation() {
        let mut map = TemplateMap::new();
        let loc = Loc(1);
        let scalars = [Symbol::intern("i"), Symbol::intern("n")];
        map.add_array_row(loc, Symbol::intern("a"), &scalars, RelOp::Eq).unwrap();
        // p1 = 0, p2 = i - 1, p3 = 0.
        let mut val = ParamValuation::new();
        // Parameters are allocated in order: p1_i, p1_n, p10, p2_i, p2_n, p20, p3_i, p3_n, p30.
        val.insert(ParamId(3), Rat::ONE); // p2_i = 1
        val.insert(ParamId(5), Rat::MINUS_ONE); // p20 = -1
        let inv = map.instantiate(&val).unwrap();
        let s = inv[&loc].to_string();
        assert!(s.contains("forall k"), "{s}");
        assert!(s.contains("a[k] = 0"), "{s}");
        assert!(s.contains("k <= (i + -1)"), "{s}");
    }

    #[test]
    fn fractional_array_bounds_are_rejected() {
        let mut pool = ParamPool::new();
        let p = pool.fresh("p");
        let mut e = ParamLin::zero();
        e.add_param_coeff(VarRef::cur("i".into()), p).unwrap();
        let mut val = ParamValuation::new();
        val.insert(p, Rat::new(1, 2).unwrap());
        assert!(e.eval_to_term(&val).is_err());
    }
}
