//! Error types for invariant synthesis.

use pathinv_smt::SmtError;
use std::fmt;

/// Errors produced by the invariant generators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvgenError {
    /// A lower-level solver error.
    Smt(SmtError),
    /// No invariant map exists within the given template language (or within
    /// the multiplier bounds of the bilinear search).
    NoInvariant {
        /// Human-readable description of what was attempted.
        message: String,
    },
    /// The program or path program is outside the supported fragment for a
    /// particular generator (e.g. several writes to the template array along
    /// one basic path).
    Unsupported {
        /// Human-readable description.
        message: String,
    },
}

impl InvgenError {
    /// Convenience constructor for [`InvgenError::NoInvariant`].
    pub fn no_invariant(message: impl Into<String>) -> InvgenError {
        InvgenError::NoInvariant { message: message.into() }
    }

    /// Convenience constructor for [`InvgenError::Unsupported`].
    pub fn unsupported(message: impl Into<String>) -> InvgenError {
        InvgenError::Unsupported { message: message.into() }
    }
}

impl fmt::Display for InvgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvgenError::Smt(e) => write!(f, "solver error: {e}"),
            InvgenError::NoInvariant { message } => {
                write!(f, "no invariant found: {message}")
            }
            InvgenError::Unsupported { message } => write!(f, "unsupported input: {message}"),
        }
    }
}

impl std::error::Error for InvgenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InvgenError::Smt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SmtError> for InvgenError {
    fn from(e: SmtError) -> InvgenError {
        InvgenError::Smt(e)
    }
}

/// Result alias for invariant synthesis.
pub type InvgenResult<T> = Result<T, InvgenError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = InvgenError::no_invariant("equality template too weak");
        assert!(e.to_string().contains("equality template"));
        let e: InvgenError = SmtError::Overflow.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
