//! Template-proposal heuristics and the refinement loop of §5.
//!
//! The paper chooses templates "following a simple heuristic that obtains a
//! template by replacing the coefficients of the target assertion by
//! parameters", and refines a failed template "by conjoining an inequality".
//! This module reproduces that driver:
//!
//! * programs whose error guards read an array get a quantified array row at
//!   every cut point (the tractable form of §4.2), with the relation taken
//!   from the violated assertion;
//! * purely scalar programs first get a single parametric *equality* row; if
//!   synthesis fails, an inequality row is conjoined and synthesis is rerun
//!   (this is exactly the FORWARD experiment: the equality template fails,
//!   the refined template succeeds).

use crate::error::{InvgenError, InvgenResult};
use crate::relation::{basic_paths, cutset};
use crate::synth::{synthesize, SynthConfig, SynthStats};
use crate::template::{RowOp, TemplateMap};
use pathinv_ir::{Formula, Loc, Program, RelOp, Symbol, Term};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Record of one template attempt (used by the experiment harness to
/// reproduce the "40 ms failure, 130 ms success" measurement of §5).
#[derive(Clone, Debug)]
pub struct TemplateAttempt {
    /// Human-readable description of the template shape.
    pub description: String,
    /// Whether synthesis succeeded.
    pub succeeded: bool,
    /// Wall-clock time spent on this attempt.
    pub duration: Duration,
    /// Search statistics of the attempt.
    pub stats: Option<SynthStats>,
}

/// The result of running the heuristic generator on a (path) program.
#[derive(Clone, Debug)]
pub struct GeneratedInvariants {
    /// The invariant found at each cut point.
    pub cutpoint_invariants: BTreeMap<Loc, Formula>,
    /// The sequence of template attempts (failed attempts first).
    pub attempts: Vec<TemplateAttempt>,
}

/// Heuristic path-invariant generator: proposes templates, calls the
/// constraint-based synthesiser, and refines the template on failure.
#[derive(Clone, Debug, Default)]
pub struct PathInvariantGenerator {
    config: SynthConfig,
}

impl PathInvariantGenerator {
    /// Creates a generator with the default search configuration.
    pub fn new() -> PathInvariantGenerator {
        PathInvariantGenerator { config: SynthConfig::default() }
    }

    /// Creates a generator with an explicit search configuration (used by the
    /// ablation benchmarks).
    pub fn with_config(config: SynthConfig) -> PathInvariantGenerator {
        PathInvariantGenerator { config }
    }

    /// Generates invariants at the cut points of `program`.
    ///
    /// # Errors
    ///
    /// Returns [`InvgenError::NoInvariant`] if every proposed template fails;
    /// the attempts performed so far are described in the error message.
    pub fn generate(&self, program: &Program) -> InvgenResult<GeneratedInvariants> {
        let cuts = cutset(program);
        if cuts.is_empty() {
            // Loop-free program: there is nothing to synthesise; the CEGAR
            // engine falls back to plain path refutation.
            return Ok(GeneratedInvariants {
                cutpoint_invariants: BTreeMap::new(),
                attempts: Vec::new(),
            });
        }
        let scalars: Vec<Symbol> = program.int_vars();
        let array_goal = error_array_goal(program)?;
        let mut attempts = Vec::new();

        let proposals: Vec<(String, TemplateMap)> = match &array_goal {
            Some((array, op)) => {
                let mut plain = TemplateMap::new();
                let mut supported = TemplateMap::new();
                for &l in &cuts {
                    plain.add_array_row(l, *array, &scalars, *op)?;
                    supported.add_array_row(l, *array, &scalars, *op)?;
                    supported.add_scalar_row(l, &scalars, RowOp::Le)?;
                    supported.add_scalar_row(l, &scalars, RowOp::Le)?;
                }
                vec![
                    (format!("quantified template over `{array}`"), plain),
                    (
                        format!("quantified template over `{array}` with scalar support rows"),
                        supported,
                    ),
                ]
            }
            None => {
                let mut eq_only = TemplateMap::new();
                let mut eq_ineq = TemplateMap::new();
                let mut eq_two_ineq = TemplateMap::new();
                for &l in &cuts {
                    eq_only.add_scalar_row(l, &scalars, RowOp::Eq)?;
                    eq_ineq.add_scalar_row(l, &scalars, RowOp::Eq)?;
                    eq_ineq.add_scalar_row(l, &scalars, RowOp::Le)?;
                    eq_two_ineq.add_scalar_row(l, &scalars, RowOp::Eq)?;
                    eq_two_ineq.add_scalar_row(l, &scalars, RowOp::Le)?;
                    eq_two_ineq.add_scalar_row(l, &scalars, RowOp::Le)?;
                }
                vec![
                    ("equality template".to_string(), eq_only),
                    ("equality template with one inequality".to_string(), eq_ineq),
                    ("equality template with two inequalities".to_string(), eq_two_ineq),
                ]
            }
        };

        for (description, templates) in proposals {
            let start = Instant::now();
            match synthesize(program, &templates, &self.config) {
                Ok(result) => {
                    attempts.push(TemplateAttempt {
                        description,
                        succeeded: true,
                        duration: start.elapsed(),
                        stats: Some(result.stats.clone()),
                    });
                    return Ok(GeneratedInvariants {
                        cutpoint_invariants: result.invariants,
                        attempts,
                    });
                }
                Err(InvgenError::NoInvariant { .. }) => {
                    attempts.push(TemplateAttempt {
                        description,
                        succeeded: false,
                        duration: start.elapsed(),
                        stats: None,
                    });
                }
                Err(other) => return Err(other),
            }
        }
        let tried: Vec<String> = attempts.iter().map(|a| a.description.clone()).collect();
        Err(InvgenError::no_invariant(format!(
            "no template in the refinement sequence succeeded (tried: {})",
            tried.join(", ")
        )))
    }
}

/// Determines whether proving the program requires reasoning about an array:
/// if a basic path into the error location reads an array, returns that array
/// together with the relation the invariant must establish for its cells
/// (the negation of the violated guard).
fn error_array_goal(program: &Program) -> InvgenResult<Option<(Symbol, RelOp)>> {
    for bp in basic_paths(program)? {
        if bp.to != program.error() {
            continue;
        }
        for case in &bp.cases {
            if let Some(read) = case.reads.first() {
                // Find the guard atom mentioning the read on the error
                // transitions to recover the asserted relation.
                for &tid in &bp.trans {
                    let t = program.transition(tid);
                    if let pathinv_ir::Action::Assume(g) = &t.action {
                        for atom in g.atoms() {
                            let op = array_atom_relation(&atom, read.array);
                            if let Some(op) = op {
                                return Ok(Some((read.array, op.negate())));
                            }
                        }
                    }
                }
                // Fall back to equality if the guard shape is unusual.
                return Ok(Some((read.array, RelOp::Eq)));
            }
        }
    }
    Ok(None)
}

/// If the atom constrains a read from `array` on one side, returns the
/// relation with the read on the left-hand side.
fn array_atom_relation(atom: &pathinv_ir::Atom, array: Symbol) -> Option<RelOp> {
    let reads_array = |t: &Term| {
        let mut found = false;
        t.for_each(&mut |s| {
            if let Term::Select(arr, _) = s {
                if matches!(arr.as_ref(), Term::Var(v) if v.sym == array) {
                    found = true;
                }
            }
        });
        found
    };
    if reads_array(&atom.lhs) {
        Some(atom.op)
    } else if reads_array(&atom.rhs) {
        Some(atom.op.flip())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_ir::corpus;

    #[test]
    fn forward_needs_the_refined_template() {
        let p = corpus::forward();
        let generated = PathInvariantGenerator::new().generate(&p).unwrap();
        assert_eq!(generated.attempts.len(), 2, "equality template must fail first");
        assert!(!generated.attempts[0].succeeded);
        assert!(generated.attempts[1].succeeded);
        assert!(!generated.cutpoint_invariants.is_empty());
    }

    #[test]
    fn initcheck_uses_a_quantified_template_without_refinement() {
        let p = corpus::initcheck();
        let generated = PathInvariantGenerator::new().generate(&p).unwrap();
        assert_eq!(generated.attempts.len(), 1, "no template refinement required (§5)");
        assert!(generated.attempts[0].succeeded);
        assert!(generated.cutpoint_invariants.values().all(|f| f.has_quantifier()));
    }

    #[test]
    fn error_goal_detection() {
        let p = corpus::initcheck();
        let goal = error_array_goal(&p).unwrap();
        assert_eq!(goal, Some((Symbol::intern("a"), RelOp::Eq)));
        let p = corpus::forward();
        assert_eq!(error_array_goal(&p).unwrap(), None);
    }

    #[test]
    fn loop_free_program_yields_no_obligations() {
        let p =
            pathinv_ir::parse_program("proc straight(x: int) { x = 1; assert(x == 1); }").unwrap();
        let generated = PathInvariantGenerator::new().generate(&p).unwrap();
        assert!(generated.cutpoint_invariants.is_empty());
        assert!(generated.attempts.is_empty());
    }

    #[test]
    fn buggy_program_reports_failure() {
        let p = corpus::buggy_initcheck();
        let err = PathInvariantGenerator::new().generate(&p).unwrap_err();
        assert!(matches!(err, InvgenError::NoInvariant { .. }));
    }
}
