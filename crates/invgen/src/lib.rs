//! # pathinv-invgen — invariant synthesis for path programs
//!
//! This crate implements the invariant-generation half of the Path Invariants
//! paper (§4.2): constraint-based synthesis of template invariants for the
//! combined theory of linear arithmetic and arrays, plus an abstract
//! interpretation alternative.
//!
//! * [`template`] — parametric templates: scalar rows and the universally
//!   quantified array row `∀k: p1(X) ≤ k ≤ p2(X) → a[k] ⋈ p3(X)`.
//! * [`relation`] — cut points and basic-path relations in constraint form.
//! * [`synth`] — the Farkas encoding of initiation / consecution / safety and
//!   the bilinear search that instantiates template parameters, organised as
//!   a conflict-driven best-first frontier.
//! * [`mod@presolve`] — Gaussian elimination of equalities, row
//!   dedup/subsumption, and trivial-conflict detection applied to every
//!   Farkas system before it reaches the simplex.
//! * [`stats`] — thread-local synthesis counters (systems solved, branches
//!   explored/pruned, cores learned, memo hits) for the experiment harness.
//! * [`heuristics`] — the §5 driver: propose a template, refine it on failure
//!   (equality → equality + inequality), quantified templates for array
//!   programs.
//! * [`intervals`] — interval abstract interpretation with widening, the
//!   "abstract interpretation instantiation" mentioned in the paper, used as
//!   an ablation baseline.
//! * [`invmap`] — invariant maps and an independent semantic check of
//!   initiation / inductiveness / safety using the combined solver.
//!
//! ```
//! use pathinv_invgen::PathInvariantGenerator;
//! use pathinv_ir::corpus;
//!
//! // Synthesise the FORWARD invariant (a + b = 3i ∧ ...) as in §5.
//! let program = corpus::forward();
//! let generated = PathInvariantGenerator::new().generate(&program)?;
//! assert!(!generated.cutpoint_invariants.is_empty());
//! # Ok::<(), pathinv_invgen::InvgenError>(())
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod heuristics;
pub mod intervals;
pub mod invmap;
pub mod presolve;
pub mod relation;
pub mod stats;
pub mod synth;
pub mod template;

pub use error::{InvgenError, InvgenResult};
pub use heuristics::{GeneratedInvariants, PathInvariantGenerator, TemplateAttempt};
pub use intervals::{analyze as interval_analyze, Interval, IntervalAnalysis};
pub use invmap::InvariantMap;
pub use presolve::{complete_witness, presolve, presolve_tagged, PresolvedSystem};
pub use relation::{basic_paths, cutset, BasicPath};
pub use stats::{snapshot as synth_stats_snapshot, SynthCounters};
pub use synth::{synthesize, SynthConfig, SynthStats, Synthesis};
pub use template::{ParamId, ParamLin, ParamValuation, RowOp, Template, TemplateMap};
