//! Constraint-based synthesis of template invariants (§4.2 of the paper).
//!
//! The synthesiser turns the initiation / consecution / safety conditions of
//! an invariant map into a system of constraints over the template
//! parameters, using Farkas' lemma: an implication between linear constraints
//! is valid iff the consequent is a non-negative combination of the
//! antecedent rows (plus a non-negative constant slack), or the antecedent is
//! itself contradictory.
//!
//! Because antecedent rows that come from the templates have *unknown*
//! coefficients, their Farkas multipliers make the system bilinear.  The
//! paper solved the resulting constraints with SICStus CLP(Q); here the
//! bilinearity is resolved by enumerating the multipliers of template rows
//! over a small candidate set (they are small integers in every published
//! example) while the multipliers of concrete rows and the template
//! parameters themselves stay as exact-rational LP unknowns.  The enumeration
//! is organised as a frontier search over the conditions, pruning multiplier
//! choices that make the accumulated LP infeasible.
//!
//! Universally quantified array rows are reduced to scalar implications
//! exactly as in §4.2: a fresh index `k*`, a case split on whether the read
//! hits the written cell, the range side condition (6), and the value
//! condition (8) with array reads replaced by fresh variables.

use crate::error::{InvgenError, InvgenResult};
use crate::relation::{basic_paths, BasicPath, RelationCase};
use crate::template::{ParamId, ParamLin, ParamValuation, RowOp, Template, TemplateMap};
use pathinv_ir::{Formula, Loc, Program, RelOp, Symbol, VarRef};
use pathinv_smt::{ConstrOp, IncrementalSimplex, LinConstraint, LinExpr, LpResult, Rat};
use std::collections::BTreeMap;

/// Unknowns of the generated linear constraint system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Unknown {
    /// A template parameter.
    Param(ParamId),
    /// The Farkas multiplier of concrete antecedent row `row` of implication
    /// `implication`.
    Mu {
        /// Index of the implication.
        implication: u32,
        /// Index of the concrete row within the implication.
        row: u32,
    },
}

impl std::fmt::Display for Unknown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unknown::Param(p) => write!(f, "{p}"),
            Unknown::Mu { implication, row } => write!(f, "mu{implication}_{row}"),
        }
    }
}

/// A parametric antecedent row of an implication.
#[derive(Clone, Debug)]
pub struct ParamRow {
    /// The parametric expression (`expr ⋈ 0`).
    pub expr: ParamLin,
    /// The relation.
    pub op: RowOp,
}

/// What an implication must establish.
#[derive(Clone, Debug)]
pub enum Consequent {
    /// Prove `expr ≤ 0` (equality consequents are split into two such
    /// implications before reaching this type).
    Row(ParamLin),
    /// Prove that the antecedent is contradictory.
    False,
}

/// One verification condition in implication form.
#[derive(Clone, Debug)]
pub struct Implication {
    /// Concrete antecedent rows (ops `≤`/`=`; strict rows are pre-tightened).
    pub concrete: Vec<LinConstraint<VarRef>>,
    /// Parametric antecedent rows (template rows and template-derived range
    /// rows).
    pub parametric: Vec<ParamRow>,
    /// The consequent.
    pub consequent: Consequent,
    /// Human-readable description, used in error messages and statistics.
    pub label: String,
}

/// Configuration of the bilinear search.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Candidate Farkas multipliers for parametric inequality rows.
    pub ineq_multipliers: Vec<Rat>,
    /// Candidate Farkas multipliers for parametric equality rows.
    pub eq_multipliers: Vec<Rat>,
    /// Maximum number of partial solutions kept after each condition.
    pub max_frontier: usize,
    /// Maximum number of feasible extensions kept per partial solution and
    /// condition.
    pub max_options_per_step: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            ineq_multipliers: vec![Rat::ZERO, Rat::ONE, Rat::int(2)],
            eq_multipliers: vec![Rat::MINUS_ONE, Rat::ZERO, Rat::ONE],
            max_frontier: 12,
            max_options_per_step: 6,
        }
    }
}

/// Statistics of a synthesis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Number of verification conditions (implications) generated.
    pub implications: usize,
    /// Number of LP feasibility checks performed.
    pub lp_calls: usize,
    /// Number of multiplier choices explored.
    pub choices_explored: usize,
}

/// One partial solution of the frontier search: the accumulated constraint
/// system, the live incremental tableau over it (the warm-start state for
/// every extension), and the witness model of its last real feasibility
/// check (empty before the first; unknowns absent from the witness read as
/// zero).
#[derive(Clone, Debug, Default)]
struct FrontierEntry {
    constraints: Vec<LinConstraint<Unknown>>,
    tableau: IncrementalSimplex<Unknown>,
    witness: BTreeMap<Unknown, Rat>,
}

/// Result of a successful synthesis.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// The invariant formula at each templated cut point.
    pub invariants: BTreeMap<Loc, Formula>,
    /// The parameter valuation found.
    pub valuation: ParamValuation,
    /// Search statistics.
    pub stats: SynthStats,
}

/// Synthesises an invariant map for `program` within the given template map.
///
/// # Errors
///
/// Returns [`InvgenError::NoInvariant`] if no parameter valuation satisfies
/// all conditions within the configured multiplier bounds, and
/// [`InvgenError::Unsupported`] for programs outside the supported fragment
/// (e.g. two writes to a template array on one basic path).
pub fn synthesize(
    program: &Program,
    templates: &TemplateMap,
    config: &SynthConfig,
) -> InvgenResult<Synthesis> {
    let paths = basic_paths(program)?;
    let mut implications = Vec::new();
    for bp in &paths {
        implications.extend(conditions_for_basic_path(program, templates, bp)?);
    }
    // Safety conditions first: they prune the parameter space fastest.
    implications.sort_by_key(|imp| match imp.consequent {
        Consequent::False => 0,
        Consequent::Row(_) => 1,
    });
    let mut stats = SynthStats { implications: implications.len(), ..Default::default() };

    // Each frontier entry carries a live incremental tableau over its
    // accumulated system and the witness of its last real feasibility
    // check.  An extension first evaluates the new rows under the witness
    // (absent unknowns read as zero, matching the simplex convention for
    // unconstrained variables): a witness that already satisfies them
    // proves the extension feasible with no simplex work at all.
    // Otherwise the parent tableau is cloned, the new rows are pushed, and
    // the system is re-checked *warm* from the feasible assignment of the
    // shared prefix — the option rows are the only thing the simplex has
    // to repair, instead of re-solving the whole accumulated system cold
    // per option.  Feasibility decisions — and therefore the frontier
    // contents, the synthesised invariants, and every downstream verdict —
    // are identical to cold-solving every extension.
    let mut frontier: Vec<FrontierEntry> = vec![FrontierEntry::default()];
    for (idx, imp) in implications.iter().enumerate() {
        let options = encode_options(imp, idx as u32, config)?;
        let mut next: Vec<FrontierEntry> = Vec::new();
        for acc in &frontier {
            let mut kept = 0;
            for opt in &options {
                if kept >= config.max_options_per_step {
                    break;
                }
                stats.choices_explored += 1;
                let witness_holds = {
                    let lookup = |u: &Unknown| acc.witness.get(u).copied().unwrap_or(Rat::ZERO);
                    let mut all = true;
                    for c in opt {
                        if !c.holds(&lookup)? {
                            all = false;
                            break;
                        }
                    }
                    all
                };
                let mut combined = acc.constraints.clone();
                combined.extend(opt.iter().cloned());
                if witness_holds {
                    let mut tableau = acc.tableau.clone();
                    for c in opt {
                        tableau.push_constraint(c)?;
                    }
                    next.push(FrontierEntry {
                        constraints: combined,
                        tableau,
                        witness: acc.witness.clone(),
                    });
                    kept += 1;
                    continue;
                }
                stats.lp_calls += 1;
                let mut tableau = acc.tableau.clone();
                for c in opt {
                    tableau.push_constraint(c)?;
                }
                if tableau.check()? {
                    let witness = tableau.model()?;
                    next.push(FrontierEntry { constraints: combined, tableau, witness });
                    kept += 1;
                }
            }
            if next.len() >= config.max_frontier {
                break;
            }
        }
        if next.is_empty() {
            return Err(InvgenError::no_invariant(format!(
                "condition `{}` has no solution within the multiplier bounds",
                imp.label
            )));
        }
        next.truncate(config.max_frontier);
        frontier = next;
    }

    // Extract a model from the surviving partial solutions.  A solution may
    // instantiate an array-bound expression with a fractional coefficient
    // (the LP works over the rationals); such entries are skipped in favour
    // of the next surviving entry.
    let mut last_error: Option<InvgenError> = None;
    for entry in frontier {
        let constraints = entry.constraints;
        let valuation = match pathinv_smt::lra_solve(&constraints)? {
            LpResult::Sat(model) => model
                .into_iter()
                .filter_map(|(u, r)| match u {
                    Unknown::Param(p) => Some((p, r)),
                    Unknown::Mu { .. } => None,
                })
                .collect::<ParamValuation>(),
            LpResult::Unsat(_) => continue,
        };
        match templates.instantiate(&valuation) {
            Ok(invariants) => return Ok(Synthesis { invariants, valuation, stats }),
            Err(e) => last_error = Some(e),
        }
    }
    Err(last_error.unwrap_or_else(|| {
        InvgenError::no_invariant("every surviving frontier entry became infeasible")
    }))
}

/// Generates the Farkas option encodings (variant × multiplier choice) for an
/// implication.
fn encode_options(
    imp: &Implication,
    index: u32,
    config: &SynthConfig,
) -> InvgenResult<Vec<Vec<LinConstraint<Unknown>>>> {
    let lambda_choices = multiplier_choices(&imp.parametric, config);
    let mut out = Vec::new();
    for lambda in &lambda_choices {
        match &imp.consequent {
            Consequent::Row(expr) => {
                out.push(encode_implication(imp, index, lambda, Some(expr))?);
                out.push(encode_implication(imp, index, lambda, None)?);
            }
            Consequent::False => {
                out.push(encode_implication(imp, index, lambda, None)?);
            }
        }
    }
    Ok(out)
}

/// Enumerates candidate multiplier vectors for the parametric rows.
fn multiplier_choices(rows: &[ParamRow], config: &SynthConfig) -> Vec<Vec<Rat>> {
    let mut choices: Vec<Vec<Rat>> = vec![Vec::new()];
    for row in rows {
        let candidates = match row.op {
            RowOp::Le => &config.ineq_multipliers,
            RowOp::Eq => &config.eq_multipliers,
        };
        let mut next = Vec::with_capacity(choices.len() * candidates.len());
        for prefix in &choices {
            for &c in candidates {
                let mut v = prefix.clone();
                v.push(c);
                next.push(v);
            }
        }
        choices = next;
    }
    // Prefer "simple" choices (mostly zeros) first so that the search keeps
    // the least surprising Farkas proofs.
    choices.sort_by_key(|v| v.iter().filter(|c| !c.is_zero()).count());
    choices
}

/// Encodes one implication under a fixed multiplier choice.
///
/// `goal = Some(e)` proves `e ≤ 0`; `goal = None` proves the antecedent
/// contradictory.
fn encode_implication(
    imp: &Implication,
    index: u32,
    lambda: &[Rat],
    goal: Option<&ParamLin>,
) -> InvgenResult<Vec<LinConstraint<Unknown>>> {
    // Collect every program variable that occurs anywhere.
    let mut vars: Vec<VarRef> = Vec::new();
    let mut add_vars = |vs: Vec<VarRef>| {
        for v in vs {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    };
    for c in &imp.concrete {
        add_vars(c.expr.vars());
    }
    for r in &imp.parametric {
        add_vars(r.expr.vars());
    }
    if let Some(g) = goal {
        add_vars(g.vars());
    }

    let param_to_unknown = |e: &LinExpr<ParamId>| -> InvgenResult<LinExpr<Unknown>> {
        Ok(e.substitute(&|p: &ParamId| LinExpr::var(Unknown::Param(*p)))?)
    };

    let mut constraints: Vec<LinConstraint<Unknown>> = Vec::new();

    // Per-variable coefficient equations and the constant-part inequality.
    // goal_expr - Σ λ_i·param_i - Σ μ_j·concrete_j  must be a non-positive
    // constant (matching) — or, for the contradiction variant,
    // Σ λ_i·param_i + Σ μ_j·concrete_j must be a constant ≥ 1.
    let sign = if goal.is_some() { Rat::MINUS_ONE } else { Rat::ONE };

    let coeff_of = |v: Option<VarRef>| -> InvgenResult<LinExpr<Unknown>> {
        let mut acc: LinExpr<Unknown> = LinExpr::zero();
        if let Some(g) = goal {
            let contribution = match v {
                Some(var) => g.coeffs.get(&var).cloned().unwrap_or_else(LinExpr::zero),
                None => g.constant.clone(),
            };
            acc = acc.add(&param_to_unknown(&contribution)?)?;
        }
        for (i, row) in imp.parametric.iter().enumerate() {
            let contribution = match v {
                Some(var) => row.expr.coeffs.get(&var).cloned().unwrap_or_else(LinExpr::zero),
                None => row.expr.constant.clone(),
            };
            let scaled = param_to_unknown(&contribution)?.scale(lambda[i].mul(sign)?)?;
            acc = acc.add(&scaled)?;
        }
        for (j, row) in imp.concrete.iter().enumerate() {
            let coeff = match v {
                Some(var) => row.expr.coeff(&var),
                None => row.expr.constant_part(),
            };
            if coeff.is_zero() {
                continue;
            }
            let mu = Unknown::Mu { implication: index, row: j as u32 };
            acc = acc.add(&LinExpr::scaled_var(mu, coeff.mul(sign)?))?;
        }
        Ok(acc)
    };

    for v in &vars {
        let e = coeff_of(Some(*v))?;
        constraints.push(LinConstraint::new(e, ConstrOp::Eq));
    }
    let constant = coeff_of(None)?;
    if goal.is_some() {
        // constant ≤ 0.
        constraints.push(LinConstraint::new(constant, ConstrOp::Le));
    } else {
        // constant ≥ 1, i.e. 1 - constant ≤ 0.
        let one_minus = LinExpr::constant(Rat::ONE).sub(&constant)?;
        constraints.push(LinConstraint::new(one_minus, ConstrOp::Le));
    }

    // Sign constraints: multipliers of concrete inequality rows are
    // non-negative (equality rows are unrestricted).  Multipliers of
    // parametric rows were chosen from sign-respecting candidate sets.
    for (j, row) in imp.concrete.iter().enumerate() {
        if row.op != ConstrOp::Eq {
            let mu = Unknown::Mu { implication: index, row: j as u32 };
            constraints
                .push(LinConstraint::new(LinExpr::scaled_var(mu, Rat::MINUS_ONE), ConstrOp::Le));
        }
    }
    Ok(constraints)
}

/// Generates the verification conditions contributed by one basic path.
pub fn conditions_for_basic_path(
    program: &Program,
    templates: &TemplateMap,
    bp: &BasicPath,
) -> InvgenResult<Vec<Implication>> {
    let source = templates.templates.get(&bp.from);
    let target = templates.templates.get(&bp.to);
    let mut out = Vec::new();
    let path_label = format!("{} -> {}", program.loc_label(bp.from), program.loc_label(bp.to));
    for (case_idx, case) in bp.cases.iter().enumerate() {
        let label = |what: &str| format!("{path_label} [case {case_idx}] {what}");
        let retag_pre = |e: &ParamLin| e.retag_vars(&|v| bp.pre.get(&v.sym).copied().unwrap_or(v));
        let retag_post =
            |e: &ParamLin| e.retag_vars(&|v| bp.post.get(&v.sym).copied().unwrap_or(v));

        // Antecedent parametric rows from the source template (scalar only;
        // the source array row is brought in where needed below).
        let mut source_rows: Vec<ParamRow> = Vec::new();
        if let Some(src) = source {
            for row in &src.scalar_rows {
                source_rows.push(ParamRow { expr: retag_pre(&row.expr), op: row.op });
            }
        }

        if bp.to == program.error() {
            out.extend(safety_conditions(case, source, &source_rows, &retag_pre, &label)?);
            continue;
        }

        let Some(tgt) = target else { continue };

        // Scalar consequent rows.
        for (row_idx, row) in tgt.scalar_rows.iter().enumerate() {
            let expr = retag_post(&row.expr);
            let directions: Vec<ParamLin> = match row.op {
                RowOp::Le => vec![expr.clone()],
                RowOp::Eq => vec![expr.clone(), expr.scale(Rat::MINUS_ONE)?],
            };
            for (d, dir) in directions.into_iter().enumerate() {
                out.push(Implication {
                    concrete: case.scalar.clone(),
                    parametric: source_rows.clone(),
                    consequent: Consequent::Row(dir),
                    label: label(&format!("scalar row {row_idx} dir {d}")),
                });
            }
        }

        // Quantified array consequent row.
        if let Some(arr) = &tgt.array_row {
            out.extend(array_conditions(
                case,
                source,
                &source_rows,
                arr,
                &retag_pre,
                &retag_post,
                &label,
            )?);
        }
    }
    Ok(out)
}

/// Safety conditions: the antecedent (source invariant ∧ path relation) must
/// be contradictory.  A quantified source row is instantiated at every read
/// index of its array, splitting on whether the index lies in the quantified
/// range.
fn safety_conditions(
    case: &RelationCase,
    source: Option<&Template>,
    source_rows: &[ParamRow],
    retag_pre: &impl Fn(&ParamLin) -> ParamLin,
    label: &impl Fn(&str) -> String,
) -> InvgenResult<Vec<Implication>> {
    let mut out = Vec::new();
    let arr = source.and_then(|s| s.array_row.as_ref());
    let reads = arr.map(|a| case.reads_from(a.array)).unwrap_or_default();
    if arr.is_none() || reads.is_empty() {
        out.push(Implication {
            concrete: case.scalar.clone(),
            parametric: source_rows.to_vec(),
            consequent: Consequent::False,
            label: label("safety"),
        });
        return Ok(out);
    }
    let arr = arr.expect("checked above");
    let lower = retag_pre(&arr.lower);
    let upper = retag_pre(&arr.upper);
    let rhs = retag_pre(&arr.rhs);
    // Instantiate at the first read (further reads of the same array at the
    // same index share the result variable; distinct-index reads in an error
    // guard do not occur in the supported fragment).
    let read = reads[0];
    let idx = ParamLin::concrete(&read.index);
    let cell = ParamLin::concrete(&LinExpr::var(read.result));

    // Case (a): the read index is inside the quantified range, so the cell
    // fact is available.
    {
        let mut parametric = source_rows.to_vec();
        parametric.push(ParamRow { expr: lower.sub(&idx)?, op: RowOp::Le });
        parametric.push(ParamRow { expr: idx.sub(&upper)?, op: RowOp::Le });
        parametric.extend(cell_fact_rows(&cell, &rhs, arr.op)?);
        out.push(Implication {
            concrete: case.scalar.clone(),
            parametric,
            consequent: Consequent::False,
            label: label("safety (read in range)"),
        });
    }
    // Case (b): the read index is below the range.
    {
        let mut parametric = source_rows.to_vec();
        // idx < lower  ≡  idx - lower + 1 ≤ 0 (integers).
        let row = idx.sub(&lower)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?;
        parametric.push(ParamRow { expr: row, op: RowOp::Le });
        out.push(Implication {
            concrete: case.scalar.clone(),
            parametric,
            consequent: Consequent::False,
            label: label("safety (read below range)"),
        });
    }
    // Case (c): the read index is above the range.
    {
        let mut parametric = source_rows.to_vec();
        let row = upper.sub(&idx)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?;
        parametric.push(ParamRow { expr: row, op: RowOp::Le });
        out.push(Implication {
            concrete: case.scalar.clone(),
            parametric,
            consequent: Consequent::False,
            label: label("safety (read above range)"),
        });
    }
    Ok(out)
}

/// Rows expressing `cell ⋈ rhs` for use in an antecedent.
fn cell_fact_rows(cell: &ParamLin, rhs: &ParamLin, op: RelOp) -> InvgenResult<Vec<ParamRow>> {
    Ok(match op {
        RelOp::Eq => vec![ParamRow { expr: cell.sub(rhs)?, op: RowOp::Eq }],
        RelOp::Ge => vec![ParamRow { expr: rhs.sub(cell)?, op: RowOp::Le }],
        RelOp::Le => vec![ParamRow { expr: cell.sub(rhs)?, op: RowOp::Le }],
        RelOp::Gt => vec![ParamRow {
            expr: rhs.sub(cell)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?,
            op: RowOp::Le,
        }],
        RelOp::Lt => vec![ParamRow {
            expr: cell.sub(rhs)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?,
            op: RowOp::Le,
        }],
        RelOp::Ne => {
            return Err(InvgenError::unsupported(
                "disequality is not a supported array-row relation",
            ))
        }
    })
}

/// The consequent direction rows for `lhs ⋈ rhs` (each entry proves one `≤`).
fn consequent_directions(lhs: &ParamLin, rhs: &ParamLin, op: RelOp) -> InvgenResult<Vec<ParamLin>> {
    Ok(match op {
        RelOp::Eq => vec![lhs.sub(rhs)?, rhs.sub(lhs)?],
        RelOp::Ge => vec![rhs.sub(lhs)?],
        RelOp::Le => vec![lhs.sub(rhs)?],
        RelOp::Gt => {
            vec![rhs.sub(lhs)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?]
        }
        RelOp::Lt => {
            vec![lhs.sub(rhs)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?]
        }
        RelOp::Ne => {
            return Err(InvgenError::unsupported(
                "disequality is not a supported array-row relation",
            ))
        }
    })
}

/// The §4.2 reduction for a quantified consequent row.
#[allow(clippy::too_many_arguments)]
fn array_conditions(
    case: &RelationCase,
    source: Option<&Template>,
    source_rows: &[ParamRow],
    target_row: &crate::template::ArrayRow,
    retag_pre: &impl Fn(&ParamLin) -> ParamLin,
    retag_post: &impl Fn(&ParamLin) -> ParamLin,
    label: &impl Fn(&str) -> String,
) -> InvgenResult<Vec<Implication>> {
    let mut out = Vec::new();
    let writes = case.writes_to(target_row.array);
    if writes.len() > 1 {
        return Err(InvgenError::unsupported(format!(
            "more than one write to array `{}` on a single basic path",
            target_row.array
        )));
    }
    let source_arr =
        source.and_then(|s| s.array_row.as_ref()).filter(|a| a.array == target_row.array);

    // Fresh index variable k* and (if needed) a fresh variable for the
    // pre-state cell a[k*].
    let kstar = ParamLin::concrete(&LinExpr::var(VarRef::cur(Symbol::fresh("kstar"))));
    let cell_pre = ParamLin::concrete(&LinExpr::var(VarRef::cur(Symbol::fresh("cell"))));

    // Range rows of the consequent, over the post-state.
    let lower_post = retag_post(&target_row.lower);
    let upper_post = retag_post(&target_row.upper);
    let rhs_post = retag_post(&target_row.rhs);
    let range_rows = vec![
        ParamRow { expr: lower_post.sub(&kstar)?, op: RowOp::Le },
        ParamRow { expr: kstar.sub(&upper_post)?, op: RowOp::Le },
    ];

    let one = ParamLin::concrete(&LinExpr::constant(Rat::ONE));

    if let Some(w) = writes.first() {
        let widx = ParamLin::concrete(&w.index);
        let wval = ParamLin::concrete(&w.value);
        // (A) The read position k* hits the written cell: the written value
        // must satisfy the consequent relation.
        {
            let mut concrete = case.scalar.clone();
            // k* = w.index.
            concrete.push(LinConstraint::new(
                kstar.sub(&widx)?.eval(&ParamValuation::new()).map_err(keep)?,
                ConstrOp::Eq,
            ));
            let mut parametric = source_rows.to_vec();
            parametric.extend(range_rows.iter().cloned());
            for dir in consequent_directions(&wval, &rhs_post, target_row.op)? {
                out.push(Implication {
                    concrete: concrete.clone(),
                    parametric: parametric.clone(),
                    consequent: Consequent::Row(dir),
                    label: label("array row, written cell"),
                });
            }
        }
        // (B) The read position misses the written cell: split k* < idx and
        // k* > idx, and rely on the source invariant for the old value.
        for (dir_label, miss_row) in [
            ("k* below write", kstar.sub(&widx)?.add(&one)?),
            ("k* above write", widx.sub(&kstar)?.add(&one)?),
        ] {
            let miss = ParamRow { expr: miss_row, op: RowOp::Le };
            out.extend(preserved_cell_conditions(
                case,
                source_arr,
                source_rows,
                &range_rows,
                &kstar,
                &cell_pre,
                &rhs_post,
                target_row.op,
                Some(miss),
                retag_pre,
                &|what| label(&format!("array row, {dir_label}, {what}")),
            )?);
        }
    } else {
        // No write: the array is unchanged along the path.
        out.extend(preserved_cell_conditions(
            case,
            source_arr,
            source_rows,
            &range_rows,
            &kstar,
            &cell_pre,
            &rhs_post,
            target_row.op,
            None,
            retag_pre,
            &|what| label(&format!("array row, no write, {what}")),
        )?);
    }
    Ok(out)
}

fn keep(e: InvgenError) -> InvgenError {
    e
}

/// Conditions for a cell whose value is preserved along the path: the range
/// side condition (6) and the value condition (8) of the paper.
#[allow(clippy::too_many_arguments)]
fn preserved_cell_conditions(
    case: &RelationCase,
    source_arr: Option<&crate::template::ArrayRow>,
    source_rows: &[ParamRow],
    range_rows: &[ParamRow],
    kstar: &ParamLin,
    cell_pre: &ParamLin,
    rhs_post: &ParamLin,
    op: RelOp,
    miss: Option<ParamRow>,
    retag_pre: &impl Fn(&ParamLin) -> ParamLin,
    label: &impl Fn(&str) -> String,
) -> InvgenResult<Vec<Implication>> {
    let mut out = Vec::new();
    let mut base_parametric = source_rows.to_vec();
    base_parametric.extend(range_rows.iter().cloned());
    if let Some(m) = &miss {
        base_parametric.push(m.clone());
    }

    match source_arr {
        None => {
            // Without a source fact about the cell the only way to prove the
            // consequent is to show the antecedent contradictory (e.g. the
            // target range is empty on this path).
            out.push(Implication {
                concrete: case.scalar.clone(),
                parametric: base_parametric,
                consequent: Consequent::False,
                label: label("range must be empty"),
            });
        }
        Some(src) => {
            let lower_pre = retag_pre(&src.lower);
            let upper_pre = retag_pre(&src.upper);
            let rhs_pre = retag_pre(&src.rhs);
            // (6): the preserved index must fall into the source range.
            for (what, dir) in [
                ("range condition, lower", lower_pre.sub(kstar)?),
                ("range condition, upper", kstar.sub(&upper_pre)?),
            ] {
                out.push(Implication {
                    concrete: case.scalar.clone(),
                    parametric: base_parametric.clone(),
                    consequent: Consequent::Row(dir),
                    label: label(what),
                });
            }
            // (8): assuming the source cell fact, the target cell fact holds.
            let mut parametric = base_parametric.clone();
            parametric.extend(cell_fact_rows(cell_pre, &rhs_pre, src.op)?);
            for dir in consequent_directions(cell_pre, rhs_post, op)? {
                out.push(Implication {
                    concrete: case.scalar.clone(),
                    parametric: parametric.clone(),
                    consequent: Consequent::Row(dir),
                    label: label("value condition"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TemplateMap;
    use pathinv_ir::corpus;

    #[test]
    fn forward_equality_plus_inequality_template_is_instantiated() {
        let p = corpus::forward();
        let l1 = corpus::find_loc(&p, "L1");
        let mut templates = TemplateMap::new();
        let vars =
            [Symbol::intern("i"), Symbol::intern("n"), Symbol::intern("a"), Symbol::intern("b")];
        templates.add_scalar_row(l1, &vars, RowOp::Eq).unwrap();
        templates.add_scalar_row(l1, &vars, RowOp::Le).unwrap();
        let result = synthesize(&p, &templates, &SynthConfig::default()).unwrap();
        let inv = &result.invariants[&l1];
        // The synthesised invariant must be strong enough to prove the
        // assertion: together with i >= n it must force a + b = 3n.  We check
        // the key relationship a + b = 3i is implied.
        let solver = pathinv_smt::Solver::new();
        let claim = Formula::eq(
            pathinv_ir::Term::var("a").add(pathinv_ir::Term::var("b")),
            pathinv_ir::Term::int(3).mul(pathinv_ir::Term::var("i")),
        );
        assert!(solver.entails(inv, &claim).unwrap(), "invariant {inv} must imply a + b = 3i");
        assert!(result.stats.lp_calls > 0);
    }

    #[test]
    fn forward_equality_only_template_fails() {
        let p = corpus::forward();
        let l1 = corpus::find_loc(&p, "L1");
        let mut templates = TemplateMap::new();
        let vars =
            [Symbol::intern("i"), Symbol::intern("n"), Symbol::intern("a"), Symbol::intern("b")];
        templates.add_scalar_row(l1, &vars, RowOp::Eq).unwrap();
        let err = synthesize(&p, &templates, &SynthConfig::default()).unwrap_err();
        assert!(matches!(err, InvgenError::NoInvariant { .. }));
    }

    #[test]
    fn initcheck_array_template_is_instantiated() {
        let p = corpus::initcheck();
        let l1 = corpus::find_loc(&p, "L1");
        let l3 = corpus::find_loc(&p, "L3");
        let mut templates = TemplateMap::new();
        let scalars = [Symbol::intern("i"), Symbol::intern("n")];
        let a = Symbol::intern("a");
        templates.add_array_row(l1, a, &scalars, RelOp::Eq).unwrap();
        templates.add_array_row(l3, a, &scalars, RelOp::Eq).unwrap();
        let result = synthesize(&p, &templates, &SynthConfig::default()).unwrap();
        let inv1 = &result.invariants[&l1];
        let inv3 = &result.invariants[&l3];
        assert!(inv1.has_quantifier(), "expected a quantified invariant at L1, got {inv1}");
        assert!(inv3.has_quantifier(), "expected a quantified invariant at L3, got {inv3}");
        // The invariant at the check-loop head must justify the assertion:
        // together with i < n and 0 <= i it must imply a[i] = 0.
        let solver = pathinv_smt::Solver::new();
        let ante = Formula::and(vec![
            inv3.clone(),
            Formula::lt(pathinv_ir::Term::var("i"), pathinv_ir::Term::var("n")),
            Formula::ge(pathinv_ir::Term::var("i"), pathinv_ir::Term::int(0)),
        ]);
        let claim = Formula::eq(
            pathinv_ir::Term::var("a").select(pathinv_ir::Term::var("i")),
            pathinv_ir::Term::int(0),
        );
        assert!(
            solver.entails(&ante, &claim).unwrap(),
            "invariant {inv3} must prove the assertion"
        );
    }

    #[test]
    fn buggy_program_has_no_safe_invariant() {
        let p = corpus::buggy_initcheck();
        let l1 = corpus::find_loc(&p, "L1");
        let mut templates = TemplateMap::new();
        let scalars = [Symbol::intern("i")];
        templates.add_array_row(l1, Symbol::intern("a"), &scalars, RelOp::Eq).unwrap();
        let err = synthesize(&p, &templates, &SynthConfig::default());
        assert!(err.is_err(), "the buggy INITCHECK variant must not admit a safe invariant map");
    }

    #[test]
    fn multiplier_choice_ordering_prefers_zeros() {
        let config = SynthConfig::default();
        let rows = vec![
            ParamRow { expr: ParamLin::zero(), op: RowOp::Le },
            ParamRow { expr: ParamLin::zero(), op: RowOp::Eq },
        ];
        let choices = multiplier_choices(&rows, &config);
        assert_eq!(choices[0], vec![Rat::ZERO, Rat::ZERO]);
        assert_eq!(choices.len(), 9);
    }
}
