//! Constraint-based synthesis of template invariants (§4.2 of the paper).
//!
//! The synthesiser turns the initiation / consecution / safety conditions of
//! an invariant map into a system of constraints over the template
//! parameters, using Farkas' lemma: an implication between linear constraints
//! is valid iff the consequent is a non-negative combination of the
//! antecedent rows (plus a non-negative constant slack), or the antecedent is
//! itself contradictory.
//!
//! Because antecedent rows that come from the templates have *unknown*
//! coefficients, their Farkas multipliers make the system bilinear.  The
//! paper solved the resulting constraints with SICStus CLP(Q); here the
//! bilinearity is resolved by enumerating the multipliers of template rows
//! over a small candidate set (they are small integers in every published
//! example) while the multipliers of concrete rows and the template
//! parameters themselves stay as exact-rational LP unknowns.
//!
//! The enumeration is organised as a *conflict-driven, presolved, best-first*
//! frontier search over the conditions (DESIGN.md §10):
//!
//! * every candidate row batch is [presolved](mod@crate::presolve) before it
//!   touches a tableau — concrete-row multipliers are Gaussian-eliminated
//!   out of the per-implication encodings once, parameter equalities are
//!   eliminated out of the accumulated system per branch, duplicate and
//!   dominated rows are dropped, and contradictions detected by constant
//!   folding never reach the simplex at all;
//! * infeasible extensions yield a *minimal Farkas conflict* (an IIS from
//!   [`IncrementalSimplex::minimal_infeasible_subsystem`]) which is mapped
//!   back to the multiplier decisions that produced its rows; every future
//!   branch whose decision set contains a learned conflict core is skipped
//!   without solver work;
//! * candidate extensions are processed best-first — fewest non-zero
//!   multipliers first, under a documented deterministic total order
//!   (`multiplier_choices`) — so the surviving frontier holds the least
//!   surprising Farkas proofs regardless of how many branches were pruned.
//!
//! Universally quantified array rows are reduced to scalar implications
//! exactly as in §4.2: a fresh index `k*`, a case split on whether the read
//! hits the written cell, the range side condition (6), and the value
//! condition (8) with array reads replaced by fresh variables.

use crate::error::{InvgenError, InvgenResult};
use crate::presolve::{complete_witness, presolve_tagged, union_deps, Deps};
use crate::relation::{basic_paths, BasicPath, RelationCase};
use crate::stats;
use crate::template::{ParamId, ParamLin, ParamValuation, RowOp, Template, TemplateMap};
use pathinv_ir::{Formula, Loc, Program, RelOp, Symbol, VarRef};
use pathinv_smt::{ConstrOp, IncrementalSimplex, LinConstraint, LinExpr, Rat};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Unknowns of the generated linear constraint system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Unknown {
    /// A template parameter.
    Param(ParamId),
    /// The Farkas multiplier of concrete antecedent row `row` of implication
    /// `implication`.
    Mu {
        /// Index of the implication.
        implication: u32,
        /// Index of the concrete row within the implication.
        row: u32,
    },
}

impl std::fmt::Display for Unknown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unknown::Param(p) => write!(f, "{p}"),
            Unknown::Mu { implication, row } => write!(f, "mu{implication}_{row}"),
        }
    }
}

/// A parametric antecedent row of an implication.
#[derive(Clone, Debug)]
pub struct ParamRow {
    /// The parametric expression (`expr ⋈ 0`).
    pub expr: ParamLin,
    /// The relation.
    pub op: RowOp,
}

/// What an implication must establish.
#[derive(Clone, Debug)]
pub enum Consequent {
    /// Prove `expr ≤ 0` (equality consequents are split into two such
    /// implications before reaching this type).
    Row(ParamLin),
    /// Prove that the antecedent is contradictory.
    False,
}

/// One verification condition in implication form.
#[derive(Clone, Debug)]
pub struct Implication {
    /// Concrete antecedent rows (ops `≤`/`=`; strict rows are pre-tightened).
    pub concrete: Vec<LinConstraint<VarRef>>,
    /// Parametric antecedent rows (template rows and template-derived range
    /// rows).
    pub parametric: Vec<ParamRow>,
    /// The consequent.
    pub consequent: Consequent,
    /// Human-readable description, used in error messages and statistics.
    pub label: String,
}

/// Configuration of the bilinear search.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Candidate Farkas multipliers for parametric inequality rows.
    pub ineq_multipliers: Vec<Rat>,
    /// Candidate Farkas multipliers for parametric equality rows.
    pub eq_multipliers: Vec<Rat>,
    /// Maximum number of partial solutions kept after each condition.
    pub max_frontier: usize,
    /// Maximum number of feasible extensions kept per partial solution and
    /// condition.
    pub max_options_per_step: usize,
    /// Whether constraint batches are presolved (multiplier/parameter
    /// equality elimination, dedup/subsumption, constant-folding conflicts)
    /// before reaching the simplex.  On by default; off is the raw-system
    /// ablation baseline used by the `synth_frontier` microbenchmark.
    pub presolve: bool,
    /// Whether infeasible extensions learn minimal Farkas conflict cores
    /// that prune every later branch containing them.  On by default; off
    /// is the purely enumerative frontier of the pre-conflict-driven
    /// pipeline.
    pub conflict_driven: bool,
    /// Worker threads evaluating beam candidates (`1` = the sequential
    /// search).  Candidates are evaluated in parallel waves and merged in
    /// the sequential candidate order, so the surviving frontier — and with
    /// it the synthesized invariants and valuation — is byte-identical at
    /// any worker count (DESIGN.md §12).  Work *counters* (LP calls, pruned
    /// branches) may differ: a worker can evaluate a candidate the
    /// sequential search would have skipped via a core learned moments
    /// earlier, or one the merge then drops at a frontier cap.
    pub parallel_workers: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            ineq_multipliers: vec![Rat::ZERO, Rat::ONE, Rat::int(2)],
            eq_multipliers: vec![Rat::MINUS_ONE, Rat::ZERO, Rat::ONE],
            // A 24-wide beam is what the INITCHECK-family path programs
            // need to keep the generalising branch alive past the loop-exit
            // range conditions; conflict-driven pruning makes the wider
            // beam cheaper than the old 12-wide enumerative one.
            max_frontier: 24,
            max_options_per_step: 6,
            presolve: true,
            conflict_driven: true,
            parallel_workers: 1,
        }
    }
}

/// Statistics of a synthesis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Number of verification conditions (implications) generated.
    pub implications: usize,
    /// Number of LP feasibility checks performed (witness-satisfied and
    /// conflict-pruned extensions cost none).
    pub lp_calls: usize,
    /// Number of multiplier choices explored.
    pub choices_explored: usize,
    /// Branches skipped without solver work: covered by a learned conflict
    /// core, or refuted by presolve constant folding alone.
    pub branches_pruned: usize,
    /// Minimal Farkas conflict cores learned from infeasible extensions.
    pub cores_learned: usize,
}

/// One partial solution of the frontier search: the multiplier decisions
/// taken so far, the live incremental tableau over the accumulated
/// (presolved) system, the witness model of its last real feasibility check
/// (empty before the first; unknowns absent from the witness read as zero),
/// and the presolve bookkeeping — eliminated definitions for witness
/// completion, the per-pushed-row decision dependencies for conflict-core
/// mapping, and the row/variable sets already in the tableau for cross-batch
/// dedup and elimination safety.
#[derive(Clone, Debug, Default)]
struct FrontierEntry {
    /// Option index chosen per implication, in implication order.
    decisions: Vec<u32>,
    tableau: IncrementalSimplex<Unknown>,
    witness: BTreeMap<Unknown, Rat>,
    /// Eliminated definitions `x := e` in elimination order (branch-level
    /// parameter eliminations; per-option multiplier eliminations never
    /// resurface and are not recorded).
    subst: Vec<(Unknown, LinExpr<Unknown>, Deps)>,
    /// Decision dependencies of each pushed tableau row, in push order.
    row_deps: Vec<Deps>,
    /// Rows already pushed (cross-batch duplicates are skipped).
    seen_rows: HashSet<LinConstraint<Unknown>>,
    /// Unknowns already appearing in pushed rows (they must never be
    /// eliminated: the pushed rows would keep referencing them).
    seen_vars: BTreeSet<Unknown>,
}

/// A learned conflict core: a set of `(implication position, option index)`
/// decisions that is jointly infeasible.  Any branch whose decision set
/// contains every pair is skipped without solver work.
type ConflictCore = Vec<(u32, u32)>;

/// Result of a successful synthesis.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// The invariant formula at each templated cut point.
    pub invariants: BTreeMap<Loc, Formula>,
    /// The parameter valuation found.
    pub valuation: ParamValuation,
    /// Search statistics.
    pub stats: SynthStats,
}

/// Synthesises an invariant map for `program` within the given template map.
///
/// # Errors
///
/// Returns [`InvgenError::NoInvariant`] if no parameter valuation satisfies
/// all conditions within the configured multiplier bounds, and
/// [`InvgenError::Unsupported`] for programs outside the supported fragment
/// (e.g. two writes to a template array on one basic path).
pub fn synthesize(
    program: &Program,
    templates: &TemplateMap,
    config: &SynthConfig,
) -> InvgenResult<Synthesis> {
    let paths = basic_paths(program)?;
    let mut implications = Vec::new();
    for bp in &paths {
        implications.extend(conditions_for_basic_path(program, templates, bp)?);
    }
    // Safety conditions first: they prune the parameter space fastest.
    implications.sort_by_key(|imp| match imp.consequent {
        Consequent::False => 0,
        Consequent::Row(_) => 1,
    });
    let mut stats = SynthStats { implications: implications.len(), ..Default::default() };

    // Each frontier entry carries a live incremental tableau over its
    // accumulated (presolved) system and the witness of its last real
    // feasibility check.  Extensions are processed best-first (fewest
    // non-zero multipliers, then the documented deterministic order) and
    // pass through three filters before any simplex work:
    //
    // 1. *conflict cores* — a branch whose decision set contains a learned
    //    core is infeasible by an already-extracted minimal Farkas
    //    conflict;
    // 2. *presolve* — the option rows, rewritten through the branch's
    //    eliminated definitions, are reduced (equality elimination,
    //    dedup/subsumption against the batch and the tableau,
    //    constant-folding refutation);
    // 3. *witness replay* — a parent witness that already satisfies the
    //    reduced rows proves the extension feasible outright (eliminated
    //    unknowns extend the witness by their definitions, so reduced-row
    //    satisfaction is equivalent to raw-row satisfaction).
    //
    // Only extensions surviving all three reach the warm incremental
    // re-check, and an infeasible re-check pays for itself by learning the
    // conflict core that prunes the rest of its subtree.
    let mut frontier: Vec<FrontierEntry> = vec![FrontierEntry::default()];
    let mut learned: Vec<ConflictCore> = Vec::new();
    for (idx, imp) in implications.iter().enumerate() {
        let options = encode_options(imp, idx as u32, config)?;
        let pos = idx as u32;

        // Best-first candidate order across the whole frontier: simplest
        // option first, then parent order, then option order.  The sort is
        // stable and every key component is deterministic.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for parent in 0..frontier.len() {
            for opt in 0..options.len() {
                candidates.push((parent, opt));
            }
        }
        candidates.sort_by_key(|&(parent, opt)| (options[opt].score, parent, opt));

        let next = if config.parallel_workers > 1 {
            advance_frontier_parallel(
                &frontier,
                &options,
                &candidates,
                pos,
                &mut learned,
                config,
                &mut stats,
            )?
        } else {
            advance_frontier_sequential(
                &frontier,
                &options,
                &candidates,
                pos,
                &mut learned,
                config,
                &mut stats,
            )?
        };
        if next.is_empty() {
            return Err(InvgenError::no_invariant(format!(
                "condition `{}` has no solution within the multiplier bounds",
                imp.label
            )));
        }
        frontier = next;
    }

    // Extract a model from the surviving partial solutions.  Every entry is
    // feasible and carries a witness of its reduced system; completing it
    // through the eliminated definitions yields a witness of the full
    // accumulated Farkas system — normally no further solving is needed.  A
    // witness may still instantiate an array-bound expression with a
    // fractional coefficient (the LP works over the rationals); the first
    // such entry retries once with a cold solve of its full system (a fresh
    // Bland-rule model often lands on integral vertices the warm witness
    // missed).  Later entries skip the retry: their systems differ from the
    // first by a few multiplier choices, so a fresh model is fractional for
    // the same reason, and one cold call per synthesis keeps the
    // refine-phase cold-simplex budget flat.
    let mut last_error: Option<InvgenError> = None;
    let mut retried = false;
    let growth_params = templates.array_bound_growth_params();
    for mut entry in frontier {
        strengthen_array_bounds(&mut entry, &growth_params, &mut stats)?;
        let mut completed = entry.witness.clone();
        complete_witness(&mut completed, &entry.subst)?;
        match instantiate_from(templates, completed) {
            Ok(result) => {
                return Ok(Synthesis { invariants: result.0, valuation: result.1, stats })
            }
            Err(e) => last_error = Some(e),
        }
        if retried {
            continue;
        }
        retried = true;
        // Cold retry on the reconstructed full system: the pushed rows plus
        // the eliminated definitions as equality rows.
        let mut system = entry.tableau.active_constraints();
        for (x, def, _) in &entry.subst {
            let expr = LinExpr::var(*x).sub(def)?;
            system.push(LinConstraint::new(expr, ConstrOp::Eq));
        }
        if let pathinv_smt::LpResult::Sat(model) = pathinv_smt::lra_solve(&system)? {
            match instantiate_from(templates, model) {
                Ok(result) => {
                    return Ok(Synthesis { invariants: result.0, valuation: result.1, stats })
                }
                Err(e) => last_error = Some(e),
            }
        }
    }
    Err(match last_error {
        // Every surviving entry instantiated fractionally: within these
        // multiplier bounds there is no template-expressible invariant
        // (the rational relaxation admits solutions the integer-indexed
        // array quantifier cannot express).
        Some(e) => InvgenError::no_invariant(format!(
            "no surviving frontier entry instantiates to a template invariant ({e})"
        )),
        None => InvgenError::no_invariant("every surviving frontier entry became infeasible"),
    })
}

/// Outcome of evaluating one `(parent, option)` candidate against a fixed
/// core set.  The feasible child is a deterministic function of the parent
/// entry and the option alone — cores and caps only decide whether the
/// evaluation *runs*, never what it produces — which is what makes the
/// parallel evaluator's ordered merge byte-identical to the sequential
/// search (DESIGN.md §12).
enum CandidateOutcome {
    /// Skipped by a learned conflict core (filter 1): the branch repeats an
    /// already-extracted minimal Farkas conflict.
    CoveredByCore,
    /// Refuted by presolve constant folding (filter 2); carries the
    /// decision dependencies of the contradiction for core learning.
    PresolveConflict(Deps),
    /// Feasible: the extended entry, and whether a real LP check ran
    /// (`false` when the parent witness replayed, filter 3).
    Feasible(Box<FrontierEntry>, bool),
    /// Infeasible under the warm re-check; carries the minimal-conflict
    /// decision dependencies when conflict learning is on.
    Infeasible(Option<Deps>),
}

/// Runs one candidate through the three filters and (when they pass) the
/// warm feasibility re-check.  Reads only `acc`, `option`, and `learned`;
/// never mutates shared state — the caller merges the outcome.
fn evaluate_candidate(
    acc: &FrontierEntry,
    option: &EncodedOption,
    pos: u32,
    opt_idx: u32,
    learned: &[ConflictCore],
    config: &SynthConfig,
) -> InvgenResult<CandidateOutcome> {
    // Filter 1: learned conflict cores.
    if config.conflict_driven {
        let covered = |core: &ConflictCore| {
            core.iter().all(|&(p, o)| {
                if p == pos {
                    o == opt_idx
                } else {
                    acc.decisions.get(p as usize) == Some(&o)
                }
            })
        };
        if learned.iter().any(covered) {
            return Ok(CandidateOutcome::CoveredByCore);
        }
    }

    // Rewrite the option rows through the branch's eliminated
    // definitions (in creation order; later definitions never
    // mention earlier-eliminated unknowns).
    let mut rows: Vec<(LinConstraint<Unknown>, Deps)> =
        option.rows.iter().map(|c| (c.clone(), vec![pos])).collect();
    for (x, def, def_deps) in &acc.subst {
        for (c, deps) in &mut rows {
            let b = c.expr.coeff(x);
            if b.is_zero() {
                continue;
            }
            c.expr = c
                .expr
                .add(&LinExpr::scaled_var(*x, b.neg().map_err(InvgenError::from)?))?
                .add(&def.scale(b)?)?;
            *deps = union_deps(deps, def_deps);
        }
    }

    // Filter 2: presolve the batch (eliminating only unknowns the
    // tableau has never seen — eliminating a live column would
    // weaken the pushed rows).
    let mut new_elims: Vec<(Unknown, LinExpr<Unknown>, Deps)> = Vec::new();
    if config.presolve {
        let presolved = presolve_tagged(rows, &|u| !acc.seen_vars.contains(u))?;
        if let Some(conflict_deps) = presolved.conflict {
            // Refuted by constant folding alone, without touching a tableau.
            return Ok(CandidateOutcome::PresolveConflict(conflict_deps));
        }
        rows = presolved.rows;
        new_elims = presolved.eliminated;
        // Cross-batch dedup: rows already in the tableau are
        // already enforced.
        rows.retain(|(c, _)| !acc.seen_rows.contains(c));
    }

    // Filter 3: witness replay on the reduced rows.
    let witness_holds = {
        let lookup = |u: &Unknown| acc.witness.get(u).copied().unwrap_or(Rat::ZERO);
        let mut all = true;
        for (c, _) in &rows {
            if !c.holds(&lookup)? {
                all = false;
                break;
            }
        }
        all
    };

    let mut child = acc.clone();
    child.decisions.push(opt_idx);
    child.subst.extend(new_elims);
    for (c, deps) in &rows {
        child.tableau.push_constraint(c)?;
        child.row_deps.push(deps.clone());
        child.seen_rows.insert(c.clone());
        for v in c.expr.vars() {
            child.seen_vars.insert(v);
        }
    }
    if witness_holds {
        return Ok(CandidateOutcome::Feasible(Box::new(child), false));
    }
    // Recorded before the check, exactly as the pre-parallel loop did, so
    // an aborted run's thread-local counters still include the attempt.
    stats::record_system_solved();
    if child.tableau.check()? {
        child.witness = child.tableau.model()?;
        Ok(CandidateOutcome::Feasible(Box::new(child), true))
    } else if config.conflict_driven {
        // Shrink the conflict to an irreducible infeasible
        // subsystem and map its rows back to the decisions that
        // produced them.
        let core_rows = child.tableau.minimal_infeasible_subsystem()?;
        let mut core_deps: Deps = Vec::new();
        for i in core_rows {
            core_deps = union_deps(&core_deps, &child.row_deps[i]);
        }
        Ok(CandidateOutcome::Infeasible(Some(core_deps)))
    } else {
        Ok(CandidateOutcome::Infeasible(None))
    }
}

/// Folds one evaluated candidate into the next frontier, bumping the
/// counters the way the sequential loop does and learning any conflict
/// core the evaluation extracted.
#[allow(clippy::too_many_arguments)]
fn merge_outcome(
    outcome: CandidateOutcome,
    parent: usize,
    opt: u32,
    pos: u32,
    parent_decisions: &[u32],
    next: &mut Vec<FrontierEntry>,
    kept_per_parent: &mut [usize],
    learned: &mut Vec<ConflictCore>,
    config: &SynthConfig,
    stats: &mut SynthStats,
) {
    match outcome {
        CandidateOutcome::CoveredByCore => {
            stats.branches_pruned += 1;
            stats::record_branch_pruned();
        }
        CandidateOutcome::PresolveConflict(conflict_deps) => {
            stats.branches_pruned += 1;
            stats::record_branch_pruned();
            if config.conflict_driven {
                learn_core(learned, stats, &conflict_deps, parent_decisions, pos, opt);
            }
        }
        CandidateOutcome::Feasible(child, used_lp) => {
            if used_lp {
                stats.lp_calls += 1;
            }
            next.push(*child);
            kept_per_parent[parent] += 1;
        }
        CandidateOutcome::Infeasible(core_deps) => {
            stats.lp_calls += 1;
            if let Some(deps) = core_deps {
                learn_core(learned, stats, &deps, parent_decisions, pos, opt);
            }
        }
    }
}

/// The sequential frontier advance: candidates in best-first order, caps
/// applied before evaluation, cores learned as soon as they are extracted.
#[allow(clippy::too_many_arguments)]
fn advance_frontier_sequential(
    frontier: &[FrontierEntry],
    options: &[EncodedOption],
    candidates: &[(usize, usize)],
    pos: u32,
    learned: &mut Vec<ConflictCore>,
    config: &SynthConfig,
    stats: &mut SynthStats,
) -> InvgenResult<Vec<FrontierEntry>> {
    let mut next: Vec<FrontierEntry> = Vec::new();
    let mut kept_per_parent = vec![0usize; frontier.len()];
    for &(parent, opt_idx) in candidates {
        if next.len() >= config.max_frontier {
            break;
        }
        if kept_per_parent[parent] >= config.max_options_per_step {
            continue;
        }
        // One cancellation poll per beam candidate — the poll granularity
        // the racing harness's contract promises for synthesis.
        pathinv_smt::check_ambient().map_err(InvgenError::from)?;
        stats.choices_explored += 1;
        stats::record_branch_explored();
        let outcome = evaluate_candidate(
            &frontier[parent],
            &options[opt_idx],
            pos,
            opt_idx as u32,
            learned,
            config,
        )?;
        merge_outcome(
            outcome,
            parent,
            opt_idx as u32,
            pos,
            &frontier[parent].decisions,
            &mut next,
            &mut kept_per_parent,
            learned,
            config,
            stats,
        );
    }
    Ok(next)
}

/// The parallel frontier advance: candidates are evaluated in waves on
/// scoped worker threads and merged *in the sequential candidate order*.
///
/// Determinism argument (DESIGN.md §12): a candidate's outcome is a pure
/// function of its parent entry and option — cores only *skip* evaluations
/// of branches that are infeasible by construction (a covered branch
/// re-pushes a jointly infeasible row set, so it could never enter `next`),
/// and the frontier/per-parent caps are re-applied during the ordered
/// merge.  The surviving entries and their order — hence the synthesized
/// invariants — are therefore identical to the sequential search at any
/// worker count.  Only the work counters can differ, because workers may
/// evaluate candidates the sequential loop would have skipped.
#[allow(clippy::too_many_arguments)]
fn advance_frontier_parallel(
    frontier: &[FrontierEntry],
    options: &[EncodedOption],
    candidates: &[(usize, usize)],
    pos: u32,
    learned: &mut Vec<ConflictCore>,
    config: &SynthConfig,
    stats: &mut SynthStats,
) -> InvgenResult<Vec<FrontierEntry>> {
    let workers = config.parallel_workers;
    let mut next: Vec<FrontierEntry> = Vec::new();
    let mut kept_per_parent = vec![0usize; frontier.len()];
    // Waves keep speculation bounded: the sequential search stops once the
    // frontier fills, so evaluating every candidate eagerly would waste the
    // tail.  A few candidates per worker per wave is enough to keep every
    // worker busy without racing far past the caps.
    let wave_size = workers * 4;
    let mut cursor = 0usize;
    'waves: while cursor < candidates.len() && next.len() < config.max_frontier {
        // One cancellation poll per wave (workers do not inherit the
        // coordinator's ambient token; the coordinator polls for them).
        pathinv_smt::check_ambient().map_err(InvgenError::from)?;
        let wave = &candidates[cursor..candidates.len().min(cursor + wave_size)];
        cursor += wave.len();
        // Evaluate the wave concurrently against the wave-start core set.
        // Contiguous chunks preserve candidate order across the flatten.
        let chunk_len = wave.len().div_ceil(workers);
        let cores: &[ConflictCore] = learned;
        let wave_outcomes: Vec<InvgenResult<CandidateOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = wave
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move || {
                        let smt_before = pathinv_smt::stats_snapshot();
                        let synth_before = stats::snapshot();
                        let outcomes: Vec<InvgenResult<CandidateOutcome>> = chunk
                            .iter()
                            .map(|&(parent, opt_idx)| {
                                evaluate_candidate(
                                    &frontier[parent],
                                    &options[opt_idx],
                                    pos,
                                    opt_idx as u32,
                                    cores,
                                    config,
                                )
                            })
                            .collect();
                        (
                            outcomes,
                            pathinv_smt::stats_snapshot().since(&smt_before),
                            stats::snapshot().since(&synth_before),
                        )
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(wave.len());
            for handle in handles {
                let (outcomes, smt_delta, synth_delta) =
                    handle.join().expect("beam worker panicked");
                // Fold the workers' thread-local counters back into the
                // coordinator's, so a caller's snapshot delta around the
                // whole synthesis still accounts for every call.
                pathinv_smt::stats::add(&smt_delta);
                stats::add(&synth_delta);
                all.extend(outcomes);
            }
            all
        });
        // Ordered merge: identical cap logic, identical push order.
        for (&(parent, opt_idx), outcome) in wave.iter().zip(wave_outcomes) {
            if next.len() >= config.max_frontier {
                break 'waves;
            }
            if kept_per_parent[parent] >= config.max_options_per_step {
                continue;
            }
            stats.choices_explored += 1;
            stats::record_branch_explored();
            merge_outcome(
                outcome?,
                parent,
                opt_idx as u32,
                pos,
                &frontier[parent].decisions,
                &mut next,
                &mut kept_per_parent,
                learned,
                config,
                stats,
            );
        }
    }
    Ok(next)
}

/// Biases a surviving entry's witness toward *growing* array ranges: for
/// each upper-bound coefficient parameter of a quantified template row, the
/// constraint `p ≥ 1` is tentatively pushed (rewritten through the branch's
/// eliminated definitions) and kept when the system stays feasible — a
/// checkpointed warm re-check per parameter, no cold solving.
///
/// Every witness of the strengthened system is still a witness of the
/// original, so soundness is untouched; the bias only selects, among the
/// valid invariant maps, one whose quantified range tracks a program
/// variable (the §5 shape `0 ≤ k ≤ i-1`) over a degenerate constant range
/// that would force another round of loop unrolling downstream.
fn strengthen_array_bounds(
    entry: &mut FrontierEntry,
    growth_params: &[ParamId],
    stats: &mut SynthStats,
) -> InvgenResult<()> {
    for p in growth_params {
        let u = Unknown::Param(*p);
        // Rewrite the parameter through the branch's eliminated
        // definitions (in creation order, as everywhere else).
        let mut expr = LinExpr::var(u);
        for (x, def, _) in &entry.subst {
            let b = expr.coeff(x);
            if b.is_zero() {
                continue;
            }
            expr = expr
                .add(&LinExpr::scaled_var(*x, b.neg().map_err(InvgenError::from)?))?
                .add(&def.scale(b)?)?;
        }
        // p ≥ 1, normalised as 1 - p ≤ 0.
        let row = LinExpr::constant(Rat::ONE).sub(&expr)?;
        let checkpoint = entry.tableau.checkpoint();
        entry.tableau.push_constraint(&LinConstraint::new(row, ConstrOp::Le))?;
        stats.lp_calls += 1;
        stats::record_system_solved();
        if entry.tableau.check()? {
            entry.witness = entry.tableau.model()?;
        } else {
            entry.tableau.pop_to(checkpoint)?;
        }
    }
    Ok(())
}

/// Filters a witness down to the template parameters and instantiates the
/// template map under it.
fn instantiate_from(
    templates: &TemplateMap,
    witness: BTreeMap<Unknown, Rat>,
) -> InvgenResult<(BTreeMap<Loc, Formula>, ParamValuation)> {
    let valuation = witness
        .into_iter()
        .filter_map(|(u, r)| match u {
            Unknown::Param(p) => Some((p, r)),
            Unknown::Mu { .. } => None,
        })
        .collect::<ParamValuation>();
    let invariants = templates.instantiate(&valuation)?;
    Ok((invariants, valuation))
}

/// Records a conflict core (decision positions → the options chosen there),
/// deduplicating against already-learned cores.
fn learn_core(
    learned: &mut Vec<ConflictCore>,
    stats: &mut SynthStats,
    core_deps: &Deps,
    decisions: &[u32],
    pos: u32,
    opt: u32,
) {
    let core: ConflictCore = core_deps
        .iter()
        .map(|&p| (p, if p == pos { opt } else { decisions[p as usize] }))
        .collect();
    if !learned.contains(&core) {
        learned.push(core);
        stats.cores_learned += 1;
        stats::record_core_learned();
    }
}

/// One candidate extension of an implication: the (possibly presolved) rows
/// to push, and the best-first score (non-zero multiplier count of the
/// generating choice).
struct EncodedOption {
    rows: Vec<LinConstraint<Unknown>>,
    score: usize,
}

/// Generates the Farkas option encodings (variant × multiplier choice) for an
/// implication.
///
/// With presolve enabled, each option's rows are reduced once here, shared
/// by every branch that considers the option: the implication's concrete-row
/// multipliers occur nowhere else in the accumulated system, so their
/// defining equalities are Gaussian-eliminated context-free.  Options whose
/// reduced system is already contradictory, and options whose reduced rows
/// duplicate an earlier option's, are dropped outright.
fn encode_options(
    imp: &Implication,
    index: u32,
    config: &SynthConfig,
) -> InvgenResult<Vec<EncodedOption>> {
    let lambda_choices = multiplier_choices(&imp.parametric, config);
    let mut out: Vec<EncodedOption> = Vec::new();
    let mut seen: HashSet<Vec<LinConstraint<Unknown>>> = HashSet::new();
    for lambda in &lambda_choices {
        let score = lambda.iter().filter(|c| !c.is_zero()).count();
        let mut variants = Vec::new();
        match &imp.consequent {
            Consequent::Row(expr) => {
                variants.push(encode_implication(imp, index, lambda, Some(expr))?);
                variants.push(encode_implication(imp, index, lambda, None)?);
            }
            Consequent::False => {
                variants.push(encode_implication(imp, index, lambda, None)?);
            }
        }
        for rows in variants {
            let rows = if config.presolve {
                let tagged = rows.into_iter().map(|c| (c, vec![index])).collect();
                let presolved = presolve_tagged(tagged, &|u| matches!(u, Unknown::Mu { .. }))?;
                if presolved.conflict.is_some() {
                    // Self-contradictory under this multiplier choice: the
                    // option can never extend any branch.
                    continue;
                }
                presolved.rows.into_iter().map(|(c, _)| c).collect::<Vec<_>>()
            } else {
                rows
            };
            if config.presolve && !seen.insert(rows.clone()) {
                // Distinct multiplier choices frequently reduce to the same
                // row set; later (higher-score) duplicates add nothing.
                continue;
            }
            out.push(EncodedOption { rows, score });
        }
    }
    Ok(out)
}

/// Enumerates candidate multiplier vectors for the parametric rows, in the
/// documented total order, with symmetric and dominated choices pruned.
///
/// **Order** (fully deterministic, independent of platform and worker
/// count): ascending by the number of non-zero multipliers, ties broken
/// lexicographically by each row's *candidate index* (its position in
/// `ineq_multipliers`/`eq_multipliers`), rows compared left to right.
/// Best-first traversal of the frontier relies on this order being total.
///
/// **Pruning** (choices removed without losing any satisfiable encoding):
///
/// * *symmetric rows* — when rows `i < j` are identical (same parametric
///   expression and operator), swapping their multipliers produces the
///   same encoded system; only choices with candidate index non-decreasing
///   across each identical-row group are kept;
/// * *dominated (zero) rows* — a row whose expression is identically zero
///   contributes `λ·0` for any `λ`; it is pinned to its first candidate.
fn multiplier_choices(rows: &[ParamRow], config: &SynthConfig) -> Vec<Vec<Rat>> {
    // First identical row (the group leader) per row, if any.
    let leader: Vec<Option<usize>> = rows
        .iter()
        .enumerate()
        .map(|(j, r)| rows[..j].iter().position(|r2| r2.op == r.op && r2.expr == r.expr))
        .collect();
    let is_zero = |e: &ParamLin| {
        e.constant.is_constant()
            && e.constant.constant_part().is_zero()
            && e.coeffs.values().all(|c| c.is_constant() && c.constant_part().is_zero())
    };
    // Enumerate candidate-index vectors.
    let mut choices: Vec<Vec<usize>> = vec![Vec::new()];
    for (j, row) in rows.iter().enumerate() {
        let candidates = match row.op {
            RowOp::Le => &config.ineq_multipliers,
            RowOp::Eq => &config.eq_multipliers,
        };
        let mut next = Vec::with_capacity(choices.len() * candidates.len());
        for prefix in &choices {
            let range = if is_zero(&row.expr) {
                // Pin to a zero candidate when one exists (any multiplier
                // of a zero row encodes identically), else the first.
                let pin = candidates.iter().position(|c| c.is_zero()).unwrap_or(0);
                pin..(pin + 1).min(candidates.len())
            } else {
                let min = leader[j].map(|i| prefix[i]).unwrap_or(0);
                min..candidates.len()
            };
            for c in range {
                let mut v = prefix.clone();
                v.push(c);
                next.push(v);
            }
        }
        choices = next;
    }
    let value = |j: usize, c: usize| match rows[j].op {
        RowOp::Le => config.ineq_multipliers[c],
        RowOp::Eq => config.eq_multipliers[c],
    };
    choices.sort_by_key(|v| {
        let nonzeros = v.iter().enumerate().filter(|&(j, &c)| !value(j, c).is_zero()).count();
        (nonzeros, v.clone())
    });
    choices.into_iter().map(|v| v.iter().enumerate().map(|(j, &c)| value(j, c)).collect()).collect()
}

/// Encodes one implication under a fixed multiplier choice.
///
/// `goal = Some(e)` proves `e ≤ 0`; `goal = None` proves the antecedent
/// contradictory.
fn encode_implication(
    imp: &Implication,
    index: u32,
    lambda: &[Rat],
    goal: Option<&ParamLin>,
) -> InvgenResult<Vec<LinConstraint<Unknown>>> {
    // Collect every program variable that occurs anywhere.
    let mut vars: Vec<VarRef> = Vec::new();
    let mut add_vars = |vs: Vec<VarRef>| {
        for v in vs {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    };
    for c in &imp.concrete {
        add_vars(c.expr.vars());
    }
    for r in &imp.parametric {
        add_vars(r.expr.vars());
    }
    if let Some(g) = goal {
        add_vars(g.vars());
    }

    let param_to_unknown = |e: &LinExpr<ParamId>| -> InvgenResult<LinExpr<Unknown>> {
        Ok(e.substitute(&|p: &ParamId| LinExpr::var(Unknown::Param(*p)))?)
    };

    let mut constraints: Vec<LinConstraint<Unknown>> = Vec::new();

    // Per-variable coefficient equations and the constant-part inequality.
    // goal_expr - Σ λ_i·param_i - Σ μ_j·concrete_j  must be a non-positive
    // constant (matching) — or, for the contradiction variant,
    // Σ λ_i·param_i + Σ μ_j·concrete_j must be a constant ≥ 1.
    let sign = if goal.is_some() { Rat::MINUS_ONE } else { Rat::ONE };

    let coeff_of = |v: Option<VarRef>| -> InvgenResult<LinExpr<Unknown>> {
        let mut acc: LinExpr<Unknown> = LinExpr::zero();
        if let Some(g) = goal {
            let contribution = match v {
                Some(var) => g.coeffs.get(&var).cloned().unwrap_or_else(LinExpr::zero),
                None => g.constant.clone(),
            };
            acc = acc.add(&param_to_unknown(&contribution)?)?;
        }
        for (i, row) in imp.parametric.iter().enumerate() {
            let contribution = match v {
                Some(var) => row.expr.coeffs.get(&var).cloned().unwrap_or_else(LinExpr::zero),
                None => row.expr.constant.clone(),
            };
            let scaled = param_to_unknown(&contribution)?.scale(lambda[i].mul(sign)?)?;
            acc = acc.add(&scaled)?;
        }
        for (j, row) in imp.concrete.iter().enumerate() {
            let coeff = match v {
                Some(var) => row.expr.coeff(&var),
                None => row.expr.constant_part(),
            };
            if coeff.is_zero() {
                continue;
            }
            let mu = Unknown::Mu { implication: index, row: j as u32 };
            acc = acc.add(&LinExpr::scaled_var(mu, coeff.mul(sign)?))?;
        }
        Ok(acc)
    };

    for v in &vars {
        let e = coeff_of(Some(*v))?;
        constraints.push(LinConstraint::new(e, ConstrOp::Eq));
    }
    let constant = coeff_of(None)?;
    if goal.is_some() {
        // constant ≤ 0.
        constraints.push(LinConstraint::new(constant, ConstrOp::Le));
    } else {
        // constant ≥ 1, i.e. 1 - constant ≤ 0.
        let one_minus = LinExpr::constant(Rat::ONE).sub(&constant)?;
        constraints.push(LinConstraint::new(one_minus, ConstrOp::Le));
    }

    // Sign constraints: multipliers of concrete inequality rows are
    // non-negative (equality rows are unrestricted).  Multipliers of
    // parametric rows were chosen from sign-respecting candidate sets.
    for (j, row) in imp.concrete.iter().enumerate() {
        if row.op != ConstrOp::Eq {
            let mu = Unknown::Mu { implication: index, row: j as u32 };
            constraints
                .push(LinConstraint::new(LinExpr::scaled_var(mu, Rat::MINUS_ONE), ConstrOp::Le));
        }
    }
    Ok(constraints)
}

/// Generates the verification conditions contributed by one basic path.
pub fn conditions_for_basic_path(
    program: &Program,
    templates: &TemplateMap,
    bp: &BasicPath,
) -> InvgenResult<Vec<Implication>> {
    let source = templates.templates.get(&bp.from);
    let target = templates.templates.get(&bp.to);
    let mut out = Vec::new();
    let path_label = format!("{} -> {}", program.loc_label(bp.from), program.loc_label(bp.to));
    for (case_idx, case) in bp.cases.iter().enumerate() {
        let label = |what: &str| format!("{path_label} [case {case_idx}] {what}");
        let retag_pre = |e: &ParamLin| e.retag_vars(&|v| bp.pre.get(&v.sym).copied().unwrap_or(v));
        let retag_post =
            |e: &ParamLin| e.retag_vars(&|v| bp.post.get(&v.sym).copied().unwrap_or(v));

        // Antecedent parametric rows from the source template (scalar only;
        // the source array row is brought in where needed below).
        let mut source_rows: Vec<ParamRow> = Vec::new();
        if let Some(src) = source {
            for row in &src.scalar_rows {
                source_rows.push(ParamRow { expr: retag_pre(&row.expr), op: row.op });
            }
        }

        if bp.to == program.error() {
            out.extend(safety_conditions(case, source, &source_rows, &retag_pre, &label)?);
            continue;
        }

        let Some(tgt) = target else { continue };

        // Scalar consequent rows.
        for (row_idx, row) in tgt.scalar_rows.iter().enumerate() {
            let expr = retag_post(&row.expr);
            let directions: Vec<ParamLin> = match row.op {
                RowOp::Le => vec![expr.clone()],
                RowOp::Eq => vec![expr.clone(), expr.scale(Rat::MINUS_ONE)?],
            };
            for (d, dir) in directions.into_iter().enumerate() {
                out.push(Implication {
                    concrete: case.scalar.clone(),
                    parametric: source_rows.clone(),
                    consequent: Consequent::Row(dir),
                    label: label(&format!("scalar row {row_idx} dir {d}")),
                });
            }
        }

        // Quantified array consequent row.
        if let Some(arr) = &tgt.array_row {
            out.extend(array_conditions(
                case,
                source,
                &source_rows,
                arr,
                &retag_pre,
                &retag_post,
                &label,
            )?);
        }
    }
    Ok(out)
}

/// Safety conditions: the antecedent (source invariant ∧ path relation) must
/// be contradictory.  A quantified source row is instantiated at every read
/// index of its array, splitting on whether the index lies in the quantified
/// range.
fn safety_conditions(
    case: &RelationCase,
    source: Option<&Template>,
    source_rows: &[ParamRow],
    retag_pre: &impl Fn(&ParamLin) -> ParamLin,
    label: &impl Fn(&str) -> String,
) -> InvgenResult<Vec<Implication>> {
    let mut out = Vec::new();
    let arr = source.and_then(|s| s.array_row.as_ref());
    let reads = arr.map(|a| case.reads_from(a.array)).unwrap_or_default();
    if arr.is_none() || reads.is_empty() {
        out.push(Implication {
            concrete: case.scalar.clone(),
            parametric: source_rows.to_vec(),
            consequent: Consequent::False,
            label: label("safety"),
        });
        return Ok(out);
    }
    let arr = arr.expect("checked above");
    let lower = retag_pre(&arr.lower);
    let upper = retag_pre(&arr.upper);
    let rhs = retag_pre(&arr.rhs);
    // Instantiate at the first read (further reads of the same array at the
    // same index share the result variable; distinct-index reads in an error
    // guard do not occur in the supported fragment).
    let read = reads[0];
    let idx = ParamLin::concrete(&read.index);
    let cell = ParamLin::concrete(&LinExpr::var(read.result));

    // Case (a): the read index is inside the quantified range, so the cell
    // fact is available.
    {
        let mut parametric = source_rows.to_vec();
        parametric.push(ParamRow { expr: lower.sub(&idx)?, op: RowOp::Le });
        parametric.push(ParamRow { expr: idx.sub(&upper)?, op: RowOp::Le });
        parametric.extend(cell_fact_rows(&cell, &rhs, arr.op)?);
        out.push(Implication {
            concrete: case.scalar.clone(),
            parametric,
            consequent: Consequent::False,
            label: label("safety (read in range)"),
        });
    }
    // Case (b): the read index is below the range.
    {
        let mut parametric = source_rows.to_vec();
        // idx < lower  ≡  idx - lower + 1 ≤ 0 (integers).
        let row = idx.sub(&lower)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?;
        parametric.push(ParamRow { expr: row, op: RowOp::Le });
        out.push(Implication {
            concrete: case.scalar.clone(),
            parametric,
            consequent: Consequent::False,
            label: label("safety (read below range)"),
        });
    }
    // Case (c): the read index is above the range.
    {
        let mut parametric = source_rows.to_vec();
        let row = upper.sub(&idx)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?;
        parametric.push(ParamRow { expr: row, op: RowOp::Le });
        out.push(Implication {
            concrete: case.scalar.clone(),
            parametric,
            consequent: Consequent::False,
            label: label("safety (read above range)"),
        });
    }
    Ok(out)
}

/// Rows expressing `cell ⋈ rhs` for use in an antecedent.
fn cell_fact_rows(cell: &ParamLin, rhs: &ParamLin, op: RelOp) -> InvgenResult<Vec<ParamRow>> {
    Ok(match op {
        RelOp::Eq => vec![ParamRow { expr: cell.sub(rhs)?, op: RowOp::Eq }],
        RelOp::Ge => vec![ParamRow { expr: rhs.sub(cell)?, op: RowOp::Le }],
        RelOp::Le => vec![ParamRow { expr: cell.sub(rhs)?, op: RowOp::Le }],
        RelOp::Gt => vec![ParamRow {
            expr: rhs.sub(cell)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?,
            op: RowOp::Le,
        }],
        RelOp::Lt => vec![ParamRow {
            expr: cell.sub(rhs)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?,
            op: RowOp::Le,
        }],
        RelOp::Ne => {
            return Err(InvgenError::unsupported(
                "disequality is not a supported array-row relation",
            ))
        }
    })
}

/// The consequent direction rows for `lhs ⋈ rhs` (each entry proves one `≤`).
fn consequent_directions(lhs: &ParamLin, rhs: &ParamLin, op: RelOp) -> InvgenResult<Vec<ParamLin>> {
    Ok(match op {
        RelOp::Eq => vec![lhs.sub(rhs)?, rhs.sub(lhs)?],
        RelOp::Ge => vec![rhs.sub(lhs)?],
        RelOp::Le => vec![lhs.sub(rhs)?],
        RelOp::Gt => {
            vec![rhs.sub(lhs)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?]
        }
        RelOp::Lt => {
            vec![lhs.sub(rhs)?.add(&ParamLin::concrete(&LinExpr::constant(Rat::ONE)))?]
        }
        RelOp::Ne => {
            return Err(InvgenError::unsupported(
                "disequality is not a supported array-row relation",
            ))
        }
    })
}

/// The §4.2 reduction for a quantified consequent row.
#[allow(clippy::too_many_arguments)]
fn array_conditions(
    case: &RelationCase,
    source: Option<&Template>,
    source_rows: &[ParamRow],
    target_row: &crate::template::ArrayRow,
    retag_pre: &impl Fn(&ParamLin) -> ParamLin,
    retag_post: &impl Fn(&ParamLin) -> ParamLin,
    label: &impl Fn(&str) -> String,
) -> InvgenResult<Vec<Implication>> {
    let mut out = Vec::new();
    let writes = case.writes_to(target_row.array);
    if writes.len() > 1 {
        return Err(InvgenError::unsupported(format!(
            "more than one write to array `{}` on a single basic path",
            target_row.array
        )));
    }
    let source_arr =
        source.and_then(|s| s.array_row.as_ref()).filter(|a| a.array == target_row.array);

    // Fresh index variable k* and (if needed) a fresh variable for the
    // pre-state cell a[k*].
    let kstar = ParamLin::concrete(&LinExpr::var(VarRef::cur(Symbol::fresh("kstar"))));
    let cell_pre = ParamLin::concrete(&LinExpr::var(VarRef::cur(Symbol::fresh("cell"))));

    // Range rows of the consequent, over the post-state.
    let lower_post = retag_post(&target_row.lower);
    let upper_post = retag_post(&target_row.upper);
    let rhs_post = retag_post(&target_row.rhs);
    let range_rows = vec![
        ParamRow { expr: lower_post.sub(&kstar)?, op: RowOp::Le },
        ParamRow { expr: kstar.sub(&upper_post)?, op: RowOp::Le },
    ];

    let one = ParamLin::concrete(&LinExpr::constant(Rat::ONE));

    if let Some(w) = writes.first() {
        let widx = ParamLin::concrete(&w.index);
        let wval = ParamLin::concrete(&w.value);
        // (A) The read position k* hits the written cell: the written value
        // must satisfy the consequent relation.
        {
            let mut concrete = case.scalar.clone();
            // k* = w.index.
            concrete.push(LinConstraint::new(
                kstar.sub(&widx)?.eval(&ParamValuation::new()).map_err(keep)?,
                ConstrOp::Eq,
            ));
            let mut parametric = source_rows.to_vec();
            parametric.extend(range_rows.iter().cloned());
            for dir in consequent_directions(&wval, &rhs_post, target_row.op)? {
                out.push(Implication {
                    concrete: concrete.clone(),
                    parametric: parametric.clone(),
                    consequent: Consequent::Row(dir),
                    label: label("array row, written cell"),
                });
            }
        }
        // (B) The read position misses the written cell: split k* < idx and
        // k* > idx, and rely on the source invariant for the old value.
        for (dir_label, miss_row) in [
            ("k* below write", kstar.sub(&widx)?.add(&one)?),
            ("k* above write", widx.sub(&kstar)?.add(&one)?),
        ] {
            let miss = ParamRow { expr: miss_row, op: RowOp::Le };
            out.extend(preserved_cell_conditions(
                case,
                source_arr,
                source_rows,
                &range_rows,
                &kstar,
                &cell_pre,
                &rhs_post,
                target_row.op,
                Some(miss),
                retag_pre,
                &|what| label(&format!("array row, {dir_label}, {what}")),
            )?);
        }
    } else {
        // No write: the array is unchanged along the path.
        out.extend(preserved_cell_conditions(
            case,
            source_arr,
            source_rows,
            &range_rows,
            &kstar,
            &cell_pre,
            &rhs_post,
            target_row.op,
            None,
            retag_pre,
            &|what| label(&format!("array row, no write, {what}")),
        )?);
    }
    Ok(out)
}

fn keep(e: InvgenError) -> InvgenError {
    e
}

/// Conditions for a cell whose value is preserved along the path: the range
/// side condition (6) and the value condition (8) of the paper.
#[allow(clippy::too_many_arguments)]
fn preserved_cell_conditions(
    case: &RelationCase,
    source_arr: Option<&crate::template::ArrayRow>,
    source_rows: &[ParamRow],
    range_rows: &[ParamRow],
    kstar: &ParamLin,
    cell_pre: &ParamLin,
    rhs_post: &ParamLin,
    op: RelOp,
    miss: Option<ParamRow>,
    retag_pre: &impl Fn(&ParamLin) -> ParamLin,
    label: &impl Fn(&str) -> String,
) -> InvgenResult<Vec<Implication>> {
    let mut out = Vec::new();
    let mut base_parametric = source_rows.to_vec();
    base_parametric.extend(range_rows.iter().cloned());
    if let Some(m) = &miss {
        base_parametric.push(m.clone());
    }

    match source_arr {
        None => {
            // Without a source fact about the cell the only way to prove the
            // consequent is to show the antecedent contradictory (e.g. the
            // target range is empty on this path).
            out.push(Implication {
                concrete: case.scalar.clone(),
                parametric: base_parametric,
                consequent: Consequent::False,
                label: label("range must be empty"),
            });
        }
        Some(src) => {
            let lower_pre = retag_pre(&src.lower);
            let upper_pre = retag_pre(&src.upper);
            let rhs_pre = retag_pre(&src.rhs);
            // (6): the preserved index must fall into the source range.
            for (what, dir) in [
                ("range condition, lower", lower_pre.sub(kstar)?),
                ("range condition, upper", kstar.sub(&upper_pre)?),
            ] {
                out.push(Implication {
                    concrete: case.scalar.clone(),
                    parametric: base_parametric.clone(),
                    consequent: Consequent::Row(dir),
                    label: label(what),
                });
            }
            // (8): assuming the source cell fact, the target cell fact holds.
            let mut parametric = base_parametric.clone();
            parametric.extend(cell_fact_rows(cell_pre, &rhs_pre, src.op)?);
            for dir in consequent_directions(cell_pre, rhs_post, op)? {
                out.push(Implication {
                    concrete: case.scalar.clone(),
                    parametric: parametric.clone(),
                    consequent: Consequent::Row(dir),
                    label: label("value condition"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TemplateMap;
    use pathinv_ir::corpus;

    #[test]
    fn forward_equality_plus_inequality_template_is_instantiated() {
        let p = corpus::forward();
        let l1 = corpus::find_loc(&p, "L1");
        let mut templates = TemplateMap::new();
        let vars =
            [Symbol::intern("i"), Symbol::intern("n"), Symbol::intern("a"), Symbol::intern("b")];
        templates.add_scalar_row(l1, &vars, RowOp::Eq).unwrap();
        templates.add_scalar_row(l1, &vars, RowOp::Le).unwrap();
        let result = synthesize(&p, &templates, &SynthConfig::default()).unwrap();
        let inv = &result.invariants[&l1];
        // The synthesised invariant must be strong enough to prove the
        // assertion: together with i >= n it must force a + b = 3n.  We check
        // the key relationship a + b = 3i is implied.
        let solver = pathinv_smt::Solver::new();
        let claim = Formula::eq(
            pathinv_ir::Term::var("a").add(pathinv_ir::Term::var("b")),
            pathinv_ir::Term::int(3).mul(pathinv_ir::Term::var("i")),
        );
        assert!(solver.entails(inv, &claim).unwrap(), "invariant {inv} must imply a + b = 3i");
        assert!(result.stats.lp_calls > 0);
    }

    #[test]
    fn forward_equality_only_template_fails() {
        let p = corpus::forward();
        let l1 = corpus::find_loc(&p, "L1");
        let mut templates = TemplateMap::new();
        let vars =
            [Symbol::intern("i"), Symbol::intern("n"), Symbol::intern("a"), Symbol::intern("b")];
        templates.add_scalar_row(l1, &vars, RowOp::Eq).unwrap();
        let err = synthesize(&p, &templates, &SynthConfig::default()).unwrap_err();
        assert!(matches!(err, InvgenError::NoInvariant { .. }));
    }

    #[test]
    fn initcheck_array_template_is_instantiated() {
        let p = corpus::initcheck();
        let l1 = corpus::find_loc(&p, "L1");
        let l3 = corpus::find_loc(&p, "L3");
        let mut templates = TemplateMap::new();
        let scalars = [Symbol::intern("i"), Symbol::intern("n")];
        let a = Symbol::intern("a");
        templates.add_array_row(l1, a, &scalars, RelOp::Eq).unwrap();
        templates.add_array_row(l3, a, &scalars, RelOp::Eq).unwrap();
        let result = synthesize(&p, &templates, &SynthConfig::default()).unwrap();
        let inv1 = &result.invariants[&l1];
        let inv3 = &result.invariants[&l3];
        assert!(inv1.has_quantifier(), "expected a quantified invariant at L1, got {inv1}");
        assert!(inv3.has_quantifier(), "expected a quantified invariant at L3, got {inv3}");
        // The invariant at the check-loop head must justify the assertion:
        // together with i < n and 0 <= i it must imply a[i] = 0.
        let solver = pathinv_smt::Solver::new();
        let ante = Formula::and(vec![
            inv3.clone(),
            Formula::lt(pathinv_ir::Term::var("i"), pathinv_ir::Term::var("n")),
            Formula::ge(pathinv_ir::Term::var("i"), pathinv_ir::Term::int(0)),
        ]);
        let claim = Formula::eq(
            pathinv_ir::Term::var("a").select(pathinv_ir::Term::var("i")),
            pathinv_ir::Term::int(0),
        );
        assert!(
            solver.entails(&ante, &claim).unwrap(),
            "invariant {inv3} must prove the assertion"
        );
    }

    #[test]
    fn buggy_program_has_no_safe_invariant() {
        let p = corpus::buggy_initcheck();
        let l1 = corpus::find_loc(&p, "L1");
        let mut templates = TemplateMap::new();
        let scalars = [Symbol::intern("i")];
        templates.add_array_row(l1, Symbol::intern("a"), &scalars, RelOp::Eq).unwrap();
        let err = synthesize(&p, &templates, &SynthConfig::default());
        assert!(err.is_err(), "the buggy INITCHECK variant must not admit a safe invariant map");
    }

    fn param_row(p: u32, op: RowOp) -> ParamRow {
        let mut expr = ParamLin::zero();
        expr.add_param_coeff(VarRef::cur(Symbol::intern("x")), crate::template::ParamId(p))
            .unwrap();
        ParamRow { expr, op }
    }

    #[test]
    fn multiplier_choices_follow_the_documented_total_order() {
        // Distinct rows, no pruning: the order is (non-zero count
        // ascending, then lexicographic by candidate index).  For one Le
        // row (candidates 0, 1, 2) and one Eq row (candidates -1, 0, 1):
        let config = SynthConfig::default();
        let rows = vec![param_row(0, RowOp::Le), param_row(1, RowOp::Eq)];
        let choices = multiplier_choices(&rows, &config);
        assert_eq!(choices.len(), 9);
        // All-zero first, then one non-zero in index order, then two.
        assert_eq!(choices[0], vec![Rat::ZERO, Rat::ZERO]);
        let nonzeros = |v: &Vec<Rat>| v.iter().filter(|c| !c.is_zero()).count();
        for pair in choices.windows(2) {
            assert!(
                nonzeros(&pair[0]) <= nonzeros(&pair[1]),
                "non-zero counts must be non-decreasing: {choices:?}"
            );
        }
        // The full order is reproducible run to run (total order, no
        // platform dependence): spot-check the head.
        assert_eq!(choices[1], vec![Rat::ZERO, Rat::MINUS_ONE]);
        assert_eq!(choices[2], vec![Rat::ZERO, Rat::ONE]);
        assert_eq!(choices[3], vec![Rat::ONE, Rat::ZERO]);
    }

    #[test]
    fn identical_rows_are_symmetry_pruned() {
        // Two identical Le rows: only index-non-decreasing choices survive
        // (6 of the raw 9), and the encoded systems lose nothing — every
        // pruned choice is a permutation of a kept one.
        let config = SynthConfig::default();
        let rows = vec![param_row(0, RowOp::Le), param_row(0, RowOp::Le)];
        let choices = multiplier_choices(&rows, &config);
        assert_eq!(choices.len(), 6, "{choices:?}");
        let idx_of = |r: &Rat| config.ineq_multipliers.iter().position(|c| c == r).unwrap();
        for v in &choices {
            assert!(idx_of(&v[0]) <= idx_of(&v[1]), "not canonical: {v:?}");
        }
    }

    #[test]
    fn zero_rows_are_pinned() {
        let config = SynthConfig::default();
        let rows = vec![
            ParamRow { expr: ParamLin::zero(), op: RowOp::Le },
            ParamRow { expr: ParamLin::zero(), op: RowOp::Eq },
        ];
        let choices = multiplier_choices(&rows, &config);
        assert_eq!(choices, vec![vec![Rat::ZERO, Rat::ZERO]]);
    }

    #[test]
    fn ablation_flags_reproduce_the_same_invariants_workload() {
        // Presolve and conflict-driven pruning change how much work the
        // search does, never whether it succeeds: FORWARD synthesises an
        // invariant under every flag combination, and the buggy variant
        // fails under every combination.
        let p = corpus::forward();
        let l1 = corpus::find_loc(&p, "L1");
        for (presolve, conflict_driven) in
            [(true, true), (true, false), (false, true), (false, false)]
        {
            let config = SynthConfig { presolve, conflict_driven, ..SynthConfig::default() };
            let mut templates = TemplateMap::new();
            let vars = [
                Symbol::intern("i"),
                Symbol::intern("n"),
                Symbol::intern("a"),
                Symbol::intern("b"),
            ];
            templates.add_scalar_row(l1, &vars, RowOp::Eq).unwrap();
            templates.add_scalar_row(l1, &vars, RowOp::Le).unwrap();
            let result = synthesize(&p, &templates, &config)
                .unwrap_or_else(|e| panic!("presolve={presolve} cdcl={conflict_driven}: {e}"));
            let inv = &result.invariants[&l1];
            let solver = pathinv_smt::Solver::new();
            let claim = Formula::eq(
                pathinv_ir::Term::var("a").add(pathinv_ir::Term::var("b")),
                pathinv_ir::Term::int(3).mul(pathinv_ir::Term::var("i")),
            );
            assert!(
                solver.entails(inv, &claim).unwrap(),
                "presolve={presolve} cdcl={conflict_driven}: invariant {inv} too weak"
            );
        }
        let buggy = corpus::buggy_initcheck();
        let l1 = corpus::find_loc(&buggy, "L1");
        for (presolve, conflict_driven) in [(true, true), (false, false)] {
            let config = SynthConfig { presolve, conflict_driven, ..SynthConfig::default() };
            let mut templates = TemplateMap::new();
            templates
                .add_array_row(l1, Symbol::intern("a"), &[Symbol::intern("i")], RelOp::Eq)
                .unwrap();
            assert!(
                synthesize(&buggy, &templates, &config).is_err(),
                "presolve={presolve} cdcl={conflict_driven}: buggy variant must fail"
            );
        }
    }

    #[test]
    fn conflict_driven_search_prunes_branches_on_failing_systems() {
        // The buggy INITCHECK variant exercises the unsat path heavily:
        // the conflict-driven search must learn cores and prune branches
        // the enumerative baseline pays LP calls for.
        let p = corpus::buggy_initcheck();
        let l1 = corpus::find_loc(&p, "L1");
        let templates = || {
            let mut t = TemplateMap::new();
            t.add_array_row(l1, Symbol::intern("a"), &[Symbol::intern("i")], RelOp::Eq).unwrap();
            t
        };
        let run = |conflict_driven: bool| {
            let config = SynthConfig { conflict_driven, ..SynthConfig::default() };
            let before = crate::stats::snapshot();
            let err = synthesize(&p, &templates(), &config).unwrap_err();
            assert!(matches!(err, InvgenError::NoInvariant { .. }));
            crate::stats::snapshot().since(&before)
        };
        let enumerative = run(false);
        let driven = run(true);
        assert_eq!(enumerative.cores_learned, 0);
        assert_eq!(enumerative.branches_pruned, 0);
        assert!(driven.cores_learned > 0, "{driven:?}");
        assert!(driven.branches_pruned > 0, "{driven:?}");
        assert!(
            driven.systems_solved < enumerative.systems_solved,
            "conflict cores must save LP work: {} vs {}",
            driven.systems_solved,
            enumerative.systems_solved
        );
    }

    #[test]
    fn parallel_beam_is_byte_identical_to_sequential() {
        // The ordered-merge determinism argument (DESIGN.md §12) made
        // concrete: at every worker count, on a succeeding task and on a
        // failing one, the synthesized invariants and the parameter
        // valuation must equal the sequential run's exactly.
        let forward = corpus::forward();
        let fwd_l1 = corpus::find_loc(&forward, "L1");
        let forward_templates = || {
            let mut t = TemplateMap::new();
            let vars = [
                Symbol::intern("i"),
                Symbol::intern("n"),
                Symbol::intern("a"),
                Symbol::intern("b"),
            ];
            t.add_scalar_row(fwd_l1, &vars, RowOp::Eq).unwrap();
            t.add_scalar_row(fwd_l1, &vars, RowOp::Le).unwrap();
            t
        };
        let initcheck = corpus::initcheck();
        let init_l1 = corpus::find_loc(&initcheck, "L1");
        let init_l3 = corpus::find_loc(&initcheck, "L3");
        let initcheck_templates = || {
            let mut t = TemplateMap::new();
            let scalars = [Symbol::intern("i"), Symbol::intern("n")];
            let a = Symbol::intern("a");
            t.add_array_row(init_l1, a, &scalars, RelOp::Eq).unwrap();
            t.add_array_row(init_l3, a, &scalars, RelOp::Eq).unwrap();
            t
        };

        for (program, templates) in
            [(&forward, forward_templates()), (&initcheck, initcheck_templates())]
        {
            let sequential = synthesize(program, &templates, &SynthConfig::default()).unwrap();
            for workers in [2, 4, 16] {
                let config = SynthConfig { parallel_workers: workers, ..SynthConfig::default() };
                let parallel = synthesize(program, &templates, &config).unwrap();
                assert_eq!(
                    parallel.invariants, sequential.invariants,
                    "{workers} workers: invariants diverged"
                );
                assert_eq!(
                    parallel.valuation, sequential.valuation,
                    "{workers} workers: valuation diverged"
                );
            }
        }

        // Failure is deterministic too: the parallel search must exhaust
        // the same frontier and report the same NoInvariant.
        let buggy = corpus::buggy_initcheck();
        let l1 = corpus::find_loc(&buggy, "L1");
        let mut templates = TemplateMap::new();
        templates
            .add_array_row(l1, Symbol::intern("a"), &[Symbol::intern("i")], RelOp::Eq)
            .unwrap();
        let config = SynthConfig { parallel_workers: 4, ..SynthConfig::default() };
        let err = synthesize(&buggy, &templates, &config).unwrap_err();
        assert!(matches!(err, InvgenError::NoInvariant { .. }));
    }

    #[test]
    fn synthesis_polls_the_ambient_cancellation_token() {
        // Both drivers poll `check_ambient` — the sequential one per beam
        // candidate, the parallel one per wave — so a pre-cancelled ambient
        // token stops the search before it completes.
        let p = corpus::forward();
        let l1 = corpus::find_loc(&p, "L1");
        let vars =
            [Symbol::intern("i"), Symbol::intern("n"), Symbol::intern("a"), Symbol::intern("b")];
        let mut templates = TemplateMap::new();
        templates.add_scalar_row(l1, &vars, RowOp::Eq).unwrap();
        templates.add_scalar_row(l1, &vars, RowOp::Le).unwrap();
        for workers in [1, 4] {
            let token = pathinv_smt::CancellationToken::new();
            token.cancel();
            let _ambient = token.install();
            let config = SynthConfig { parallel_workers: workers, ..SynthConfig::default() };
            let err = synthesize(&p, &templates, &config).unwrap_err();
            assert!(
                matches!(err, InvgenError::Smt(pathinv_smt::SmtError::Cancelled)),
                "{workers} workers: expected cancellation, got {err:?}"
            );
        }
    }
}
