//! Presolve for Farkas constraint systems: Gaussian elimination of
//! equalities, row deduplication/subsumption, and trivial-conflict
//! detection — all *before* any simplex call.
//!
//! The bilinear search of [`synth`](crate::synth) accumulates large systems
//! of linear constraints over the template parameters and Farkas
//! multipliers.  Most of those rows are equalities that merely *define* one
//! unknown in terms of others (per-variable coefficient matching equations),
//! and many of the rest are duplicates or dominated variants of rows already
//! present.  Presolve removes all of that with exact rational arithmetic:
//!
//! * **Equality elimination** — an equality row `c·x + r = 0` whose pivot
//!   `x` is eliminable (per the caller's predicate) is removed and `x` is
//!   substituted by `-r/c` in every other row.  The substitution is recorded
//!   so witnesses of the reduced system extend to witnesses of the original
//!   ([`complete_witness`]).
//! * **Dedup/subsumption** — rows with an identical variable part are
//!   folded: the tightest inequality wins, an equality absorbs the
//!   inequalities it implies, and contradictory combinations (two
//!   equalities with different constants, an equality violating an
//!   inequality) are reported as a conflict without ever building a
//!   tableau.
//! * **Trivial rows** — variable-free rows are evaluated: true ones are
//!   dropped, false ones are a conflict.
//!
//! Presolved systems are *equisatisfiable* with their originals, with
//! constructive witnesses both ways: a witness of the original satisfies
//! the reduced rows directly (they are consequences), and a witness of the
//! reduced rows extends to the original by back-substituting the eliminated
//! definitions (`tests/presolve_props.rs` proves both directions on random
//! systems).
//!
//! Every row carries a *dependency set* of caller-chosen tags (the search
//! uses frontier decision positions); substitution and folding union the
//! tags of every row that contributed, so a downstream conflict can be
//! attributed to the decisions that produced it (the raw material of the
//! conflict-driven pruning in [`synth`](crate::synth)).

use crate::error::InvgenResult;
use pathinv_smt::{ConstrOp, LinConstraint, LinExpr, Rat};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// A sorted, deduplicated set of dependency tags (decision positions in the
/// synthesis search).
pub type Deps = Vec<u32>;

/// Unions two dependency sets, keeping the sorted/deduplicated invariant.
pub fn union_deps(a: &Deps, b: &Deps) -> Deps {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The outcome of presolving a constraint system.
#[derive(Clone, Debug)]
pub struct PresolvedSystem<K: Ord + Clone> {
    /// The surviving rows, in original order, each with the union of the
    /// dependency tags that produced it.
    pub rows: Vec<(LinConstraint<K>, Deps)>,
    /// The eliminated definitions `x := e`, in elimination order.  Later
    /// definitions never mention earlier-eliminated unknowns, so witnesses
    /// are completed by back-substituting in *reverse* order
    /// ([`complete_witness`]).
    pub eliminated: Vec<(K, LinExpr<K>, Deps)>,
    /// When presolve already proves the system infeasible (a variable-free
    /// row that fails, or contradictory same-variable-part rows): the
    /// dependency tags of the contradiction.  `rows` is unspecified in that
    /// case.
    pub conflict: Option<Deps>,
}

/// Presolves `rows` (each tagged with its dependency set), eliminating only
/// unknowns accepted by `may_eliminate`.
///
/// The search passes a predicate rejecting unknowns that already occur in
/// its incremental tableau — eliminating those would *weaken* the combined
/// system, because the rows already pushed keep mentioning them.  Standalone
/// callers (property tests, the final-system solve) accept everything.
///
/// # Errors
///
/// Propagates arithmetic overflow from the exact rational arithmetic.
pub fn presolve_tagged<K: Ord + Clone + Debug>(
    rows: Vec<(LinConstraint<K>, Deps)>,
    may_eliminate: &dyn Fn(&K) -> bool,
) -> InvgenResult<PresolvedSystem<K>> {
    let mut rows = rows;
    let mut eliminated: Vec<(K, LinExpr<K>, Deps)> = Vec::new();

    // Phase 1: Gaussian elimination of equalities.  Scan for the first
    // equality row with an eliminable pivot (the Ord-least such variable —
    // a documented, deterministic choice), substitute it out everywhere,
    // and repeat until no equality can be reduced further.
    loop {
        let mut pivot: Option<(usize, K)> = None;
        'scan: for (i, (c, _)) in rows.iter().enumerate() {
            if c.op != ConstrOp::Eq {
                continue;
            }
            for v in c.expr.vars() {
                if may_eliminate(&v) {
                    pivot = Some((i, v));
                    break 'scan;
                }
            }
        }
        let Some((i, x)) = pivot else { break };
        let (row, row_deps) = rows.remove(i);
        let a = row.expr.coeff(&x);
        // x := -(row - a·x) / a
        let rest = row.expr.add(&LinExpr::scaled_var(x.clone(), a.neg()?))?;
        let def = rest.scale(a.recip()?.neg()?)?;
        for (c, deps) in &mut rows {
            let b = c.expr.coeff(&x);
            if b.is_zero() {
                continue;
            }
            c.expr = c.expr.add(&LinExpr::scaled_var(x.clone(), b.neg()?))?.add(&def.scale(b)?)?;
            *deps = union_deps(deps, &row_deps);
        }
        eliminated.push((x, def, row_deps));
    }

    // Phase 2: trivial rows, duplicates, and same-variable-part folding.
    // Rows are grouped by their variable part; within a group the equality
    // (if any) dominates, inequalities keep only the tightest
    // representative, and contradictions surface as a presolve conflict.
    struct Group {
        eq: Option<(Rat, Deps, usize)>,
        le: Option<(Rat, Deps, usize)>,
        lt: Option<(Rat, Deps, usize)>,
    }
    let mut groups: BTreeMap<Vec<(K, Rat)>, Group> = BTreeMap::new();
    let mut conflict: Option<Deps> = None;
    'fold: for (idx, (c, deps)) in rows.iter().enumerate() {
        let constant = c.expr.constant_part();
        if c.expr.is_constant() {
            let holds = match c.op {
                ConstrOp::Le => !constant.is_positive(),
                ConstrOp::Lt => constant.is_negative(),
                ConstrOp::Eq => constant.is_zero(),
            };
            if holds {
                continue; // trivially true: drop
            }
            conflict = Some(deps.clone());
            break 'fold;
        }
        let key: Vec<(K, Rat)> = c.expr.terms().map(|(k, r)| (k.clone(), r)).collect();
        let group = groups.entry(key).or_insert(Group { eq: None, le: None, lt: None });
        // A larger constant is a tighter `e + const ⋈ 0` row.
        let slot = match c.op {
            ConstrOp::Eq => {
                if let Some((other, other_deps, _)) = &group.eq {
                    if *other != constant {
                        conflict = Some(union_deps(deps, other_deps));
                        break 'fold;
                    }
                    continue; // duplicate equality
                }
                &mut group.eq
            }
            ConstrOp::Le => &mut group.le,
            ConstrOp::Lt => &mut group.lt,
        };
        match slot {
            Some((best, _, _)) if *best >= constant => {} // dominated: drop
            _ => *slot = Some((constant, deps.clone(), idx)),
        }
    }
    if conflict.is_some() {
        return Ok(PresolvedSystem { rows, eliminated, conflict });
    }

    let mut keep: Vec<(usize, LinConstraint<K>, Deps)> = Vec::new();
    for (key, group) in groups {
        let var_part = || {
            let mut e = LinExpr::zero();
            for (k, r) in &key {
                e = e.add(&LinExpr::scaled_var(k.clone(), *r)).expect("rebuild cannot overflow");
            }
            e
        };
        if let Some((c_eq, eq_deps, idx)) = group.eq {
            // The equality pins the variable part to -c_eq; inequalities are
            // either implied (dropped) or contradictory.
            for (strict, slot) in [(false, &group.le), (true, &group.lt)] {
                let Some((c_ineq, ineq_deps, _)) = slot else { continue };
                let violated = if strict { *c_ineq >= c_eq } else { *c_ineq > c_eq };
                if violated {
                    let conflict = union_deps(&eq_deps, ineq_deps);
                    return Ok(PresolvedSystem { rows, eliminated, conflict: Some(conflict) });
                }
            }
            let mut e = var_part();
            e.add_constant(c_eq).expect("rebuild cannot overflow");
            keep.push((idx, LinConstraint::new(e, ConstrOp::Eq), eq_deps));
            continue;
        }
        // Between `e + c_le ≤ 0` and `e + c_lt < 0`, the strict row wins
        // ties and larger constants; otherwise the non-strict row implies
        // the strict one.
        let (le, lt) = (group.le, group.lt);
        let folded: Vec<(Rat, Deps, usize, ConstrOp)> = match (le, lt) {
            (Some((cl, dl, il)), Some((cs, ds, is_))) => {
                if cs >= cl {
                    vec![(cs, ds, is_, ConstrOp::Lt)]
                } else {
                    vec![(cl, dl, il, ConstrOp::Le)]
                }
            }
            (Some((cl, dl, il)), None) => vec![(cl, dl, il, ConstrOp::Le)],
            (None, Some((cs, ds, is_))) => vec![(cs, ds, is_, ConstrOp::Lt)],
            (None, None) => vec![],
        };
        for (constant, deps, idx, op) in folded {
            let mut e = var_part();
            e.add_constant(constant).expect("rebuild cannot overflow");
            keep.push((idx, LinConstraint::new(e, op), deps));
        }
    }
    keep.sort_by_key(|(idx, _, _)| *idx);
    let rows = keep.into_iter().map(|(_, c, d)| (c, d)).collect();
    Ok(PresolvedSystem { rows, eliminated, conflict: None })
}

/// Presolves an untagged system (row `i` gets dependency tag `i`), allowing
/// every unknown to be eliminated.  This is the standalone entry point used
/// by the property tests and the microbenchmarks.
///
/// # Errors
///
/// Propagates arithmetic overflow.
pub fn presolve<K: Ord + Clone + Debug>(
    constraints: &[LinConstraint<K>],
) -> InvgenResult<PresolvedSystem<K>> {
    let tagged = constraints
        .iter()
        .enumerate()
        .map(|(i, c)| (c.clone(), vec![i as u32]))
        .collect::<Vec<_>>();
    presolve_tagged(tagged, &|_| true)
}

/// Extends a witness of the reduced rows to a witness of the original
/// system by back-substituting the eliminated definitions in reverse
/// elimination order (unknowns absent from the witness read as zero, the
/// simplex convention for unconstrained variables).
///
/// # Errors
///
/// Propagates arithmetic overflow from the evaluations.
pub fn complete_witness<K: Ord + Clone>(
    witness: &mut BTreeMap<K, Rat>,
    eliminated: &[(K, LinExpr<K>, Deps)],
) -> InvgenResult<()> {
    for (x, def, _) in eliminated.iter().rev() {
        let v = def.eval(&|k: &K| witness.get(k).copied().unwrap_or(Rat::ZERO))?;
        witness.insert(x.clone(), v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(coeffs: &[(u32, i128)], constant: i128) -> LinConstraint<u32> {
        row(coeffs, constant, ConstrOp::Le)
    }

    fn eq(coeffs: &[(u32, i128)], constant: i128) -> LinConstraint<u32> {
        row(coeffs, constant, ConstrOp::Eq)
    }

    fn row(coeffs: &[(u32, i128)], constant: i128, op: ConstrOp) -> LinConstraint<u32> {
        let mut e = LinExpr::constant(Rat::int(constant));
        for &(v, c) in coeffs {
            e.add_term(v, Rat::int(c)).unwrap();
        }
        LinConstraint::new(e, op)
    }

    #[test]
    fn equalities_are_eliminated_and_witnesses_complete() {
        // x = y + 1, x + y <= 4  presolves to  2y + 1 <= 4-ish (one row).
        let cs = vec![eq(&[(0, 1), (1, -1)], -1), le(&[(0, 1), (1, 1)], -4)];
        let p = presolve(&cs).unwrap();
        assert!(p.conflict.is_none());
        assert_eq!(p.eliminated.len(), 1);
        assert_eq!(p.rows.len(), 1);
        // Solve the reduced row trivially (y = 0) and back-substitute.
        let mut witness: BTreeMap<u32, Rat> = BTreeMap::new();
        complete_witness(&mut witness, &p.eliminated).unwrap();
        for c in &cs {
            assert!(c.holds(&|v| witness.get(v).copied().unwrap_or(Rat::ZERO)).unwrap(), "{c}");
        }
    }

    #[test]
    fn duplicate_and_dominated_rows_fold() {
        // x <= 3 (i.e. x - 3 <= 0), x <= 5, x <= 3 again: one row survives,
        // the tightest.
        let cs = vec![le(&[(0, 1)], -3), le(&[(0, 1)], -5), le(&[(0, 1)], -3)];
        let p = presolve(&cs).unwrap();
        assert!(p.conflict.is_none());
        assert_eq!(p.rows.len(), 1);
        assert_eq!(p.rows[0].0.expr.constant_part(), Rat::int(-3));
    }

    #[test]
    fn contradictory_equalities_conflict_without_simplex() {
        let cs = [eq(&[(0, 1)], -1), eq(&[(0, 1)], -2)];
        // Block elimination so the same-variable-part fold sees both.
        let tagged = cs.iter().enumerate().map(|(i, c)| (c.clone(), vec![i as u32])).collect();
        let p = presolve_tagged::<u32>(tagged, &|_| false).unwrap();
        assert_eq!(p.conflict, Some(vec![0, 1]));
    }

    #[test]
    fn equality_violating_inequality_conflicts() {
        // x = 5 and x <= 4.
        let cs = [eq(&[(0, 1)], -5), le(&[(0, 1)], -4)];
        let tagged = cs.iter().enumerate().map(|(i, c)| (c.clone(), vec![i as u32])).collect();
        let p = presolve_tagged::<u32>(tagged, &|_| false).unwrap();
        assert_eq!(p.conflict, Some(vec![0, 1]));
    }

    #[test]
    fn trivially_false_constant_rows_conflict() {
        // x = 1 eliminates x; 1 <= 0 remains.
        let cs = vec![eq(&[(0, 1)], -1), le(&[(0, 1)], -1 + 2)];
        let p = presolve(&cs).unwrap();
        assert_eq!(p.conflict, Some(vec![0, 1]));
    }

    #[test]
    fn elimination_respects_the_predicate() {
        let cs = [eq(&[(0, 1), (1, -1)], 0), le(&[(0, 1)], -2)];
        let tagged: Vec<_> =
            cs.iter().enumerate().map(|(i, c)| (c.clone(), vec![i as u32])).collect();
        // Variable 0 is off-limits; variable 1 is eliminated instead.
        let p = presolve_tagged::<u32>(tagged, &|v| *v == 1).unwrap();
        assert_eq!(p.eliminated.len(), 1);
        assert_eq!(p.eliminated[0].0, 1);
    }

    #[test]
    fn deps_union_through_substitution() {
        // Row 0 defines x; row 1 uses x; the surviving row carries both tags.
        let cs = vec![eq(&[(0, 1), (1, -2)], 0), le(&[(0, 1), (1, 1)], -6)];
        let p = presolve(&cs).unwrap();
        assert_eq!(p.rows.len(), 1);
        assert_eq!(p.rows[0].1, vec![0, 1]);
    }

    #[test]
    fn union_deps_merges_sorted_sets() {
        assert_eq!(union_deps(&vec![1, 3, 5], &vec![2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union_deps(&vec![], &vec![4]), vec![4]);
    }
}
