//! Property test: presolved Farkas systems are *equisatisfiable* with their
//! originals, with constructive witnesses in both directions.
//!
//! For random constraint systems (mixing equalities, inequalities, and
//! strict inequalities over a small unknown set, with duplicate-prone small
//! coefficients so the dedup/subsumption and elimination paths all fire):
//!
//! * solving the raw system and the presolved system yields the same sat
//!   verdict (a presolve-detected conflict counts as unsat);
//! * when satisfiable, the raw model satisfies every presolved row (the
//!   reduced rows are consequences of the original system), and the
//!   presolved model — completed by back-substituting the eliminated
//!   definitions — satisfies every raw row.

use pathinv_invgen::presolve::{complete_witness, presolve};
use pathinv_smt::{lra_solve, ConstrOp, LinConstraint, LinExpr, LpResult, Rat};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random constraint over four unknowns with tiny coefficients (small
/// ranges make duplicated variable parts — the dedup/fold cases — common).
fn constraint_strategy() -> impl Strategy<Value = LinConstraint<u32>> {
    let coeff = -2i128..=2;
    let op = prop_oneof![
        Just(ConstrOp::Eq),
        Just(ConstrOp::Le),
        Just(ConstrOp::Le),
        Just(ConstrOp::Lt),
    ];
    (coeff.clone(), coeff.clone(), coeff.clone(), coeff, -3i128..=3, op).prop_map(
        |(a, b, c, d, k, op)| {
            let mut e = LinExpr::constant(Rat::int(k));
            for (v, coeff) in [(0u32, a), (1, b), (2, c), (3, d)] {
                e.add_term(v, Rat::int(coeff)).expect("small coefficients cannot overflow");
            }
            LinConstraint::new(e, op)
        },
    )
}

fn satisfies(model: &BTreeMap<u32, Rat>, rows: &[LinConstraint<u32>]) -> bool {
    rows.iter().all(|c| {
        c.holds(&|v: &u32| model.get(v).copied().unwrap_or(Rat::ZERO))
            .expect("evaluation cannot overflow")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Raw and presolved systems have the same sat verdict, with valid
    /// witnesses both ways.
    #[test]
    fn presolve_is_equisatisfiable_with_witnesses(
        constraints in proptest::collection::vec(constraint_strategy(), 1..8)
    ) {
        let raw = lra_solve(&constraints).expect("small systems cannot overflow");
        let p = presolve(&constraints).expect("small systems cannot overflow");
        if p.conflict.is_some() {
            prop_assert!(
                !raw.is_sat(),
                "presolve found a conflict in a satisfiable system: {constraints:?}"
            );
            return Ok(());
        }
        let reduced_rows: Vec<LinConstraint<u32>> =
            p.rows.iter().map(|(c, _)| c.clone()).collect();
        let reduced = lra_solve(&reduced_rows).expect("small systems cannot overflow");
        prop_assert!(
            raw.is_sat() == reduced.is_sat(),
            "sat verdicts must agree: {constraints:?} presolved to {reduced_rows:?}"
        );
        if let LpResult::Sat(raw_model) = &raw {
            // The reduced rows are consequences of the raw system, so the
            // raw witness satisfies them as-is.
            prop_assert!(
                satisfies(raw_model, &reduced_rows),
                "raw witness must satisfy the presolved rows: {constraints:?}"
            );
        }
        if let LpResult::Sat(reduced_model) = reduced {
            // The reduced witness extends to the raw system by
            // back-substituting the eliminated definitions.
            let mut completed = reduced_model;
            complete_witness(&mut completed, &p.eliminated)
                .expect("back-substitution cannot overflow");
            prop_assert!(
                satisfies(&completed, &constraints),
                "completed presolved witness must satisfy the raw system: {constraints:?}"
            );
        }
    }
}
