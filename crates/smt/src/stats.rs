//! Thread-local decision-procedure call counters.
//!
//! The CEGAR driver and the experiment harness need to know how much solver
//! work a verification run performed — the paper's whole argument is about
//! keeping expensive reasoning local, and "how many solver calls" is the
//! hardware-independent measure of that.  Threading a counter object through
//! every call site (the combined solver, the simplex, interpolation, and the
//! invariant-synthesis code that uses all three) would pollute every
//! signature in the workspace, so the substrate keeps the tallies in
//! thread-local storage instead: each counter is bumped at the entry point of
//! the corresponding procedure, and callers measure a region of work by
//! taking a [`snapshot`] before and after and subtracting
//! ([`SmtStats::since`]).
//!
//! The batch harness runs each verification task entirely on one worker
//! thread, so snapshot deltas attribute calls to tasks exactly, regardless of
//! how many workers the batch uses — which keeps the reported counts
//! deterministic across `--jobs` settings.

use std::cell::Cell;

/// A snapshot of the substrate call counters for the current thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SmtStats {
    /// Top-level [`Solver::check`](crate::Solver::check) invocations
    /// (each decides one formula; entailment queries bottom out here).
    pub sat_checks: u64,
    /// Cold simplex solves ([`lra_solve`](crate::lra_solve)): tableau
    /// constructions followed by a full feasibility run.  This is the
    /// innermost "real work" unit shared by satisfiability, entailment,
    /// interpolation, and invariant synthesis.  Warm re-checks of an
    /// [`IncrementalSimplex`](crate::IncrementalSimplex) are counted in
    /// [`simplex_warm_checks`](SmtStats::simplex_warm_checks) instead: they
    /// reuse the tableau of the shared constraint prefix and typically cost
    /// a handful of pivots, not a rebuild.
    pub simplex_calls: u64,
    /// Warm-started incremental simplex re-checks
    /// ([`IncrementalSimplex::check`](crate::IncrementalSimplex::check)).
    pub simplex_warm_checks: u64,
    /// Sequence-interpolant computations
    /// ([`sequence_interpolants`](crate::sequence_interpolants)).
    pub interpolant_calls: u64,
}

impl SmtStats {
    /// The counter deltas accumulated since `earlier` (which must be a
    /// snapshot taken earlier on the *same thread*).
    #[must_use]
    pub fn since(&self, earlier: &SmtStats) -> SmtStats {
        SmtStats {
            sat_checks: self.sat_checks - earlier.sat_checks,
            simplex_calls: self.simplex_calls - earlier.simplex_calls,
            simplex_warm_checks: self.simplex_warm_checks - earlier.simplex_warm_checks,
            interpolant_calls: self.interpolant_calls - earlier.interpolant_calls,
        }
    }

    /// Component-wise sum of two snapshots (for aggregating per-phase or
    /// per-task deltas).
    #[must_use]
    pub fn plus(&self, other: &SmtStats) -> SmtStats {
        SmtStats {
            sat_checks: self.sat_checks + other.sat_checks,
            simplex_calls: self.simplex_calls + other.simplex_calls,
            simplex_warm_checks: self.simplex_warm_checks + other.simplex_warm_checks,
            interpolant_calls: self.interpolant_calls + other.interpolant_calls,
        }
    }
}

thread_local! {
    static STATS: Cell<SmtStats> = const { Cell::new(SmtStats {
        sat_checks: 0,
        simplex_calls: 0,
        simplex_warm_checks: 0,
        interpolant_calls: 0,
    }) };
}

/// Returns the current thread's cumulative counters.
pub fn snapshot() -> SmtStats {
    STATS.with(Cell::get)
}

/// Adds a delta measured on another thread into the current thread's
/// counters.
///
/// The parallel beam evaluator (DESIGN.md §12) farms candidate feasibility
/// checks out to scoped worker threads; each worker measures its own work
/// with [`snapshot`]/[`SmtStats::since`] and the coordinator folds the
/// deltas back here, so a caller's snapshot delta around the whole synthesis
/// run still accounts for every solver call regardless of worker count.
pub fn add(delta: &SmtStats) {
    bump(|s| *s = s.plus(delta));
}

fn bump(f: impl FnOnce(&mut SmtStats)) {
    STATS.with(|s| {
        let mut v = s.get();
        f(&mut v);
        s.set(v);
    });
}

pub(crate) fn record_sat_check() {
    bump(|s| s.sat_checks += 1);
}

pub(crate) fn record_simplex_call() {
    bump(|s| s.simplex_calls += 1);
}

pub(crate) fn record_simplex_warm_check() {
    bump(|s| s.simplex_warm_checks += 1);
}

pub(crate) fn record_interpolant_call() {
    bump(|s| s.interpolant_calls += 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_and_sums_are_componentwise() {
        let before = snapshot();
        record_sat_check();
        record_simplex_call();
        record_simplex_call();
        record_simplex_warm_check();
        record_interpolant_call();
        let delta = snapshot().since(&before);
        assert_eq!(
            delta,
            SmtStats {
                sat_checks: 1,
                simplex_calls: 2,
                simplex_warm_checks: 1,
                interpolant_calls: 1
            }
        );
        let doubled = delta.plus(&delta);
        assert_eq!(doubled.simplex_calls, 4);
    }
}
