//! Wall-clock deadlines on top of [`CancellationToken`].
//!
//! The verification service (and the batch/race/fuzz harnesses under
//! `--timeout-ms`) bound every job by wall-clock: an overdue job must yield
//! an honest `cancelled` verdict, never a hang and never a fabricated
//! `unknown`.  The mechanism is deliberately the *same* cooperative path the
//! racing portfolio uses — a watchdog thread sets the job's
//! [`CancellationToken`] when the deadline passes, and the engine observes
//! it at its existing budget-poll sites (DESIGN.md §12).  No engine code
//! knows deadlines exist.
//!
//! One process-wide watchdog thread serves every deadline: callers register
//! a `(token, deadline)` pair with [`enforce_deadline`] and hold the
//! returned [`DeadlineGuard`] for the duration of the guarded work.  The
//! watchdog sleeps until the earliest registered deadline, cancels every
//! token that has come due, and marks the corresponding guards as
//! [`expired`](DeadlineGuard::expired) so harnesses can distinguish
//! "cancelled because overdue" from "cancelled by a racing winner" when
//! both mechanisms share a token.  Dropping the guard deregisters the
//! deadline; a guard dropped before its deadline never fires.
//!
//! The watchdog thread is spawned lazily on the first registration and then
//! parks on a condition variable whenever no deadlines are pending, so
//! processes that never use deadlines pay nothing.

use crate::cancel::CancellationToken;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One registered deadline: cancel `token` once `at` has passed.
struct Entry {
    id: u64,
    at: Instant,
    token: CancellationToken,
    fired: Arc<AtomicBool>,
}

/// The registry the watchdog thread scans.  `next_id` hands out guard
/// identities; `entries` is kept unsorted (registrations are few and
/// short-lived — a linear scan per wakeup is cheaper than maintaining a
/// heap under O(1)-sized loads, and correct under any load).
#[derive(Default)]
struct Registry {
    next_id: u64,
    entries: Vec<Entry>,
}

struct Watchdog {
    registry: Mutex<Registry>,
    /// Signalled on every registration so the thread re-computes its sleep.
    wakeup: Condvar,
}

fn watchdog() -> &'static Watchdog {
    static WATCHDOG: OnceLock<&'static Watchdog> = OnceLock::new();
    WATCHDOG.get_or_init(|| {
        let dog: &'static Watchdog = Box::leak(Box::new(Watchdog {
            registry: Mutex::new(Registry::default()),
            wakeup: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("pathinv-deadline-watchdog".to_string())
            .spawn(move || watch_loop(dog))
            .expect("spawning the deadline watchdog thread");
        dog
    })
}

/// The watchdog thread body: fire due deadlines, sleep until the earliest
/// pending one (or park when none are registered).
fn watch_loop(dog: &'static Watchdog) {
    let mut registry = dog.registry.lock().expect("deadline registry poisoned");
    loop {
        let now = Instant::now();
        // Fire everything due; retain the rest.
        registry.entries.retain(|e| {
            if e.at <= now {
                e.fired.store(true, Ordering::Release);
                e.token.cancel();
                false
            } else {
                true
            }
        });
        let earliest = registry.entries.iter().map(|e| e.at).min();
        registry = match earliest {
            Some(at) => {
                let timeout = at.saturating_duration_since(now);
                dog.wakeup.wait_timeout(registry, timeout).expect("deadline registry poisoned").0
            }
            None => dog.wakeup.wait(registry).expect("deadline registry poisoned"),
        };
    }
}

/// Registers `token` to be cancelled once `timeout` has elapsed, returning a
/// guard that deregisters the deadline when dropped.
///
/// The cancellation is cooperative and therefore not instantaneous: the
/// engine observes it at its next budget poll, so the end-to-end latency is
/// the watchdog's wakeup plus one poll interval — bounded, and in practice
/// well under the "2× deadline" envelope the service's fault-injection
/// suite pins.
#[must_use = "dropping the guard immediately deregisters the deadline"]
pub fn enforce_deadline(token: &CancellationToken, timeout: Duration) -> DeadlineGuard {
    let dog = watchdog();
    let fired = Arc::new(AtomicBool::new(false));
    let id = {
        let mut registry = dog.registry.lock().expect("deadline registry poisoned");
        let id = registry.next_id;
        registry.next_id += 1;
        registry.entries.push(Entry {
            id,
            at: Instant::now() + timeout,
            token: token.clone(),
            fired: Arc::clone(&fired),
        });
        id
    };
    dog.wakeup.notify_one();
    DeadlineGuard { id, fired }
}

/// Keeps a deadline registered; dropping it deregisters the deadline (a
/// deadline whose guard is gone never fires).  Returned by
/// [`enforce_deadline`].
pub struct DeadlineGuard {
    id: u64,
    fired: Arc<AtomicBool>,
}

impl DeadlineGuard {
    /// Whether the watchdog fired this deadline (and therefore cancelled the
    /// token).  Lets a harness that shares one token between a deadline and
    /// other cancellers (the racing coordinator, a shutdown drain) attribute
    /// a `cancelled` verdict to the deadline honestly.
    pub fn expired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let dog = watchdog();
        let mut registry = dog.registry.lock().expect("deadline registry poisoned");
        registry.entries.retain(|e| e.id != self.id);
        // No notify needed: a stale earlier wakeup only makes the thread
        // re-scan and sleep again.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_cancels_the_token() {
        let token = CancellationToken::new();
        let guard = enforce_deadline(&token, Duration::from_millis(20));
        assert!(!token.is_cancelled(), "not before the deadline");
        let start = Instant::now();
        while !token.is_cancelled() {
            assert!(start.elapsed() < Duration::from_secs(10), "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(guard.expired());
    }

    #[test]
    fn dropped_guard_never_fires() {
        let token = CancellationToken::new();
        let guard = enforce_deadline(&token, Duration::from_millis(30));
        drop(guard);
        std::thread::sleep(Duration::from_millis(80));
        assert!(!token.is_cancelled(), "deregistered deadline must not fire");
    }

    #[test]
    fn deadlines_fire_independently() {
        let quick = CancellationToken::new();
        let slow = CancellationToken::new();
        let quick_guard = enforce_deadline(&quick, Duration::from_millis(10));
        let slow_guard = enforce_deadline(&slow, Duration::from_secs(3600));
        let start = Instant::now();
        while !quick.is_cancelled() {
            assert!(start.elapsed() < Duration::from_secs(10), "short deadline never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(quick_guard.expired());
        assert!(!slow.is_cancelled(), "the long deadline is independent");
        assert!(!slow_guard.expired());
    }

    #[test]
    fn expired_reports_only_the_watchdogs_own_cancellation() {
        // A token cancelled by someone else (the racing coordinator) leaves
        // the deadline guard unexpired, so the harness can attribute the
        // verdict correctly.
        let token = CancellationToken::new();
        let guard = enforce_deadline(&token, Duration::from_secs(3600));
        token.cancel();
        assert!(token.is_cancelled());
        assert!(!guard.expired());
    }
}
