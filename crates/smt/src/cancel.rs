//! Cooperative cancellation for long-running solver work.
//!
//! The racing portfolio (DESIGN.md §12) runs several verification engines on
//! one program concurrently and stops the losers as soon as a conclusive
//! verdict lands.  Engines are single-threaded loops over solver calls, so
//! cancellation is *cooperative*: the winner's harness sets a shared flag,
//! and every engine polls it at the same places it already polls its
//! resource budgets.  A cancelled computation unwinds with
//! [`SmtError::Cancelled`], which the engines convert into their distinct
//! cancelled verdict — never into a wrong (or misleadingly-reasoned) one.
//!
//! Two polling styles cover every call site:
//!
//! * **Explicit** — harness-facing code holds a [`CancellationToken`] and
//!   calls [`CancellationToken::is_cancelled`] (or bails with
//!   [`CancellationToken::check`]) at loop heads it owns.
//! * **Ambient** — deep call sites that no token threads through (the
//!   combined solver's case-split budget checks, the invariant-synthesis
//!   beam loop) poll the *thread's* installed token via [`check_ambient`].
//!   An engine installs its token for the duration of a run with
//!   [`CancellationToken::install`]; the returned guard restores the
//!   previous ambient token on drop, so nested scopes compose.
//!
//! Tokens are a thin wrapper over an `Arc<AtomicBool>`: cloning shares the
//! flag, setting it is a release store, polling an acquire load.  A token is
//! set-once — there is deliberately no way to un-cancel.

use crate::error::{SmtError, SmtResult};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.  Clones observe the same flag; dropping a
/// clone never resets it.
///
/// ```
/// use pathinv_smt::CancellationToken;
///
/// let token = CancellationToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Sets the flag.  Every clone — on any thread — observes the
    /// cancellation at its next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Polls the flag.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Polls the flag and fails with [`SmtError::Cancelled`] when set — the
    /// one-liner for `?`-style loop heads.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::Cancelled`] when the token has been cancelled.
    pub fn check(&self) -> SmtResult<()> {
        if self.is_cancelled() {
            Err(SmtError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Installs this token as the current thread's *ambient* token for the
    /// lifetime of the returned guard, so deep call sites without a token
    /// parameter can poll it through [`check_ambient`].  The previous
    /// ambient token (if any) is restored when the guard drops.
    #[must_use = "the token is only ambient while the guard lives"]
    pub fn install(&self) -> AmbientGuard {
        let previous = AMBIENT.with(|cell| cell.replace(Some(self.clone())));
        AmbientGuard { previous }
    }
}

thread_local! {
    static AMBIENT: RefCell<Option<CancellationToken>> = const { RefCell::new(None) };
}

/// Restores the previously installed ambient token on drop.  Returned by
/// [`CancellationToken::install`].
#[must_use = "dropping the guard immediately uninstalls the token"]
pub struct AmbientGuard {
    previous: Option<CancellationToken>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|cell| *cell.borrow_mut() = self.previous.take());
    }
}

/// Polls the current thread's ambient token (a no-op when none is
/// installed).  This is the poll the solver substrate's budget checks and
/// the synthesis beam loop use — the exact sites that already bound
/// runaway work, so cancellation latency is bounded by the same granularity
/// as budget enforcement.
///
/// # Errors
///
/// Returns [`SmtError::Cancelled`] when an ambient token is installed and
/// has been cancelled.
pub fn check_ambient() -> SmtResult<()> {
    AMBIENT.with(|cell| match cell.borrow().as_ref() {
        Some(token) => token.check(),
        None => Ok(()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(token.check().is_ok());
        clone.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.check(), Err(SmtError::Cancelled));
    }

    #[test]
    fn ambient_token_is_scoped_and_nestable() {
        assert!(check_ambient().is_ok(), "no ambient token installed");
        let outer = CancellationToken::new();
        let inner = CancellationToken::new();
        let outer_guard = outer.install();
        {
            let _inner_guard = inner.install();
            inner.cancel();
            assert_eq!(check_ambient(), Err(SmtError::Cancelled));
        }
        // The inner guard restored the (un-cancelled) outer token.
        assert!(check_ambient().is_ok());
        outer.cancel();
        assert_eq!(check_ambient(), Err(SmtError::Cancelled));
        drop(outer_guard);
        assert!(check_ambient().is_ok(), "guard drop uninstalls the token");
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancellationToken::new();
        let observer = token.clone();
        let handle = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().unwrap());
    }
}
