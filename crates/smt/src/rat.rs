//! Exact rational arithmetic on 128-bit integers.
//!
//! The constraint systems manipulated by this library (path formulas of short
//! counterexamples, Farkas systems over a handful of template parameters) are
//! tiny, so 128-bit numerators and denominators leave an enormous safety
//! margin.  All operations check for overflow and return
//! [`SmtError::Overflow`] instead of silently wrapping; the solvers propagate
//! that error to the caller.

use crate::error::{SmtError, SmtResult};
use std::cmp::Ordering;
use std::fmt;

/// An exact rational number with 128-bit numerator and denominator.
///
/// Invariants: the denominator is strictly positive and the fraction is in
/// lowest terms (gcd of numerator and denominator is 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// The rational 0.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational 1.
    pub const ONE: Rat = Rat { num: 1, den: 1 };
    /// The rational -1.
    pub const MINUS_ONE: Rat = Rat { num: -1, den: 1 };

    /// Creates the rational `num / den`.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::Overflow`] if `den` is zero (treated as a malformed
    /// input) or normalisation overflows.
    pub fn new(num: i128, den: i128) -> SmtResult<Rat> {
        if den == 0 {
            return Err(SmtError::Overflow);
        }
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = num.checked_neg().ok_or(SmtError::Overflow)?;
            den = den.checked_neg().ok_or(SmtError::Overflow)?;
        }
        Ok(Rat { num, den })
    }

    /// Creates the rational `n / 1`.
    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// The numerator (fraction in lowest terms, denominator positive).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (always strictly positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// The integer value, if the rational is an integer.
    pub fn as_integer(self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Checked addition.
    ///
    /// Fast paths: adding zero is the identity, and when both operands are
    /// integers (`den == 1` — the overwhelmingly common case in the tableau
    /// arithmetic) the sum needs neither cross-multiplication nor gcd
    /// normalisation.
    pub fn add(self, other: Rat) -> SmtResult<Rat> {
        if other.num == 0 {
            return Ok(self);
        }
        if self.num == 0 {
            return Ok(other);
        }
        if self.den == 1 && other.den == 1 {
            let num = self.num.checked_add(other.num).ok_or(SmtError::Overflow)?;
            return Ok(Rat { num, den: 1 });
        }
        let l = self.num.checked_mul(other.den).ok_or(SmtError::Overflow)?;
        let r = other.num.checked_mul(self.den).ok_or(SmtError::Overflow)?;
        let num = l.checked_add(r).ok_or(SmtError::Overflow)?;
        let den = self.den.checked_mul(other.den).ok_or(SmtError::Overflow)?;
        Rat::new(num, den)
    }

    /// Checked subtraction.
    pub fn sub(self, other: Rat) -> SmtResult<Rat> {
        self.add(other.neg()?)
    }

    /// Checked multiplication.
    ///
    /// Fast paths: multiplication by zero or ±1 short-circuits, and two
    /// integers multiply without gcd normalisation (a product of integers
    /// is already in lowest terms over denominator 1).
    pub fn mul(self, other: Rat) -> SmtResult<Rat> {
        if self.num == 0 || other.num == 0 {
            return Ok(Rat::ZERO);
        }
        if self == Rat::ONE {
            return Ok(other);
        }
        if other == Rat::ONE {
            return Ok(self);
        }
        if self.den == 1 && other.den == 1 {
            let num = self.num.checked_mul(other.num).ok_or(SmtError::Overflow)?;
            return Ok(Rat { num, den: 1 });
        }
        let num = self.num.checked_mul(other.num).ok_or(SmtError::Overflow)?;
        let den = self.den.checked_mul(other.den).ok_or(SmtError::Overflow)?;
        Rat::new(num, den)
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::Overflow`] when dividing by zero or on overflow.
    pub fn div(self, other: Rat) -> SmtResult<Rat> {
        if other.is_zero() {
            return Err(SmtError::Overflow);
        }
        let num = self.num.checked_mul(other.den).ok_or(SmtError::Overflow)?;
        let den = self.den.checked_mul(other.num).ok_or(SmtError::Overflow)?;
        Rat::new(num, den)
    }

    /// Checked negation.
    pub fn neg(self) -> SmtResult<Rat> {
        Ok(Rat { num: self.num.checked_neg().ok_or(SmtError::Overflow)?, den: self.den })
    }

    /// The reciprocal.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::Overflow`] if the value is zero.
    pub fn recip(self) -> SmtResult<Rat> {
        Rat::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat { num: self.num.abs(), den: self.den }
    }

    /// Compares two rationals exactly.
    pub fn compare(self, other: Rat) -> SmtResult<Ordering> {
        let l = self.num.checked_mul(other.den).ok_or(SmtError::Overflow)?;
        let r = other.num.checked_mul(self.den).ok_or(SmtError::Overflow)?;
        Ok(l.cmp(&r))
    }

    /// The floor of the rational as an integer.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The ceiling of the rational as an integer.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // Comparison is only used on values that already passed checked
        // arithmetic; overflow here would indicate corrupted state.
        self.compare(*other).expect("rational comparison overflow")
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Rat {
        Rat::int(n)
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n as i128)
    }
}

impl From<i32> for Rat {
    fn from(n: i32) -> Rat {
        Rat::int(n as i128)
    }
}

/// A rational extended with an infinitesimal `δ`, used to represent strict
/// bounds in the simplex solver: `x < c` becomes `x ≤ c - δ`.
///
/// Values are ordered lexicographically by `(real, delta)`, which matches the
/// semantics of an arbitrarily small positive `δ`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeltaRat {
    /// The standard (real) part.
    pub real: Rat,
    /// The coefficient of the infinitesimal `δ`.
    pub delta: Rat,
}

impl DeltaRat {
    /// The value 0.
    pub const ZERO: DeltaRat = DeltaRat { real: Rat::ZERO, delta: Rat::ZERO };

    /// A pure (delta-free) value.
    pub fn real(r: Rat) -> DeltaRat {
        DeltaRat { real: r, delta: Rat::ZERO }
    }

    /// The value `r - δ` (used for strict upper bounds).
    pub fn just_below(r: Rat) -> DeltaRat {
        DeltaRat { real: r, delta: Rat::MINUS_ONE }
    }

    /// The value `r + δ` (used for strict lower bounds).
    pub fn just_above(r: Rat) -> DeltaRat {
        DeltaRat { real: r, delta: Rat::ONE }
    }

    /// Checked addition.
    pub fn add(self, other: DeltaRat) -> SmtResult<DeltaRat> {
        Ok(DeltaRat { real: self.real.add(other.real)?, delta: self.delta.add(other.delta)? })
    }

    /// Checked subtraction.
    pub fn sub(self, other: DeltaRat) -> SmtResult<DeltaRat> {
        Ok(DeltaRat { real: self.real.sub(other.real)?, delta: self.delta.sub(other.delta)? })
    }

    /// Checked scaling by a rational.
    pub fn scale(self, k: Rat) -> SmtResult<DeltaRat> {
        Ok(DeltaRat { real: self.real.mul(k)?, delta: self.delta.mul(k)? })
    }
}

impl PartialOrd for DeltaRat {
    fn partial_cmp(&self, other: &DeltaRat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeltaRat {
    fn cmp(&self, other: &DeltaRat) -> Ordering {
        self.real.cmp(&other.real).then_with(|| self.delta.cmp(&other.delta))
    }
}

impl fmt::Display for DeltaRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta.is_zero() {
            write!(f, "{}", self.real)
        } else {
            write!(f, "{} + {}δ", self.real, self.delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rat::new(2, 4).unwrap(), Rat::new(1, 2).unwrap());
        assert_eq!(Rat::new(-2, -4).unwrap(), Rat::new(1, 2).unwrap());
        assert_eq!(Rat::new(2, -4).unwrap(), Rat::new(-1, 2).unwrap());
        assert_eq!(Rat::new(0, 5).unwrap(), Rat::ZERO);
        assert!(Rat::new(1, 0).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2).unwrap();
        let b = Rat::new(1, 3).unwrap();
        assert_eq!(a.add(b).unwrap(), Rat::new(5, 6).unwrap());
        assert_eq!(a.sub(b).unwrap(), Rat::new(1, 6).unwrap());
        assert_eq!(a.mul(b).unwrap(), Rat::new(1, 6).unwrap());
        assert_eq!(a.div(b).unwrap(), Rat::new(3, 2).unwrap());
        assert_eq!(a.neg().unwrap(), Rat::new(-1, 2).unwrap());
        assert_eq!(a.recip().unwrap(), Rat::int(2));
        assert!(Rat::ZERO.recip().is_err());
        assert!(a.div(Rat::ZERO).is_err());
    }

    #[test]
    fn ordering_and_predicates() {
        assert!(Rat::new(1, 3).unwrap() < Rat::new(1, 2).unwrap());
        assert!(Rat::int(-1).is_negative());
        assert!(Rat::new(3, 2).unwrap().is_positive());
        assert!(Rat::ZERO.is_zero());
        assert!(Rat::int(7).is_integer());
        assert!(!Rat::new(7, 2).unwrap().is_integer());
        assert_eq!(Rat::new(7, 2).unwrap().as_integer(), None);
        assert_eq!(Rat::int(7).as_integer(), Some(7));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).unwrap().floor(), 3);
        assert_eq!(Rat::new(7, 2).unwrap().ceil(), 4);
        assert_eq!(Rat::new(-7, 2).unwrap().floor(), -4);
        assert_eq!(Rat::new(-7, 2).unwrap().ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn overflow_is_reported() {
        let big = Rat::int(i128::MAX);
        assert_eq!(big.add(Rat::ONE), Err(SmtError::Overflow));
        assert_eq!(big.mul(Rat::int(2)), Err(SmtError::Overflow));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 6).unwrap().to_string(), "1/2");
        assert_eq!(Rat::int(-4).to_string(), "-4");
    }

    #[test]
    fn delta_ordering() {
        let c = Rat::int(3);
        assert!(DeltaRat::just_below(c) < DeltaRat::real(c));
        assert!(DeltaRat::real(c) < DeltaRat::just_above(c));
        assert!(DeltaRat::just_above(Rat::int(2)) < DeltaRat::just_below(Rat::int(3)));
    }

    #[test]
    fn delta_arithmetic() {
        let a = DeltaRat::just_below(Rat::int(3));
        let b = DeltaRat::real(Rat::int(1));
        assert_eq!(a.add(b).unwrap(), DeltaRat::just_below(Rat::int(4)));
        assert_eq!(a.scale(Rat::int(2)).unwrap().real, Rat::int(6));
        assert_eq!(a.scale(Rat::int(2)).unwrap().delta, Rat::int(-2));
        assert_eq!(a.sub(a).unwrap(), DeltaRat::ZERO);
    }

    #[test]
    fn proptest_like_random_arithmetic_consistency() {
        // Cheap deterministic sweep standing in for full property tests here;
        // the dedicated proptest suite lives in tests/.
        for n1 in -5i128..5 {
            for d1 in 1i128..4 {
                for n2 in -5i128..5 {
                    for d2 in 1i128..4 {
                        let a = Rat::new(n1, d1).unwrap();
                        let b = Rat::new(n2, d2).unwrap();
                        let s = a.add(b).unwrap();
                        assert_eq!(s.sub(b).unwrap(), a);
                        if !b.is_zero() {
                            assert_eq!(a.div(b).unwrap().mul(b).unwrap(), a);
                        }
                    }
                }
            }
        }
    }
}
