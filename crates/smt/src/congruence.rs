//! Congruence closure for ground equalities over uninterpreted functions.
//!
//! Array reads (after store elimination) and explicit uninterpreted function
//! applications are congruent under equal arguments — the *functionality
//! axiom* of §4.2 of the paper ("a read operation from the same array from
//! the same position always produces the same value").  This module decides
//! consistency of a conjunction of ground equalities and disequalities under
//! that axiom, and reports the implied equivalence classes.  The combined
//! solver uses it as an equational pre-filter before the more expensive
//! arithmetic reasoning, in the spirit of Nelson–Oppen combination.

use pathinv_ir::Term;
use std::collections::{BTreeMap, BTreeSet};

/// A congruence-closure engine over ground [`Term`]s.
///
/// Interpreted structure is deliberately ignored: `x + 1` is treated as the
/// application of a binary function `+` to `x` and `1`.  This keeps the
/// engine sound as a consistency *filter* (anything it reports inconsistent
/// really is inconsistent); completeness for arithmetic is the simplex
/// solver's job.
#[derive(Clone, Debug, Default)]
pub struct CongruenceClosure {
    /// Flattened nodes: `(label, child node ids)`.
    nodes: Vec<(String, Vec<usize>)>,
    /// Map from flattened representation to node id.
    index: BTreeMap<(String, Vec<usize>), usize>,
    /// Union-find parent pointers.
    parent: Vec<usize>,
    /// For each representative, the application nodes with an argument in its
    /// class (the "use list").
    uses: Vec<Vec<usize>>,
    /// Asserted disequalities (pairs of node ids).
    disequalities: Vec<(usize, usize)>,
    /// Distinct integer constants seen (they are pairwise distinct).
    constants: BTreeMap<i128, usize>,
}

impl CongruenceClosure {
    /// Creates an empty engine.
    pub fn new() -> CongruenceClosure {
        CongruenceClosure::default()
    }

    fn find(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    fn add_node(&mut self, label: String, children: Vec<usize>) -> usize {
        let key = (label.clone(), children.clone());
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push((label, children.clone()));
        self.parent.push(id);
        self.uses.push(Vec::new());
        self.index.insert(key, id);
        for &c in &children {
            let rc = self.find(c);
            self.uses[rc].push(id);
        }
        // A node created after some of its arguments were merged may already
        // be congruent to an existing node; detect that eagerly so that
        // queries never miss equalities established before the node existed.
        if !children.is_empty() {
            for other in 0..id {
                if self.congruent(id, other) {
                    self.merge(id, other);
                    break;
                }
            }
        }
        id
    }

    /// Interns a term, returning its node id.
    pub fn add_term(&mut self, t: &Term) -> usize {
        match t {
            Term::Const(c) => {
                let id = self.add_node(format!("#{c}"), vec![]);
                self.constants.insert(*c, id);
                id
            }
            Term::Var(v) => self.add_node(format!("var:{v}"), vec![]),
            Term::Bound(b) => self.add_node(format!("bound:{b}"), vec![]),
            Term::Neg(a) => {
                let ca = self.add_term(a);
                self.add_node("neg".into(), vec![ca])
            }
            Term::Add(a, b) | Term::Sub(a, b) | Term::Mul(a, b) => {
                let label = match t {
                    Term::Add(..) => "add",
                    Term::Sub(..) => "sub",
                    _ => "mul",
                };
                let ca = self.add_term(a);
                let cb = self.add_term(b);
                self.add_node(label.into(), vec![ca, cb])
            }
            Term::Select(a, i) => {
                let ca = self.add_term(a);
                let ci = self.add_term(i);
                self.add_node("select".into(), vec![ca, ci])
            }
            Term::Store(a, i, v) => {
                let ca = self.add_term(a);
                let ci = self.add_term(i);
                let cv = self.add_term(v);
                self.add_node("store".into(), vec![ca, ci, cv])
            }
            Term::App(f, args) => {
                let children: Vec<usize> = args.iter().map(|a| self.add_term(a)).collect();
                self.add_node(format!("app:{f}"), children)
            }
        }
    }

    /// Merges the classes of two node ids, propagating congruences.
    fn merge(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Union by moving ra under rb (size heuristics are unnecessary at
        // this scale).
        self.parent[ra] = rb;
        let moved_uses = std::mem::take(&mut self.uses[ra]);
        // Find congruent pairs among the uses of the two classes.
        let mut pending = Vec::new();
        for &u in &moved_uses {
            for &v in &self.uses[rb] {
                if u != v && self.congruent(u, v) {
                    pending.push((u, v));
                }
            }
        }
        self.uses[rb].extend(moved_uses);
        for (u, v) in pending {
            self.merge(u, v);
        }
    }

    fn congruent(&self, u: usize, v: usize) -> bool {
        let (lu, cu) = &self.nodes[u];
        let (lv, cv) = &self.nodes[v];
        lu == lv
            && cu.len() == cv.len()
            && cu.iter().zip(cv.iter()).all(|(&a, &b)| self.find(a) == self.find(b))
    }

    /// Asserts the equality of two terms.
    pub fn assert_eq(&mut self, a: &Term, b: &Term) {
        let na = self.add_term(a);
        let nb = self.add_term(b);
        self.merge(na, nb);
    }

    /// Asserts the disequality of two terms.
    pub fn assert_ne(&mut self, a: &Term, b: &Term) {
        let na = self.add_term(a);
        let nb = self.add_term(b);
        self.disequalities.push((na, nb));
    }

    /// Returns `true` if the asserted equalities force the two terms into the
    /// same class.
    pub fn are_equal(&mut self, a: &Term, b: &Term) -> bool {
        let na = self.add_term(a);
        let nb = self.add_term(b);
        self.find(na) == self.find(nb)
    }

    /// Checks consistency: no asserted disequality joins a class, and no two
    /// distinct integer constants have been merged.
    pub fn is_consistent(&self) -> bool {
        for &(a, b) in &self.disequalities {
            if self.find(a) == self.find(b) {
                return false;
            }
        }
        let mut reps: BTreeMap<usize, i128> = BTreeMap::new();
        for (&c, &id) in &self.constants {
            let r = self.find(id);
            if let Some(&prev) = reps.get(&r) {
                if prev != c {
                    return false;
                }
            } else {
                reps.insert(r, c);
            }
        }
        true
    }

    /// Returns the implied equalities among the given terms: every unordered
    /// pair that ends up in the same class.
    pub fn implied_equalities(&mut self, terms: &[Term]) -> Vec<(Term, Term)> {
        let ids: Vec<usize> = terms.iter().map(|t| self.add_term(t)).collect();
        let mut out = Vec::new();
        for i in 0..terms.len() {
            for j in i + 1..terms.len() {
                if self.find(ids[i]) == self.find(ids[j]) && terms[i] != terms[j] {
                    out.push((terms[i].clone(), terms[j].clone()));
                }
            }
        }
        out
    }

    /// The number of distinct equivalence classes among all interned nodes.
    pub fn num_classes(&self) -> usize {
        let mut reps = BTreeSet::new();
        for i in 0..self.nodes.len() {
            reps.insert(self.find(i));
        }
        reps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::var("x")
    }
    fn y() -> Term {
        Term::var("y")
    }
    fn z() -> Term {
        Term::var("z")
    }

    #[test]
    fn transitivity() {
        let mut cc = CongruenceClosure::new();
        cc.assert_eq(&x(), &y());
        cc.assert_eq(&y(), &z());
        assert!(cc.are_equal(&x(), &z()));
        assert!(cc.is_consistent());
    }

    #[test]
    fn congruence_of_function_applications() {
        let mut cc = CongruenceClosure::new();
        let fx = Term::app("f", vec![x()]);
        let fy = Term::app("f", vec![y()]);
        cc.add_term(&fx);
        cc.add_term(&fy);
        assert!(!cc.are_equal(&fx, &fy));
        cc.assert_eq(&x(), &y());
        assert!(cc.are_equal(&fx, &fy), "f(x) = f(y) must follow from x = y");
    }

    #[test]
    fn congruence_of_array_reads() {
        let mut cc = CongruenceClosure::new();
        let a_i = Term::var("a").select(Term::var("i"));
        let a_j = Term::var("a").select(Term::var("j"));
        cc.assert_eq(&Term::var("i"), &Term::var("j"));
        assert!(cc.are_equal(&a_i, &a_j));
    }

    #[test]
    fn disequality_detection() {
        let mut cc = CongruenceClosure::new();
        cc.assert_ne(&x(), &y());
        assert!(cc.is_consistent());
        cc.assert_eq(&x(), &z());
        cc.assert_eq(&z(), &y());
        assert!(!cc.is_consistent());
    }

    #[test]
    fn distinct_constants_clash() {
        let mut cc = CongruenceClosure::new();
        cc.assert_eq(&x(), &Term::int(1));
        assert!(cc.is_consistent());
        cc.assert_eq(&x(), &Term::int(2));
        assert!(!cc.is_consistent());
    }

    #[test]
    fn nested_congruence() {
        // x = y implies f(g(x), x) = f(g(y), y).
        let mut cc = CongruenceClosure::new();
        let t1 = Term::app("f", vec![Term::app("g", vec![x()]), x()]);
        let t2 = Term::app("f", vec![Term::app("g", vec![y()]), y()]);
        cc.add_term(&t1);
        cc.add_term(&t2);
        cc.assert_eq(&x(), &y());
        assert!(cc.are_equal(&t1, &t2));
    }

    #[test]
    fn different_functions_stay_apart() {
        let mut cc = CongruenceClosure::new();
        let fx = Term::app("f", vec![x()]);
        let gx = Term::app("g", vec![x()]);
        cc.add_term(&fx);
        cc.add_term(&gx);
        assert!(!cc.are_equal(&fx, &gx));
        assert!(cc.is_consistent());
    }

    #[test]
    fn implied_equalities_reported() {
        let mut cc = CongruenceClosure::new();
        cc.assert_eq(&x(), &y());
        let eqs = cc.implied_equalities(&[x(), y(), z()]);
        assert_eq!(eqs.len(), 1);
        assert!(cc.num_classes() >= 2);
    }

    #[test]
    fn arithmetic_terms_are_uninterpreted_but_congruent() {
        let mut cc = CongruenceClosure::new();
        let xp1 = x().add(Term::int(1));
        let yp1 = y().add(Term::int(1));
        cc.add_term(&xp1);
        cc.add_term(&yp1);
        cc.assert_eq(&x(), &y());
        assert!(cc.are_equal(&xp1, &yp1));
        // But it does NOT know that x + 1 = 1 + x: that is arithmetic.
        assert!(!cc.are_equal(&xp1, &Term::int(1).add(x())));
    }
}
