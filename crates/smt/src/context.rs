//! An incremental solving context over the combined solver.
//!
//! The CEGAR engine issues thousands of closely related queries: the same
//! abstract state conjoined with the same transition relation, asked about
//! one predicate after another, re-asked on every abstract-reachability
//! phase as the predicate map grows.  A [`SolverContext`] makes that shape
//! cheap in two ways:
//!
//! * **scoped assumptions** — callers [`push`](SolverContext::push) a frame,
//!   [`assume`](SolverContext::assume) the facts that stay fixed across a
//!   group of queries (the abstract state, the transition relation), issue
//!   the queries, and [`pop`](SolverContext::pop) the frame.  The context
//!   assembles the antecedent once per query from the live stack instead of
//!   forcing every call site to rebuild conjunctions by hand.
//! * **a keyed query cache** — every boolean query (satisfiability of the
//!   stack, entailment of a consequent) is memoized under a key derived from
//!   the assumption stack and the query formula.  The underlying
//!   [`Solver`] is deterministic, so replaying a cached answer is
//!   observationally identical to re-solving — it just skips the case
//!   splitting.  Queries that *error* (case-split budget, unsupported
//!   fragment) are never cached, so error behaviour is also unchanged.
//!
//! Cache keys are hash-consed ids: every assumed formula is interned
//! ([`FormulaId`]), the assumption *stack* is identified by a cons-chain of
//! interned pairs ([`SeqId`]) updated in `O(1)` per
//! [`assume`](SolverContext::assume), and a query key is the `Copy` triple
//! `(stack id, query kind, query id)`.  Hash consing is injective on
//! formula structure — structurally distinct stacks or queries get distinct
//! ids — so a hit is always sound, exactly like the pretty-printed string
//! keys this replaced, but without allocating or comparing a rendering of
//! the whole stack on every query.  The cache outlives pops on purpose: a
//! re-pushed assumption set rebuilds the same cons-chain id and hits the
//! entries it populated earlier, which is exactly the reuse pattern of
//! re-running abstract reachability after a refinement step.

use crate::error::SmtResult;
use crate::solver::Solver;
use pathinv_ir::{Formula, FormulaId, SeqId};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Usage counters of one [`SolverContext`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Boolean queries answered (satisfiability + entailment).
    pub queries: u64,
    /// Queries answered from the cache without touching the solver.
    pub cache_hits: u64,
    /// Entries currently stored in the cache.
    pub cache_entries: u64,
}

impl ContextStats {
    /// Cache hit rate in `[0, 1]`; `0` when no query was issued.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

/// An incremental context: a scoped assumption stack plus a keyed cache of
/// boolean query results, on top of the (stateless, deterministic)
/// combined [`Solver`].
#[derive(Debug)]
pub struct SolverContext {
    solver: Solver,
    /// The assumption stack, flattened; `frames` records the stack heights
    /// at which [`push`](SolverContext::push) was called.
    assumptions: Vec<Formula>,
    /// `stack_ids[k]` is the hash-consed identity of the first `k + 1`
    /// assumptions (a cons-chain: each entry interns `(previous, formula)`),
    /// maintained in lock-step with `assumptions`.
    stack_ids: Vec<SeqId>,
    frames: Vec<usize>,
    caching: bool,
    cache: RefCell<HashMap<QueryKey, bool>>,
    queries: Cell<u64>,
    hits: Cell<u64>,
}

/// The kind of a cached boolean query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum QueryKind {
    /// Satisfiability of the stack (possibly conjoined with an extra
    /// formula).
    Sat,
    /// Entailment of a consequent by the stack.
    Entails,
}

/// A cache key: the hash-consed stack identity, the query kind, and the
/// hash-consed query formula.  `Copy`, 12 bytes, `O(1)` to hash and compare.
type QueryKey = (u32, QueryKind, u32);

impl Default for SolverContext {
    fn default() -> Self {
        SolverContext::new()
    }
}

impl SolverContext {
    /// Creates a caching context over a default [`Solver`].
    pub fn new() -> SolverContext {
        SolverContext::with_solver(Solver::new(), true)
    }

    /// Creates a context with caching disabled: every query goes to the
    /// solver.  Used to measure the uncached baseline; answers are identical
    /// to the caching context's.
    pub fn uncached() -> SolverContext {
        SolverContext::with_solver(Solver::new(), false)
    }

    /// Creates a context over an explicit solver (e.g. with a custom
    /// case-split budget).
    pub fn with_solver(solver: Solver, caching: bool) -> SolverContext {
        SolverContext {
            solver,
            assumptions: Vec::new(),
            stack_ids: Vec::new(),
            frames: Vec::new(),
            caching,
            cache: RefCell::new(HashMap::new()),
            queries: Cell::new(0),
            hits: Cell::new(0),
        }
    }

    /// Whether query results are being cached.
    pub fn is_caching(&self) -> bool {
        self.caching
    }

    /// Opens a new assumption frame.
    pub fn push(&mut self) {
        self.frames.push(self.assumptions.len());
    }

    /// Discards every assumption made since the matching
    /// [`push`](SolverContext::push).  Returns `false` (and does nothing)
    /// if no frame is open.
    pub fn pop(&mut self) -> bool {
        match self.frames.pop() {
            Some(height) => {
                self.assumptions.truncate(height);
                self.stack_ids.truncate(height);
                true
            }
            None => false,
        }
    }

    /// Adds an assumption to the current frame.  Trivially true assumptions
    /// are dropped.  The stack's hash-consed identity is only maintained
    /// when caching is on — the uncached baseline never reads a cache key,
    /// so it must not pay for (or contend on) interning either.
    pub fn assume(&mut self, f: Formula) {
        if !matches!(f, Formula::True) {
            if self.caching {
                let fid = FormulaId::intern(&f);
                let prev = self.stack_ids.last().copied().unwrap_or_else(SeqId::empty);
                self.stack_ids.push(SeqId::cons(prev, fid.raw()));
            }
            self.assumptions.push(f);
        }
    }

    /// Number of open frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Number of live assumptions across all frames.
    pub fn num_assumptions(&self) -> usize {
        self.assumptions.len()
    }

    /// The conjunction of the live assumption stack.
    pub fn antecedent(&self) -> Formula {
        Formula::and(self.assumptions.clone())
    }

    /// Decides satisfiability of the assumption stack.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (unsupported fragment, case-split budget).
    pub fn is_sat(&self) -> SmtResult<bool> {
        // The key already identifies the full assumption stack, so the
        // query part is trivially `true`; the conjunction is only built on
        // a cache miss.
        self.cached(QueryKind::Sat, &Formula::True, |s| s.is_sat(&self.antecedent()))
    }

    /// Decides satisfiability of the assumption stack conjoined with
    /// `extra`, without mutating the stack.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn is_sat_with(&self, extra: &Formula) -> SmtResult<bool> {
        self.cached(QueryKind::Sat, extra, |s| {
            s.is_sat(&Formula::and(vec![self.antecedent(), extra.clone()]))
        })
    }

    /// Returns `true` if the assumption stack entails `consequent`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn entails(&self, consequent: &Formula) -> SmtResult<bool> {
        self.cached(QueryKind::Entails, consequent, |s| s.entails(&self.antecedent(), consequent))
    }

    /// Usage counters of this context.
    pub fn stats(&self) -> ContextStats {
        ContextStats {
            queries: self.queries.get(),
            cache_hits: self.hits.get(),
            cache_entries: self.cache.borrow().len() as u64,
        }
    }

    /// Drops every cached result (the counters are kept).
    pub fn clear_cache(&mut self) {
        self.cache.borrow_mut().clear();
    }

    /// Answers a boolean query through the cache.  The key couples the query
    /// kind and the interned query formula with the hash-consed identity of
    /// the full assumption stack, so an answer is only ever replayed for an
    /// identical (stack, query) pair.  Errors are propagated and never
    /// cached.
    fn cached(
        &self,
        kind: QueryKind,
        query: &Formula,
        solve: impl FnOnce(&Solver) -> SmtResult<bool>,
    ) -> SmtResult<bool> {
        self.queries.set(self.queries.get() + 1);
        if !self.caching {
            return solve(&self.solver);
        }
        let stack = self.stack_ids.last().copied().unwrap_or_else(SeqId::empty);
        let key: QueryKey = (stack.raw(), kind, FormulaId::intern(query).raw());
        if let Some(&answer) = self.cache.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return Ok(answer);
        }
        let answer = solve(&self.solver)?;
        self.cache.borrow_mut().insert(key, answer);
        Ok(answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_ir::Term;

    fn lt(x: &str, k: i128) -> Formula {
        Formula::lt(Term::var(x), Term::int(k))
    }

    fn ge(x: &str, k: i128) -> Formula {
        Formula::ge(Term::var(x), Term::int(k))
    }

    #[test]
    fn push_pop_scopes_assumptions() {
        let mut ctx = SolverContext::new();
        ctx.assume(ge("x", 0));
        assert!(ctx.is_sat().unwrap());
        ctx.push();
        ctx.assume(lt("x", 0));
        assert!(!ctx.is_sat().unwrap());
        assert!(ctx.pop());
        assert!(ctx.is_sat().unwrap());
        assert_eq!(ctx.num_assumptions(), 1);
        assert!(!ctx.pop(), "no frame left to pop");
    }

    #[test]
    fn identical_queries_hit_the_cache() {
        let mut ctx = SolverContext::new();
        ctx.assume(ge("x", 1));
        assert!(ctx.entails(&ge("x", 0)).unwrap());
        assert!(ctx.entails(&ge("x", 0)).unwrap());
        let stats = ctx.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_survives_pop_and_repush() {
        let mut ctx = SolverContext::new();
        for round in 0..2 {
            ctx.push();
            ctx.assume(ge("x", 5));
            assert!(ctx.entails(&ge("x", 3)).unwrap());
            assert!(ctx.pop());
            if round == 1 {
                assert_eq!(ctx.stats().cache_hits, 1, "second round must reuse the first");
            }
        }
    }

    #[test]
    fn different_stacks_do_not_share_answers() {
        let mut ctx = SolverContext::new();
        ctx.push();
        ctx.assume(ge("x", 5));
        assert!(ctx.entails(&ge("x", 3)).unwrap());
        ctx.pop();
        ctx.push();
        ctx.assume(ge("x", 2));
        assert!(!ctx.entails(&ge("x", 3)).unwrap());
        ctx.pop();
        assert_eq!(ctx.stats().cache_hits, 0);
        assert_eq!(ctx.stats().cache_entries, 2);
    }

    #[test]
    fn uncached_context_answers_identically_without_hits() {
        let mut cached = SolverContext::new();
        let mut plain = SolverContext::uncached();
        for ctx in [&mut cached, &mut plain] {
            ctx.assume(ge("x", 0));
            ctx.assume(lt("x", 10));
            for _ in 0..2 {
                assert!(ctx.is_sat().unwrap());
                assert!(ctx.entails(&lt("x", 11)).unwrap());
                assert!(!ctx.entails(&lt("x", 5)).unwrap());
            }
        }
        assert_eq!(cached.stats().queries, plain.stats().queries);
        assert_eq!(cached.stats().cache_hits, 3);
        assert_eq!(plain.stats().cache_hits, 0);
        assert_eq!(plain.stats().cache_entries, 0);
    }

    #[test]
    fn is_sat_with_does_not_mutate_the_stack() {
        let mut ctx = SolverContext::new();
        ctx.assume(ge("x", 0));
        assert!(!ctx.is_sat_with(&lt("x", 0)).unwrap());
        assert_eq!(ctx.num_assumptions(), 1);
        assert!(ctx.is_sat().unwrap());
    }

    #[test]
    fn clear_cache_forces_resolving() {
        let mut ctx = SolverContext::new();
        ctx.assume(ge("x", 1));
        assert!(ctx.entails(&ge("x", 0)).unwrap());
        ctx.clear_cache();
        assert_eq!(ctx.stats().cache_entries, 0);
        assert!(ctx.entails(&ge("x", 0)).unwrap());
        assert_eq!(ctx.stats().cache_hits, 0);
    }
}
