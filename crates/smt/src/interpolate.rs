//! Craig interpolation for linear rational arithmetic, derived from Farkas
//! certificates.
//!
//! This is the predicate-discovery engine of the *baseline* refiner (the
//! SLAM/BLAST-style scheme the paper argues against in §2.1): from an
//! infeasible path formula it produces one interpolant per path position,
//! whose atoms are added as predicates.  On programs whose proof needs a loop
//! invariant the baseline keeps producing predicates like `i = 0`, `i = 1`,
//! `i = 2`, ... — exactly the divergence the experiments reproduce.
//!
//! The construction is standard: if `A ∧ B` is infeasible with Farkas
//! multipliers `λ`, then `Σ_{c ∈ A} λ_c·c` (as a `≤`/`<` fact) is an
//! interpolant for `(A, B)`.  Sequence interpolants for a partition
//! `G_1, ..., G_n` are obtained by cutting the same certificate at every
//! position, which makes them inductive by construction.

use crate::error::{SmtError, SmtResult};
use crate::linexpr::{ConstrOp, LinConstraint, LinExpr};
use crate::rat::Rat;
use crate::simplex::{solve, FarkasCertificate, IncrementalSimplex, LpResult};
use pathinv_ir::{Formula, VarRef};

/// Computes the interpolant for the partition of `constraints` into the
/// prefix `constraints[..cut]` (the `A` part) and the suffix (the `B` part),
/// given a Farkas certificate for the whole system.
///
/// The result is implied by the prefix, inconsistent with the suffix, and —
/// by construction of the Farkas combination — only mentions variables
/// common to both parts (or a constant truth value).
pub fn interpolant_from_certificate(
    constraints: &[LinConstraint<VarRef>],
    certificate: &FarkasCertificate,
    cut: usize,
) -> SmtResult<Formula> {
    let mut combo: LinExpr<VarRef> = LinExpr::zero();
    let mut strict = false;
    let mut any = false;
    for (k, c) in constraints.iter().enumerate().take(cut) {
        let lambda = certificate.multipliers.get(k).copied().unwrap_or(Rat::ZERO);
        if lambda.is_zero() {
            continue;
        }
        any = true;
        if c.op == ConstrOp::Lt && lambda.is_positive() {
            strict = true;
        }
        combo = combo.add(&c.expr.scale(lambda)?)?;
    }
    if !any {
        return Ok(Formula::True);
    }
    if combo.is_constant() {
        // The prefix alone is contradictory (constant > 0) or contributes
        // nothing (constant <= 0 is a tautological fact).
        let k = combo.constant_part();
        if k.is_positive() || (strict && !k.is_negative()) {
            return Ok(Formula::False);
        }
        return Ok(Formula::True);
    }
    let op = if strict { ConstrOp::Lt } else { ConstrOp::Le };
    LinConstraint::new(combo, op).to_formula()
}

/// Computes sequence interpolants for the groups `groups[0], ..., groups[n-1]`
/// of constraints (one group per path position).
///
/// Returns `None` if the conjunction of all groups is satisfiable.  Otherwise
/// returns `n - 1` formulas `I_1, ..., I_{n-1}` such that `I_k` is implied by
/// `groups[..k]`, is inconsistent with `groups[k..]`, and
/// `I_k ∧ groups[k] ⊨ I_{k+1}`.
pub fn sequence_interpolants(
    groups: &[Vec<LinConstraint<VarRef>>],
) -> SmtResult<Option<Vec<Formula>>> {
    crate::stats::record_interpolant_call();
    let flat: Vec<LinConstraint<VarRef>> = groups.iter().flatten().cloned().collect();
    let certificate = match solve(&flat)? {
        LpResult::Sat(_) => return Ok(None),
        LpResult::Unsat(c) => c,
    };
    let mut out = Vec::new();
    let mut cut = 0;
    for g in groups.iter().take(groups.len().saturating_sub(1)) {
        cut += g.len();
        out.push(interpolant_from_certificate(&flat, &certificate, cut)?);
    }
    Ok(Some(out))
}

/// Incremental sequence interpolation over a fixed group skeleton.
///
/// The baseline refiner splits every disequality atom of a path formula
/// into its two strict cases and interpolates each unsatisfiable
/// combination — `2^k` queries that share the entire group skeleton and
/// differ only in `k` extra strict rows.  [`sequence_interpolants`] would
/// rebuild and cold-solve the full system per combination; this type pushes
/// the skeleton into an [`IncrementalSimplex`] once and answers every
/// combination with a checkpointed push / warm re-check / pop cycle, so a
/// whole split family costs *zero* cold simplex solves.
///
/// Interpolants are derived from the warm check's Farkas certificate with
/// the extra rows re-ordered into their home groups, exactly as if the
/// combined system had been interpolated flat.
pub struct SequenceInterpolator {
    tableau: IncrementalSimplex<VarRef>,
    groups: Vec<Vec<LinConstraint<VarRef>>>,
}

impl SequenceInterpolator {
    /// Builds the interpolator by pushing the group skeleton (no
    /// feasibility check happens yet).
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow.
    pub fn new(groups: Vec<Vec<LinConstraint<VarRef>>>) -> SmtResult<SequenceInterpolator> {
        let mut tableau = IncrementalSimplex::new();
        for c in groups.iter().flatten() {
            tableau.push_constraint(c)?;
        }
        Ok(SequenceInterpolator { tableau, groups })
    }

    /// Sequence interpolants for the skeleton with each `(group, row)` extra
    /// appended to its group, or `None` when the combined system is
    /// satisfiable.  Counted as one interpolant computation; the
    /// feasibility decision is a warm incremental re-check.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range group index; propagates
    /// arithmetic overflow.
    pub fn interpolants(
        &mut self,
        extras: &[(usize, LinConstraint<VarRef>)],
    ) -> SmtResult<Option<Vec<Formula>>> {
        crate::stats::record_interpolant_call();
        if let Some((g, _)) = extras.iter().find(|(g, _)| *g >= self.groups.len()) {
            return Err(SmtError::unsupported(format!(
                "extra interpolation row targets group {g} of {}",
                self.groups.len()
            )));
        }
        let checkpoint = self.tableau.checkpoint();
        for (_, c) in extras {
            self.tableau.push_constraint(c)?;
        }
        if self.tableau.check()? {
            self.tableau.pop_to(checkpoint)?;
            return Ok(None);
        }
        let certificate = self.tableau.take_certificate();
        self.tableau.pop_to(checkpoint)?;

        // Re-order into the virtual flat system: group 0's skeleton rows,
        // then group 0's extras (in `extras` order), then group 1, ...  The
        // push order was skeleton-flat followed by all extras, so permute
        // the certificate multipliers accordingly.
        let base_len: usize = self.groups.iter().map(Vec::len).sum();
        let mut flat: Vec<LinConstraint<VarRef>> = Vec::with_capacity(base_len + extras.len());
        let mut multipliers: Vec<Rat> = Vec::with_capacity(base_len + extras.len());
        let mut cuts: Vec<usize> = Vec::new();
        let mut base_pos = 0;
        for (g, group) in self.groups.iter().enumerate() {
            for c in group {
                flat.push(c.clone());
                multipliers.push(certificate.multipliers[base_pos]);
                base_pos += 1;
            }
            for (e, (eg, c)) in extras.iter().enumerate() {
                if *eg == g {
                    flat.push(c.clone());
                    multipliers.push(certificate.multipliers[base_len + e]);
                }
            }
            cuts.push(flat.len());
        }
        let virtual_cert = FarkasCertificate { multipliers };
        debug_assert!(
            virtual_cert.verify(&flat)?,
            "re-ordered interpolation certificate must stay valid"
        );
        let mut out = Vec::new();
        for &cut in cuts.iter().take(cuts.len().saturating_sub(1)) {
            out.push(interpolant_from_certificate(&flat, &virtual_cert, cut)?);
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex;
    use pathinv_ir::{Formula as F, Term};

    fn c(f: F) -> LinConstraint<VarRef> {
        LinConstraint::from_atom(&f.atoms()[0]).unwrap().tighten_for_integers().unwrap()
    }

    /// Checks the defining properties of an interpolant for (A, B).
    fn check_interpolant(a: &[LinConstraint<VarRef>], b: &[LinConstraint<VarRef>], itp: &F) {
        match itp {
            F::True => {
                // B alone must be unsatisfiable.
                assert!(!simplex::solve(b).unwrap().is_sat(), "True interpolant needs unsat B");
            }
            F::False => {
                assert!(!simplex::solve(a).unwrap().is_sat(), "False interpolant needs unsat A");
            }
            other => {
                let ic = c(other.clone());
                // A implies the interpolant.
                assert!(simplex::entails(a, &ic).unwrap(), "A must imply the interpolant {other}");
                // Interpolant together with B is unsatisfiable.
                let mut bs = b.to_vec();
                bs.push(ic);
                assert!(
                    !simplex::solve(&bs).unwrap().is_sat(),
                    "interpolant {other} must refute B"
                );
            }
        }
    }

    #[test]
    fn simple_two_part_interpolant() {
        // A: x <= y, y <= 3    B: x >= 5
        let a =
            vec![c(F::le(Term::var("x"), Term::var("y"))), c(F::le(Term::var("y"), Term::int(3)))];
        let b = vec![c(F::ge(Term::var("x"), Term::int(5)))];
        let groups = vec![a.clone(), b.clone()];
        let itps = sequence_interpolants(&groups).unwrap().unwrap();
        assert_eq!(itps.len(), 1);
        check_interpolant(&a, &b, &itps[0]);
        // It should mention only the shared variable x.
        assert!(itps[0].var_names().iter().all(|v| v.as_str() == "x"));
    }

    #[test]
    fn satisfiable_system_gives_none() {
        let groups = vec![
            vec![c(F::le(Term::var("x"), Term::int(3)))],
            vec![c(F::ge(Term::var("x"), Term::int(0)))],
        ];
        assert!(sequence_interpolants(&groups).unwrap().is_none());
    }

    #[test]
    fn sequence_interpolants_are_inductive() {
        // Counter path: i0 = 0; i1 = i0 + 1; i2 = i1 + 1; i2 < 1 — infeasible.
        let groups = vec![
            vec![c(F::eq(Term::ivar("i", 0), Term::int(0)))],
            vec![c(F::eq(Term::ivar("i", 1), Term::ivar("i", 0).add(Term::int(1))))],
            vec![c(F::eq(Term::ivar("i", 2), Term::ivar("i", 1).add(Term::int(1))))],
            vec![c(F::lt(Term::ivar("i", 2), Term::int(1)))],
        ];
        let itps = sequence_interpolants(&groups).unwrap().unwrap();
        assert_eq!(itps.len(), 3);
        for (k, itp) in itps.iter().enumerate() {
            let a: Vec<_> = groups[..=k].iter().flatten().cloned().collect();
            let b: Vec<_> = groups[k + 1..].iter().flatten().cloned().collect();
            check_interpolant(&a, &b, itp);
        }
    }

    #[test]
    fn incremental_interpolator_matches_flat_interpolation_semantics() {
        // The counter path with the final bound supplied as a per-query
        // extra strict row, both directions (the disequality-split shape).
        let groups = vec![
            vec![c(F::eq(Term::ivar("i", 0), Term::int(0)))],
            vec![c(F::eq(Term::ivar("i", 1), Term::ivar("i", 0).add(Term::int(1))))],
            vec![c(F::eq(Term::ivar("i", 2), Term::ivar("i", 1).add(Term::int(1))))],
            vec![],
        ];
        let cold_before = crate::stats::snapshot();
        let mut itp = SequenceInterpolator::new(groups.clone()).unwrap();
        // i2 < 1 in group 3: infeasible; interpolants must satisfy the
        // defining properties at every cut.
        let low = (3usize, c(F::lt(Term::ivar("i", 2), Term::int(1))));
        let out = itp.interpolants(std::slice::from_ref(&low)).unwrap().unwrap();
        // i2 > 1 in group 3: satisfiable; and the tableau survives for the
        // next query (the pop restored the skeleton).
        let high = (3usize, c(F::gt(Term::ivar("i", 2), Term::int(1))));
        assert!(itp.interpolants(&[high]).unwrap().is_none());
        let again = itp.interpolants(std::slice::from_ref(&low)).unwrap().unwrap();
        assert_eq!(again.len(), 3);
        // The whole family cost zero cold simplex solves.
        let delta = crate::stats::snapshot().since(&cold_before);
        assert_eq!(delta.simplex_calls, 0, "incremental interpolation must not cold-solve");
        assert!(delta.simplex_warm_checks >= 3);
        assert_eq!(delta.interpolant_calls, 3);
        assert_eq!(out.len(), 3);
        for (k, f) in out.iter().enumerate() {
            let mut a: Vec<_> = groups[..=k].iter().flatten().cloned().collect();
            let mut b: Vec<_> = groups[k + 1..].iter().flatten().cloned().collect();
            if low.0 <= k {
                a.push(low.1.clone());
            } else {
                b.push(low.1.clone());
            }
            check_interpolant(&a, &b, f);
        }
    }

    #[test]
    fn incremental_interpolator_rejects_bad_group_index() {
        let groups = vec![vec![c(F::le(Term::var("x"), Term::int(3)))]];
        let mut itp = SequenceInterpolator::new(groups).unwrap();
        let extra = (4usize, c(F::ge(Term::var("x"), Term::int(5))));
        assert!(itp.interpolants(&[extra]).is_err());
    }

    #[test]
    fn interpolant_can_be_constant_false() {
        // A is already contradictory.
        let groups = vec![
            vec![c(F::le(Term::var("x"), Term::int(0))), c(F::ge(Term::var("x"), Term::int(1)))],
            vec![c(F::ge(Term::var("y"), Term::int(0)))],
        ];
        let itps = sequence_interpolants(&groups).unwrap().unwrap();
        assert_eq!(itps[0], F::False);
    }

    #[test]
    fn interpolant_can_be_constant_true() {
        // All the contradiction lives in B.
        let groups = vec![
            vec![c(F::ge(Term::var("y"), Term::int(0)))],
            vec![c(F::le(Term::var("x"), Term::int(0))), c(F::ge(Term::var("x"), Term::int(1)))],
        ];
        let itps = sequence_interpolants(&groups).unwrap().unwrap();
        check_interpolant(&groups[0], &groups[1], &itps[0]);
    }
}
