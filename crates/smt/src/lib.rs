//! # pathinv-smt — decision-procedure substrate
//!
//! This crate implements, from scratch, every solver the Path Invariants
//! algorithms need:
//!
//! * exact rational arithmetic ([`Rat`], [`DeltaRat`]),
//! * linear expressions and constraints ([`LinExpr`], [`LinConstraint`]),
//! * a general simplex for linear rational arithmetic with Farkas
//!   infeasibility certificates ([`simplex`]),
//! * Fourier–Motzkin elimination ([`fourier_motzkin`]),
//! * congruence closure for uninterpreted functions ([`congruence`]),
//! * a combined quantifier-free solver for linear arithmetic + arrays +
//!   uninterpreted functions ([`solver`]), used for counterexample
//!   feasibility checks and predicate-abstraction entailment queries,
//! * Craig interpolation for linear rational arithmetic ([`interpolate`]),
//!   used by the baseline (BLAST-style) refiner,
//! * an incremental solving layer ([`context`]): a [`SolverContext`] with a
//!   scoped assumption stack (push/pop) and a keyed cache of boolean query
//!   results, which the CEGAR engine reuses across abstract-post and
//!   feasibility queries,
//! * thread-local call counters ([`stats`]) so harnesses can report solver
//!   work per verification task,
//! * cooperative cancellation ([`cancel`]): a [`CancellationToken`] the
//!   racing portfolio sets and the solvers' budget-poll sites observe, so a
//!   losing engine stops within one poll interval of the winner's verdict,
//! * wall-clock deadlines ([`deadline`]): a process-wide watchdog thread
//!   that cancels a registered token once its deadline passes, which is how
//!   the verification service and the `--timeout-ms` harness modes turn
//!   overdue jobs into honest `cancelled` verdicts.
//!
//! The paper's implementation delegated this layer to SICStus CLP(Q); see
//! DESIGN.md §4 for the substitution argument.
//!
//! ## Quick example
//!
//! ```
//! use pathinv_ir::{Formula, Term};
//! use pathinv_smt::Solver;
//!
//! let solver = Solver::new();
//! let x = Term::var("x");
//! let f = Formula::and(vec![
//!     Formula::gt(x.clone(), Term::int(0)),
//!     Formula::lt(x, Term::int(1)),
//! ]);
//! // No integer lies strictly between 0 and 1.
//! assert!(!solver.is_sat(&f)?);
//! # Ok::<(), pathinv_smt::SmtError>(())
//! ```

#![warn(missing_docs)]

pub mod cancel;
pub mod congruence;
pub mod context;
pub mod deadline;
pub mod error;
pub mod fourier_motzkin;
pub mod interpolate;
pub mod linexpr;
pub mod rat;
pub mod simplex;
pub mod solver;
pub mod stats;

pub use cancel::{check_ambient, AmbientGuard, CancellationToken};
pub use congruence::CongruenceClosure;
pub use context::{ContextStats, SolverContext};
pub use deadline::{enforce_deadline, DeadlineGuard};
pub use error::{SmtError, SmtResult};
pub use interpolate::{interpolant_from_certificate, sequence_interpolants, SequenceInterpolator};
pub use linexpr::{ConstrOp, LinConstraint, LinExpr};
pub use rat::{DeltaRat, Rat};
pub use simplex::{
    entails as lra_entails, solve as lra_solve, FarkasCertificate, IncrementalSimplex, LpResult,
};
pub use solver::{IntSatResult, Model, SatResult, Solver};
pub use stats::{snapshot as stats_snapshot, SmtStats};
