//! # pathinv-smt — decision-procedure substrate
//!
//! This crate implements, from scratch, every solver the Path Invariants
//! algorithms need:
//!
//! * exact rational arithmetic ([`Rat`], [`DeltaRat`]),
//! * linear expressions and constraints ([`LinExpr`], [`LinConstraint`]),
//! * a general simplex for linear rational arithmetic with Farkas
//!   infeasibility certificates ([`simplex`]),
//! * Fourier–Motzkin elimination ([`fourier_motzkin`]),
//! * congruence closure for uninterpreted functions ([`congruence`]),
//! * a combined quantifier-free solver for linear arithmetic + arrays +
//!   uninterpreted functions ([`solver`]), used for counterexample
//!   feasibility checks and predicate-abstraction entailment queries,
//! * Craig interpolation for linear rational arithmetic ([`interpolate`]),
//!   used by the baseline (BLAST-style) refiner.
//!
//! The paper's implementation delegated this layer to SICStus CLP(Q); see
//! DESIGN.md §4 for the substitution argument.
//!
//! ## Quick example
//!
//! ```
//! use pathinv_ir::{Formula, Term};
//! use pathinv_smt::Solver;
//!
//! let solver = Solver::new();
//! let x = Term::var("x");
//! let f = Formula::and(vec![
//!     Formula::gt(x.clone(), Term::int(0)),
//!     Formula::lt(x, Term::int(1)),
//! ]);
//! // No integer lies strictly between 0 and 1.
//! assert!(!solver.is_sat(&f)?);
//! # Ok::<(), pathinv_smt::SmtError>(())
//! ```

#![warn(missing_docs)]

pub mod congruence;
pub mod error;
pub mod fourier_motzkin;
pub mod interpolate;
pub mod linexpr;
pub mod rat;
pub mod simplex;
pub mod solver;

pub use congruence::CongruenceClosure;
pub use error::{SmtError, SmtResult};
pub use interpolate::{interpolant_from_certificate, sequence_interpolants};
pub use linexpr::{ConstrOp, LinConstraint, LinExpr};
pub use rat::{DeltaRat, Rat};
pub use simplex::{entails as lra_entails, solve as lra_solve, FarkasCertificate, LpResult};
pub use solver::{Model, SatResult, Solver};
