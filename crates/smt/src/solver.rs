//! The combined quantifier-free solver for linear integer arithmetic,
//! arrays, and uninterpreted functions.
//!
//! This is the decision procedure behind the two queries the CEGAR engine
//! needs (§4.1 of the paper):
//!
//! * **feasibility of path formulas** — is the SSA encoding of a
//!   counterexample satisfiable? (If so the bug is real.)
//! * **entailment for predicate abstraction** — does the current abstract
//!   state, conjoined with a transition relation, imply a predicate in the
//!   post-state?
//!
//! The pipeline mirrors the hierarchic reduction described in §4.2 of the
//! paper: universally quantified antecedents are instantiated at the array
//! indices occurring in the query, array writes are eliminated by
//! read-over-write case analysis, the remaining array reads are treated as
//! applications of uninterpreted functions (with functionality enforced
//! lazily), and the resulting conjunctions of linear constraints are decided
//! by the simplex solver with integer tightening of strict inequalities.
//!
//! The boolean structure is decided by a DPLL-style search over the NNF
//! skeleton (`CubeSearch`) instead of eager DNF expansion: atoms decided
//! so far form a *cube prefix*, disjunctions are unit-resolved against the
//! prefix, the prefix's theory-consistency is checked (and memoized under
//! its hash-consed atom-set id) before every case split, and a
//! theory-inconsistent prefix prunes its entire subtree of cubes at once.
//! On the quantified queries of the array programs this replaces the
//! exponential cube enumeration — the old enumerator exhausted the
//! case-split budget on BUGGY_INITCHECK — with a search whose budget
//! consumption tracks the theory work actually performed.

use crate::congruence::CongruenceClosure;
use crate::error::{SmtError, SmtResult};
use crate::linexpr::{LinConstraint, LinExpr};
use crate::rat::Rat;
use crate::simplex::{solve as lra_solve, IncrementalSimplex};
use pathinv_ir::{Atom, Formula, FormulaId, RelOp, SeqId, Symbol, Term, VarRef};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// A model: rational values for the integer-sorted variables of the query.
///
/// Values are produced by the rational relaxation; they are exact witnesses
/// for the relaxation and, on the benchmark corpus, integral witnesses for
/// the original formula whenever one exists.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    /// Variable assignment.
    pub values: BTreeMap<VarRef, Rat>,
}

impl Model {
    /// Looks up the value of a variable, if constrained.
    pub fn value(&self, v: VarRef) -> Option<Rat> {
        self.values.get(&v).copied()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, r) in &self.values {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{v} = {r}")?;
            first = false;
        }
        Ok(())
    }
}

/// Outcome of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// The formula is satisfiable; a model for its variables is attached.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Returns `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Outcome of an integral satisfiability query ([`Solver::check_integral`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntSatResult {
    /// Satisfiable over the integers; the attached model is fully integral.
    Sat(Model),
    /// Unsatisfiable over the integers.
    Unsat,
    /// The branch-and-bound node budget ran out before a conclusion; callers
    /// must treat this conservatively (never as a verdict).
    Unknown,
}

/// The combined solver.  Construct once and reuse; the solver itself is
/// stateless apart from a branch budget.
#[derive(Clone, Debug)]
pub struct Solver {
    max_branches: usize,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

/// A recorded "read instance": an array read or uninterpreted function
/// application that has been abstracted by a fresh integer variable.
#[derive(Clone, Debug)]
struct Instance {
    /// Identity of the function: the array term rendered to a string, or the
    /// uninterpreted function symbol.
    fun: String,
    /// Argument terms (select-free after abstraction).
    args: Vec<Term>,
    /// The fresh variable standing for the result.
    result: VarRef,
}

impl Solver {
    /// Creates a solver with the default case-split budget.
    pub fn new() -> Solver {
        Solver { max_branches: 20_000 }
    }

    /// Creates a solver with an explicit case-split budget (number of
    /// explored branches before [`SmtError::Budget`] is reported).
    pub fn with_budget(max_branches: usize) -> Solver {
        Solver { max_branches }
    }

    /// Decides satisfiability of a quantifier-free formula (universal
    /// quantifiers are allowed in *positive* positions and are instantiated
    /// at the array indices occurring in the query).
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::Unsupported`] for negated quantifiers or
    /// non-linear arithmetic, and [`SmtError::Budget`] if the case-split
    /// budget is exhausted.
    pub fn check(&self, f: &Formula) -> SmtResult<SatResult> {
        crate::stats::record_sat_check();
        check_no_negated_quantifier(f, true)?;
        let budget = Cell::new(self.max_branches);
        let original_vars: BTreeSet<VarRef> = f.var_refs();
        let mut search = CubeSearch::default();
        let mut pending = VecDeque::new();
        pending.push_back(f.nnf());
        match search.dpll(self, pending, Vec::new(), Vec::new(), false, &budget)? {
            Some(model) => {
                let values =
                    model.values.into_iter().filter(|(v, _)| original_vars.contains(v)).collect();
                Ok(SatResult::Sat(Model { values }))
            }
            None => Ok(SatResult::Unsat),
        }
    }

    /// Decides satisfiability of a conjunction of formulas.
    pub fn check_conjunction(&self, fs: &[Formula]) -> SmtResult<SatResult> {
        self.check(&Formula::and(fs.to_vec()))
    }

    /// Decides satisfiability *over the integers* by branch-and-bound on top
    /// of the rational relaxation.
    ///
    /// [`Solver::check`] decides the rational relaxation: only strict
    /// inequalities are tightened for integrality, so an equality like
    /// `x + x = 1` is rationally satisfiable (`x = 1/2`) with no integer
    /// solution.  Rational-UNSAT still implies integer-UNSAT, so `Safe`
    /// proofs built on `check` are sound — but *satisfiability* claims (and
    /// the counterexamples they justify) are not.  This method closes that
    /// gap: whenever the relaxation produces a fractional value for a
    /// variable `v` with value `r`, it branches on `v <= floor(r)` versus
    /// `v >= floor(r) + 1` (both of which exclude `r`) and recurses, up to
    /// `max_nodes` branch nodes.
    ///
    /// Returns [`IntSatResult::Sat`] only with a fully integral model,
    /// [`IntSatResult::Unsat`] when every branch is (rationally, hence
    /// integrally) unsatisfiable, and [`IntSatResult::Unknown`] when the
    /// node budget runs out — callers must treat `Unknown` conservatively
    /// and never turn it into a verdict.
    ///
    /// Branching only ever targets integer-sorted variables: array variables
    /// never receive values from the linear core (reads are abstracted by
    /// fresh integer instances), so every valued variable is arithmetic.
    ///
    /// # Errors
    ///
    /// As [`Solver::check`].
    pub fn check_integral(&self, f: &Formula, max_nodes: usize) -> SmtResult<IntSatResult> {
        let mut nodes = max_nodes;
        self.branch_and_bound(f, &mut nodes)
    }

    fn branch_and_bound(&self, f: &Formula, nodes: &mut usize) -> SmtResult<IntSatResult> {
        let model = match self.check(f)? {
            SatResult::Unsat => return Ok(IntSatResult::Unsat),
            SatResult::Sat(model) => model,
        };
        let Some((&v, &r)) = model.values.iter().find(|(_, r)| !r.is_integer()) else {
            return Ok(IntSatResult::Sat(model));
        };
        if *nodes == 0 {
            return Ok(IntSatResult::Unknown);
        }
        *nodes -= 1;
        let lo = r.floor();
        let below = Formula::and(vec![f.clone(), Formula::le(Term::Var(v), Term::int(lo))]);
        let above = Formula::and(vec![f.clone(), Formula::ge(Term::Var(v), Term::int(lo + 1))]);
        let mut exhausted = false;
        for branch in [below, above] {
            match self.branch_and_bound(&branch, nodes)? {
                IntSatResult::Sat(m) => return Ok(IntSatResult::Sat(m)),
                IntSatResult::Unsat => {}
                IntSatResult::Unknown => exhausted = true,
            }
        }
        Ok(if exhausted { IntSatResult::Unknown } else { IntSatResult::Unsat })
    }

    /// Returns `true` if the formula is satisfiable.
    pub fn is_sat(&self, f: &Formula) -> SmtResult<bool> {
        Ok(self.check(f)?.is_sat())
    }

    /// Returns `true` if `antecedent` entails `consequent`.
    ///
    /// Universally quantified consequents are proved by skolemising the bound
    /// variables; conjunctions are split.
    pub fn entails(&self, antecedent: &Formula, consequent: &Formula) -> SmtResult<bool> {
        match consequent {
            Formula::True => Ok(true),
            Formula::And(parts) => {
                for p in parts {
                    if !self.entails(antecedent, p)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Forall(vars, body) => {
                // Skolemise: a universal consequent holds iff the body holds
                // for fresh constants.
                let mut skolemised = (**body).clone();
                for v in vars {
                    let fresh = Symbol::fresh(&format!("sk_{v}"));
                    skolemised = skolemised.map_terms(&|t| t.subst_bound(*v, &Term::var(fresh)));
                }
                self.entails(antecedent, &skolemised)
            }
            Formula::Implies(a, b) => {
                self.entails(&Formula::and(vec![antecedent.clone(), (**a).clone()]), b)
            }
            other => {
                let query = Formula::and(vec![antecedent.clone(), other.clone().not()]);
                Ok(!self.is_sat(&query)?)
            }
        }
    }

    /// Returns `true` if the formula is valid (entailed by `true`).
    pub fn is_valid(&self, f: &Formula) -> SmtResult<bool> {
        self.entails(&Formula::True, f)
    }

    /// Decides a conjunction of ground atoms by recursive case splitting:
    /// disequalities, then read-over-write, then the base theory combination.
    fn solve_atoms(&self, atoms: Vec<Atom>, budget: &Cell<usize>) -> SmtResult<Option<Model>> {
        crate::cancel::check_ambient()?;
        if budget.get() == 0 {
            return Err(SmtError::Budget {
                message: "case-split budget exhausted in the combined solver".into(),
            });
        }
        budget.set(budget.get() - 1);

        // 0. Conflict-driven pruning: when a non-trivial case-split tree is
        //    coming up, first check the *linear relaxation* of the
        //    conjunction (disequalities dropped, reads abstracted, no
        //    functionality) with one simplex call.  An unsatisfiable
        //    relaxation refutes every branch of the split tree at once —
        //    this is what keeps the SSA path formulas of deeply unrolled
        //    counterexamples (a disequality per store step) from burning the
        //    case-split budget on arithmetic that is already contradictory.
        //    A single pending disequality is split directly: its two
        //    branches cost about as much as the relaxation itself, and on a
        //    satisfiable query the relaxation along the witnessing branch is
        //    pure overhead.  Two or more disequalities mean a four-leaf (or
        //    larger) split tree, where one pruning call is always worth it —
        //    and the read-over-write chains of unrolled array programs renew
        //    their disequality supply at every miss step, so deep chains
        //    keep qualifying.
        let ne_count = atoms.iter().filter(|a| a.op == RelOp::Ne).count();
        if ne_count >= 2 && !self.relaxation_is_sat(&atoms)? {
            return Ok(None);
        }

        // 1. Split the first disequality.
        if let Some(pos) = atoms.iter().position(|a| a.op == RelOp::Ne) {
            let a = atoms[pos].clone();
            for op in [RelOp::Lt, RelOp::Gt] {
                let mut branch = atoms.clone();
                branch[pos] = Atom::new(a.lhs.clone(), op, a.rhs.clone());
                if let Some(m) = self.solve_atoms(branch, budget)? {
                    return Ok(Some(m));
                }
            }
            return Ok(None);
        }

        // 2. Resolve array aliases and collect store definitions.
        let (atoms, defs) = normalise_arrays(atoms)?;

        // 3. Find a read over a written array and split on the index.
        if let Some((target, base, idx, val)) = find_read_over_write(&atoms, &defs) {
            let written_idx = idx.clone();
            // Case A: the read hits the written cell.
            {
                let mut branch: Vec<Atom> = atoms
                    .iter()
                    .map(|a| a.map_terms(&|t| replace_subterm(t, &target, &val)))
                    .collect();
                let read_idx = match &target {
                    Term::Select(_, i) => (**i).clone(),
                    _ => unreachable!("target is always a select"),
                };
                branch.push(Atom::new(read_idx, RelOp::Eq, written_idx.clone()));
                branch.extend(defs_as_atoms(&defs));
                if let Some(m) = self.solve_atoms(branch, budget)? {
                    return Ok(Some(m));
                }
            }
            // Case B: the read misses the written cell.
            {
                let read_idx = match &target {
                    Term::Select(_, i) => (**i).clone(),
                    _ => unreachable!("target is always a select"),
                };
                let redirected = base.select(read_idx.clone());
                let mut branch: Vec<Atom> = atoms
                    .iter()
                    .map(|a| a.map_terms(&|t| replace_subterm(t, &target, &redirected)))
                    .collect();
                branch.push(Atom::new(read_idx, RelOp::Ne, written_idx));
                branch.extend(defs_as_atoms(&defs));
                if let Some(m) = self.solve_atoms(branch, budget)? {
                    return Ok(Some(m));
                }
            }
            return Ok(None);
        }

        // 4. Base case: no disequalities, no reads over writes.
        self.solve_base(&atoms, budget)
    }

    /// The linear relaxation of a ground conjunction: disequalities are
    /// dropped, array reads and applications are abstracted by fresh
    /// variables (identical reads share one, a congruence-lite that costs
    /// nothing), store structure is ignored, and the remaining linear
    /// skeleton is decided with a single simplex call.  Every dropped or
    /// weakened constraint only *removes* information, so `false` certifies
    /// the original conjunction unsatisfiable; `true` says nothing.
    ///
    /// Atoms outside the linear fragment (non-linear products, array-sorted
    /// equalities) are *skipped*, not errored: skipping only weakens the
    /// relaxation further, and the strict path must stay the sole source of
    /// `NonLinear` errors — it may legitimately refute such a cube through
    /// the congruence pre-filter without ever reaching the linear
    /// converter.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow.
    fn relaxation_is_sat(&self, atoms: &[Atom]) -> SmtResult<bool> {
        let mut instances: Vec<Instance> = Vec::new();
        let mut constraints: Vec<LinConstraint<VarRef>> = Vec::new();
        for a in atoms {
            if a.op == RelOp::Ne {
                continue;
            }
            let lhs = abstract_term(&a.lhs, &mut instances);
            let rhs = abstract_term(&a.rhs, &mut instances);
            match LinConstraint::from_atom(&Atom::new(lhs, a.op, rhs)) {
                Ok(c) => constraints.push(c.tighten_for_integers()?),
                Err(SmtError::SortMismatch { .. } | SmtError::NonLinear { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(lra_solve(&constraints)?.is_sat())
    }

    /// Base-case theory combination: congruence pre-filter, abstraction of
    /// reads/applications by fresh variables, simplex with lazy functionality
    /// enforcement.
    fn solve_base(&self, atoms: &[Atom], budget: &Cell<usize>) -> SmtResult<Option<Model>> {
        // Congruence pre-filter on the equality atoms.
        let mut cc = CongruenceClosure::new();
        for a in atoms {
            if a.op == RelOp::Eq {
                cc.assert_eq(&a.lhs, &a.rhs);
            }
        }
        if !cc.is_consistent() {
            return Ok(None);
        }

        // Abstract array reads and uninterpreted applications.
        let mut instances: Vec<Instance> = Vec::new();
        let mut abstracted: Vec<Atom> = Vec::new();
        for a in atoms {
            let lhs = abstract_term(&a.lhs, &mut instances);
            let rhs = abstract_term(&a.rhs, &mut instances);
            abstracted.push(Atom::new(lhs, a.op, rhs));
        }

        // Convert to linear constraints (dropping pure array equalities that
        // carry no read — they cannot influence the integer variables).
        let mut constraints: Vec<LinConstraint<VarRef>> = Vec::new();
        for a in &abstracted {
            match LinConstraint::from_atom(a) {
                Ok(c) => constraints.push(c.tighten_for_integers()?),
                Err(SmtError::SortMismatch { .. }) if is_pure_array_atom(a) => {}
                Err(e) => return Err(e),
            }
        }
        // One tableau for the whole functionality search: the base
        // constraints are its shared prefix, and every branch of the lazy
        // functionality enforcement pushes its extra constraints, re-checks
        // warm from the prefix's feasible assignment, and pops — instead of
        // rebuilding (and cold-resolving) the tableau per branch.
        let mut tab: IncrementalSimplex<VarRef> = IncrementalSimplex::new();
        for c in &constraints {
            tab.push_constraint(c)?;
        }
        self.solve_with_functionality(&mut tab, &instances, budget, true)
    }

    fn solve_with_functionality(
        &self,
        tab: &mut IncrementalSimplex<VarRef>,
        instances: &[Instance],
        budget: &Cell<usize>,
        fresh: bool,
    ) -> SmtResult<Option<Model>> {
        crate::cancel::check_ambient()?;
        if budget.get() == 0 {
            return Err(SmtError::Budget {
                message: "case-split budget exhausted while enforcing functionality".into(),
            });
        }
        budget.set(budget.get() - 1);
        let sat = if fresh { tab.check_fresh()? } else { tab.check()? };
        if !sat {
            return Ok(None);
        }
        let model = tab.model()?;
        let lookup = |v: &VarRef| model.get(v).copied().unwrap_or(Rat::ZERO);
        // Find a violated functionality axiom.
        for i in 0..instances.len() {
            for j in i + 1..instances.len() {
                let (a, b) = (&instances[i], &instances[j]);
                if a.fun != b.fun || a.args.len() != b.args.len() {
                    continue;
                }
                let args_equal = a
                    .args
                    .iter()
                    .zip(b.args.iter())
                    .map(|(x, y)| {
                        Ok::<bool, SmtError>(
                            LinExpr::from_term(x)?.eval(&lookup)?
                                == LinExpr::from_term(y)?.eval(&lookup)?,
                        )
                    })
                    .collect::<SmtResult<Vec<bool>>>()?
                    .into_iter()
                    .all(|b| b);
                if !args_equal {
                    continue;
                }
                if lookup(&a.result) == lookup(&b.result) {
                    continue;
                }
                // Violation: f(args) must be equal when the arguments are.
                // Case A: force the arguments and results equal.
                {
                    let cp = tab.checkpoint();
                    for (x, y) in a.args.iter().zip(b.args.iter()) {
                        tab.push_constraint(&LinConstraint::eq(
                            LinExpr::from_term(x)?,
                            LinExpr::from_term(y)?,
                        )?)?;
                    }
                    tab.push_constraint(&LinConstraint::eq(
                        LinExpr::var(a.result),
                        LinExpr::var(b.result),
                    )?)?;
                    let found = self.solve_with_functionality(tab, instances, budget, false)?;
                    tab.pop_to(cp)?;
                    if let Some(m) = found {
                        return Ok(Some(m));
                    }
                }
                // Case B: some argument differs (strictly, in either
                // direction).
                for (x, y) in a.args.iter().zip(b.args.iter()) {
                    let ex = LinExpr::from_term(x)?;
                    let ey = LinExpr::from_term(y)?;
                    for flip in [false, true] {
                        let diff = if flip { ey.sub(&ex)? } else { ex.sub(&ey)? };
                        let cp = tab.checkpoint();
                        tab.push_constraint(
                            &LinConstraint::new(diff, crate::linexpr::ConstrOp::Lt)
                                .tighten_for_integers()?,
                        )?;
                        let found = self.solve_with_functionality(tab, instances, budget, false)?;
                        tab.pop_to(cp)?;
                        if let Some(m) = found {
                            return Ok(Some(m));
                        }
                    }
                }
                return Ok(None);
            }
        }
        Ok(Some(Model { values: model }))
    }
}

/// DPLL-style search over the boolean skeleton of one query.
///
/// The state of one search node is the *cube prefix* (the atoms decided so
/// far), the not-yet-branched disjunctions, and the universals collected on
/// this branch.  The search alternates unit propagation (flattening
/// conjunctions, resolving disjuncts against decided atoms, promoting unit
/// disjunctions) with case splits on the smallest remaining disjunction.
/// Before every split the prefix is checked for theory consistency; an
/// inconsistent prefix prunes the whole subtree — the conflict-driven
/// replacement for enumerating (and separately refuting) every DNF cube
/// that extends it.
///
/// Theory verdicts are memoized under the hash-consed id of the canonical
/// (sorted, deduplicated) decided-atom set, so sibling branches that decide
/// the same atoms in a different order, and the final check of a cube whose
/// prefix was already checked, replay the verdict without touching the
/// simplex.  The memo lives for one [`Solver::check`] call; cross-query
/// reuse is the [`SolverContext`](crate::SolverContext) cache's job.
#[derive(Default)]
struct CubeSearch {
    /// Canonical decided-atom set id → satisfiability (with witness).
    verdicts: HashMap<SeqId, Option<Model>>,
}

impl CubeSearch {
    /// Searches for a theory-consistent cube of the pending formulas.
    ///
    /// `decided` is the inherited cube prefix, `universals` the quantified
    /// conjuncts collected so far, and `instantiated` marks the inner layer
    /// (after universal instantiation), where further quantifiers are
    /// outside the supported fragment.
    fn dpll(
        &mut self,
        solver: &Solver,
        mut pending: VecDeque<Formula>,
        mut decided: Vec<Atom>,
        mut universals: Vec<(Vec<Symbol>, Formula)>,
        instantiated: bool,
        budget: &Cell<usize>,
    ) -> SmtResult<Option<Model>> {
        let mut disjunctions: Vec<Vec<Formula>> = Vec::new();
        // Unit propagation to fixpoint.
        loop {
            while let Some(f) = pending.pop_front() {
                match f {
                    Formula::True => {}
                    Formula::False => return Ok(None),
                    Formula::Atom(a) => decided.push(a),
                    Formula::And(parts) => {
                        for (i, p) in parts.into_iter().enumerate() {
                            pending.insert(i, p);
                        }
                    }
                    Formula::Or(parts) => disjunctions.push(parts),
                    Formula::Forall(vars, body) => {
                        if instantiated {
                            return Err(SmtError::unsupported(format!(
                                "nested quantifier after instantiation: forall {vars:?}. {body}"
                            )));
                        }
                        universals.push((vars, *body));
                    }
                    other => {
                        return Err(SmtError::unsupported(format!(
                            "unexpected connective shape after NNF: {other}"
                        )))
                    }
                }
            }
            // Resolve every disjunction against the decided atoms:
            // syntactically satisfied disjunctions are dropped, refuted
            // disjuncts removed, unit disjunctions promoted to the prefix.
            let decided_set: HashSet<&Atom> = decided.iter().collect();
            let mut promoted = false;
            let mut kept: Vec<Vec<Formula>> = Vec::new();
            'ors: for parts in disjunctions.drain(..) {
                let mut remaining: Vec<Formula> = Vec::with_capacity(parts.len());
                for p in parts {
                    match &p {
                        Formula::True => continue 'ors,
                        Formula::False => {}
                        Formula::Atom(a) => {
                            if decided_set.contains(a) {
                                continue 'ors;
                            }
                            if !decided_set.contains(&a.negated()) {
                                remaining.push(p);
                            }
                        }
                        _ => remaining.push(p),
                    }
                }
                match remaining.len() {
                    0 => return Ok(None), // every disjunct refuted
                    1 => {
                        pending.push_back(remaining.pop().expect("len checked"));
                        promoted = true;
                    }
                    _ => kept.push(remaining),
                }
            }
            disjunctions = kept;
            if !promoted && pending.is_empty() {
                break;
            }
        }
        // Case split on the smallest remaining disjunction — after pruning
        // the branch if the prefix is already theory-inconsistent.
        if !disjunctions.is_empty() {
            if self.theory_check(solver, &decided, budget)?.is_none() {
                return Ok(None);
            }
            let pick = disjunctions
                .iter()
                .enumerate()
                .min_by_key(|(i, d)| (d.len(), *i))
                .map(|(i, _)| i)
                .expect("nonempty");
            let branches = disjunctions.remove(pick);
            let rest: Vec<Formula> = disjunctions.into_iter().map(Formula::Or).collect();
            for branch in branches {
                let mut pending = VecDeque::with_capacity(rest.len() + 1);
                pending.push_back(branch);
                pending.extend(rest.iter().cloned());
                if let Some(m) = self.dpll(
                    solver,
                    pending,
                    decided.clone(),
                    universals.clone(),
                    instantiated,
                    budget,
                )? {
                    return Ok(Some(m));
                }
            }
            return Ok(None);
        }
        // Complete cube.  Instantiate the universals at every array-index
        // term of the ground atoms (the hierarchic reduction of §4.2) and
        // search the instantiated layer; with no candidate index a universal
        // constrains no read in this query and dropping it is sound for
        // unsatisfiability detection (it only weakens the antecedent).
        if !universals.is_empty() {
            let candidates = index_candidates(&decided);
            if !candidates.is_empty() {
                let mut inst_pending = VecDeque::new();
                for (vars, body) in &universals {
                    for combo in cartesian(&candidates, vars.len()) {
                        let mut inst = body.clone();
                        for (v, t) in vars.iter().zip(combo.iter()) {
                            inst = inst.map_terms(&|term| term.subst_bound(*v, t));
                        }
                        inst_pending.push_back(inst.nnf());
                    }
                }
                return self.dpll(solver, inst_pending, decided, Vec::new(), true, budget);
            }
        }
        self.theory_check(solver, &decided, budget)
    }

    /// Decides the conjunction of `decided` in the theory, memoized under
    /// the canonical hash-consed id of the atom set.
    fn theory_check(
        &mut self,
        solver: &Solver,
        decided: &[Atom],
        budget: &Cell<usize>,
    ) -> SmtResult<Option<Model>> {
        let mut ids: Vec<u32> =
            decided.iter().map(|a| FormulaId::intern(&Formula::Atom(a.clone())).raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        let key = SeqId::intern(&ids);
        if let Some(cached) = self.verdicts.get(&key) {
            return Ok(cached.clone());
        }
        let result = solver.solve_atoms(decided.to_vec(), budget)?;
        self.verdicts.insert(key, result.clone());
        Ok(result)
    }
}

/// Rejects formulas with universal quantifiers in negative positions; the
/// library never produces them.
fn check_no_negated_quantifier(f: &Formula, positive: bool) -> SmtResult<()> {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => Ok(()),
        Formula::Not(inner) => check_no_negated_quantifier(inner, !positive),
        Formula::And(parts) | Formula::Or(parts) => {
            for p in parts {
                check_no_negated_quantifier(p, positive)?;
            }
            Ok(())
        }
        Formula::Implies(a, b) => {
            check_no_negated_quantifier(a, !positive)?;
            check_no_negated_quantifier(b, positive)
        }
        Formula::Forall(_, body) => {
            if !positive {
                return Err(SmtError::unsupported("universal quantifier in a negative position"));
            }
            check_no_negated_quantifier(body, positive)
        }
    }
}

/// Collects candidate instantiation terms: every index of an array read in
/// the ground atoms.
fn index_candidates(atoms: &[Atom]) -> Vec<Term> {
    let mut out: Vec<Term> = Vec::new();
    let mut push = |t: &Term| {
        if !out.contains(t) {
            out.push(t.clone());
        }
    };
    for a in atoms {
        for side in [&a.lhs, &a.rhs] {
            side.for_each(&mut |t| {
                if let Term::Select(_, idx) = t {
                    push(idx);
                }
                if let Term::Store(_, idx, _) = t {
                    push(idx);
                }
            });
        }
    }
    out
}

/// All tuples of length `n` over `items`.
fn cartesian(items: &[Term], n: usize) -> Vec<Vec<Term>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for prefix in cartesian(items, n - 1) {
        for item in items {
            let mut v = prefix.clone();
            v.push(item.clone());
            out.push(v);
        }
    }
    out
}

/// A store definition `array_var = store(base, idx, val)`.
#[derive(Clone, Debug)]
struct StoreDef {
    var: VarRef,
    base: Term,
    idx: Term,
    val: Term,
}

fn defs_as_atoms(defs: &[StoreDef]) -> Vec<Atom> {
    defs.iter()
        .map(|d| {
            Atom::new(
                Term::Var(d.var),
                RelOp::Eq,
                d.base.clone().store(d.idx.clone(), d.val.clone()),
            )
        })
        .collect()
}

/// Separates store definitions from the remaining atoms and applies array
/// alias equalities (`a' = a`) by substitution.
fn normalise_arrays(atoms: Vec<Atom>) -> SmtResult<(Vec<Atom>, Vec<StoreDef>)> {
    // Determine which variables are array-like: they appear as the array
    // operand of a select/store or are equated to a store.
    let mut array_vars: BTreeSet<VarRef> = BTreeSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for a in &atoms {
            for side in [&a.lhs, &a.rhs] {
                side.for_each(&mut |t| match t {
                    Term::Select(arr, _) | Term::Store(arr, _, _) => {
                        if let Term::Var(v) = arr.as_ref() {
                            if array_vars.insert(*v) {
                                changed = true;
                            }
                        }
                    }
                    _ => {}
                });
            }
            // Alias propagation through equalities with a known array var.
            if a.op == RelOp::Eq {
                if let (Term::Var(x), Term::Var(y)) = (&a.lhs, &a.rhs) {
                    if array_vars.contains(x) && array_vars.insert(*y) {
                        changed = true;
                    }
                    if array_vars.contains(y) && array_vars.insert(*x) {
                        changed = true;
                    }
                }
                if matches!(a.rhs, Term::Store(..)) {
                    if let Term::Var(v) = &a.lhs {
                        if array_vars.insert(*v) {
                            changed = true;
                        }
                    }
                }
                if matches!(a.lhs, Term::Store(..)) {
                    if let Term::Var(v) = &a.rhs {
                        if array_vars.insert(*v) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    let mut work = atoms;
    let mut defs: Vec<StoreDef> = Vec::new();
    loop {
        // Apply one alias equality between array variables.
        let alias = work.iter().position(|a| {
            a.op == RelOp::Eq
                && matches!((&a.lhs, &a.rhs), (Term::Var(x), Term::Var(y))
                    if array_vars.contains(x) && array_vars.contains(y) && x != y)
        });
        if let Some(pos) = alias {
            let atom = work.remove(pos);
            let (from, to) = match (&atom.lhs, &atom.rhs) {
                (Term::Var(x), Term::Var(y)) => (*x, Term::Var(*y)),
                _ => unreachable!("alias position checked"),
            };
            work = work.into_iter().map(|a| a.map_terms(&|t| t.subst_var(from, &to))).collect();
            defs = defs
                .into_iter()
                .map(|d| StoreDef {
                    var: d.var,
                    base: d.base.subst_var(from, &to),
                    idx: d.idx.subst_var(from, &to),
                    val: d.val.subst_var(from, &to),
                })
                .collect();
            continue;
        }
        // Extract one store definition.
        let def_pos = work.iter().position(|a| {
            a.op == RelOp::Eq
                && (matches!((&a.lhs, &a.rhs), (Term::Var(_), Term::Store(..)))
                    || matches!((&a.lhs, &a.rhs), (Term::Store(..), Term::Var(_))))
        });
        if let Some(pos) = def_pos {
            let atom = work.remove(pos);
            let (var, store) = match (&atom.lhs, &atom.rhs) {
                (Term::Var(v), s @ Term::Store(..)) => (*v, s.clone()),
                (s @ Term::Store(..), Term::Var(v)) => (*v, s.clone()),
                _ => unreachable!("definition position checked"),
            };
            let Term::Store(base, idx, val) = store else { unreachable!() };
            defs.push(StoreDef { var, base: *base, idx: *idx, val: *val });
            continue;
        }
        break;
    }
    Ok((work, defs))
}

/// Finds a `select` whose array operand is (or is defined as) a store,
/// returning `(the select term, base array, written index, written value)`.
fn find_read_over_write(atoms: &[Atom], defs: &[StoreDef]) -> Option<(Term, Term, Term, Term)> {
    let mut found: Option<(Term, Term, Term, Term)> = None;
    for a in atoms {
        for side in [&a.lhs, &a.rhs] {
            side.for_each(&mut |t| {
                if found.is_some() {
                    return;
                }
                if let Term::Select(arr, _idx) = t {
                    match arr.as_ref() {
                        Term::Store(base, widx, wval) => {
                            found = Some((
                                t.clone(),
                                (**base).clone(),
                                (**widx).clone(),
                                (**wval).clone(),
                            ));
                        }
                        Term::Var(v) => {
                            if let Some(d) = defs.iter().find(|d| d.var == *v) {
                                found =
                                    Some((t.clone(), d.base.clone(), d.idx.clone(), d.val.clone()));
                            }
                        }
                        _ => {}
                    }
                }
            });
        }
        if found.is_some() {
            break;
        }
    }
    found
}

/// Replaces every occurrence of `target` (an exact subterm) by `replacement`.
fn replace_subterm(t: &Term, target: &Term, replacement: &Term) -> Term {
    if t == target {
        return replacement.clone();
    }
    match t {
        Term::Const(_) | Term::Var(_) | Term::Bound(_) => t.clone(),
        Term::Add(a, b) => Term::Add(
            Box::new(replace_subterm(a, target, replacement)),
            Box::new(replace_subterm(b, target, replacement)),
        ),
        Term::Sub(a, b) => Term::Sub(
            Box::new(replace_subterm(a, target, replacement)),
            Box::new(replace_subterm(b, target, replacement)),
        ),
        Term::Neg(a) => Term::Neg(Box::new(replace_subterm(a, target, replacement))),
        Term::Mul(a, b) => Term::Mul(
            Box::new(replace_subterm(a, target, replacement)),
            Box::new(replace_subterm(b, target, replacement)),
        ),
        Term::Select(a, b) => Term::Select(
            Box::new(replace_subterm(a, target, replacement)),
            Box::new(replace_subterm(b, target, replacement)),
        ),
        Term::Store(a, b, c) => Term::Store(
            Box::new(replace_subterm(a, target, replacement)),
            Box::new(replace_subterm(b, target, replacement)),
            Box::new(replace_subterm(c, target, replacement)),
        ),
        Term::App(f, args) => {
            Term::App(*f, args.iter().map(|a| replace_subterm(a, target, replacement)).collect())
        }
    }
}

/// Replaces array reads and uninterpreted applications by fresh variables,
/// bottom-up, recording the instances for functionality enforcement.
fn abstract_term(t: &Term, instances: &mut Vec<Instance>) -> Term {
    match t {
        Term::Const(_) | Term::Var(_) | Term::Bound(_) => t.clone(),
        Term::Add(a, b) => {
            Term::Add(Box::new(abstract_term(a, instances)), Box::new(abstract_term(b, instances)))
        }
        Term::Sub(a, b) => {
            Term::Sub(Box::new(abstract_term(a, instances)), Box::new(abstract_term(b, instances)))
        }
        Term::Neg(a) => Term::Neg(Box::new(abstract_term(a, instances))),
        Term::Mul(a, b) => {
            Term::Mul(Box::new(abstract_term(a, instances)), Box::new(abstract_term(b, instances)))
        }
        Term::Select(arr, idx) => {
            let idx = abstract_term(idx, instances);
            let fun = format!("read:{arr}");
            instance_var(fun, vec![idx], instances)
        }
        Term::App(f, args) => {
            let args: Vec<Term> = args.iter().map(|a| abstract_term(a, instances)).collect();
            let fun = format!("app:{f}");
            instance_var(fun, args, instances)
        }
        Term::Store(a, b, c) => Term::Store(
            Box::new(abstract_term(a, instances)),
            Box::new(abstract_term(b, instances)),
            Box::new(abstract_term(c, instances)),
        ),
    }
}

fn instance_var(fun: String, args: Vec<Term>, instances: &mut Vec<Instance>) -> Term {
    if let Some(existing) = instances.iter().find(|i| i.fun == fun && i.args == args) {
        return Term::Var(existing.result);
    }
    let fresh = VarRef::cur(Symbol::fresh("rd"));
    instances.push(Instance { fun, args, result: fresh });
    Term::Var(fresh)
}

/// Returns `true` if an atom relates two array-sorted terms without reading
/// from them (after abstraction such atoms carry no arithmetic content).
fn is_pure_array_atom(a: &Atom) -> bool {
    fn arrayish(t: &Term) -> bool {
        matches!(t, Term::Var(_) | Term::Store(..))
    }
    a.op == RelOp::Eq && arrayish(&a.lhs) && arrayish(&a.rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_ir::Formula as F;

    fn solver() -> Solver {
        Solver::new()
    }

    #[test]
    fn pure_arithmetic_sat_and_unsat() {
        let s = solver();
        let x = Term::var("x");
        let sat = F::and(vec![F::ge(x.clone(), Term::int(0)), F::le(x.clone(), Term::int(5))]);
        assert!(s.is_sat(&sat).unwrap());
        let unsat = F::and(vec![F::gt(x.clone(), Term::int(5)), F::lt(x, Term::int(5))]);
        assert!(!s.is_sat(&unsat).unwrap());
    }

    #[test]
    fn integer_tightening_applies() {
        let s = solver();
        // 0 < x < 1 has no integer solution (but has rational ones).
        let x = Term::var("x");
        let f = F::and(vec![F::gt(x.clone(), Term::int(0)), F::lt(x, Term::int(1))]);
        assert!(!s.is_sat(&f).unwrap());
    }

    #[test]
    fn disjunction_and_negation() {
        let s = solver();
        let x = Term::var("x");
        let f = F::or(vec![F::lt(x.clone(), Term::int(0)), F::gt(x.clone(), Term::int(10))]);
        assert!(s.is_sat(&f).unwrap());
        let g = F::and(vec![f, F::ge(x.clone(), Term::int(0)), F::le(x, Term::int(10))]);
        assert!(!s.is_sat(&g).unwrap());
    }

    #[test]
    fn disequality_split() {
        let s = solver();
        let x = Term::var("x");
        let f = F::and(vec![
            F::ne(x.clone(), Term::int(3)),
            F::ge(x.clone(), Term::int(3)),
            F::le(x.clone(), Term::int(3)),
        ]);
        assert!(!s.is_sat(&f).unwrap());
        let g = F::and(vec![F::ne(x.clone(), Term::int(3)), F::ge(x, Term::int(3))]);
        assert!(s.is_sat(&g).unwrap());
    }

    #[test]
    fn read_over_write_same_index() {
        let s = solver();
        // a' = store(a, i, 0) && a'[i] != 0  is unsat.
        let a = Term::var("a");
        let ap = Term::pvar("a");
        let i = Term::var("i");
        let f = F::and(vec![
            F::eq(ap.clone(), a.clone().store(i.clone(), Term::int(0))),
            F::ne(ap.select(i), Term::int(0)),
        ]);
        assert!(!s.is_sat(&f).unwrap());
    }

    #[test]
    fn read_over_write_different_index() {
        let s = solver();
        // a' = store(a, i, 0) && j != i && a'[j] != a[j]  is unsat.
        let a = Term::var("a");
        let ap = Term::pvar("a");
        let i = Term::var("i");
        let j = Term::var("j");
        let f = F::and(vec![
            F::eq(ap.clone(), a.clone().store(i.clone(), Term::int(0))),
            F::ne(j.clone(), i.clone()),
            F::ne(ap.select(j.clone()), a.select(j)),
        ]);
        assert!(!s.is_sat(&f).unwrap());
        // Without the j != i assumption it is satisfiable (j may alias i).
        let a = Term::var("a");
        let ap = Term::pvar("a");
        let g = F::and(vec![
            F::eq(ap.clone(), a.clone().store(i.clone(), Term::int(0))),
            F::ne(ap.select(Term::var("j")), a.select(Term::var("j"))),
        ]);
        assert!(s.is_sat(&g).unwrap());
    }

    #[test]
    fn functionality_of_reads() {
        let s = solver();
        // i = j && a[i] != a[j] is unsat.
        let a = Term::var("a");
        let f = F::and(vec![
            F::eq(Term::var("i"), Term::var("j")),
            F::ne(a.clone().select(Term::var("i")), a.clone().select(Term::var("j"))),
        ]);
        assert!(!s.is_sat(&f).unwrap());
        // Different indices may hold different values.
        let g = F::ne(a.clone().select(Term::var("i")), a.select(Term::var("j")));
        assert!(s.is_sat(&g).unwrap());
    }

    #[test]
    fn uninterpreted_function_congruence() {
        let s = solver();
        let f = F::and(vec![
            F::eq(Term::var("x"), Term::var("y")),
            F::ne(Term::app("f", vec![Term::var("x")]), Term::app("f", vec![Term::var("y")])),
        ]);
        assert!(!s.is_sat(&f).unwrap());
    }

    #[test]
    fn frame_condition_aliasing() {
        let s = solver();
        // a' = a && a[i] = 1 && a'[i] = 0 is unsat (the alias must be applied).
        let f = F::and(vec![
            F::eq(Term::pvar("a"), Term::var("a")),
            F::eq(Term::var("a").select(Term::var("i")), Term::int(1)),
            F::eq(Term::pvar("a").select(Term::var("i")), Term::int(0)),
        ]);
        assert!(!s.is_sat(&f).unwrap());
    }

    #[test]
    fn initcheck_counterexample_path_formula_is_infeasible() {
        // SSA encoding of the Figure 2(b) counterexample (one iteration of
        // each loop): the first loop writes a[0] := 0, the second loop reads
        // a[0] and the error transition claims a[0] != 0.
        let s = solver();
        let f = F::and(vec![
            F::eq(Term::ivar("i", 1), Term::int(0)),
            F::lt(Term::ivar("i", 1), Term::ivar("n", 0)),
            F::eq(Term::ivar("a", 1), Term::ivar("a", 0).store(Term::ivar("i", 1), Term::int(0))),
            F::eq(Term::ivar("i", 2), Term::ivar("i", 1).add(Term::int(1))),
            F::ge(Term::ivar("i", 2), Term::ivar("n", 0)),
            F::eq(Term::ivar("i", 3), Term::int(0)),
            F::lt(Term::ivar("i", 3), Term::ivar("n", 0)),
            F::ne(Term::ivar("a", 1).select(Term::ivar("i", 3)), Term::int(0)),
        ]);
        assert!(!s.is_sat(&f).unwrap(), "Figure 2(b) counterexample must be spurious");
    }

    #[test]
    fn universally_quantified_antecedent_is_instantiated() {
        let s = solver();
        let k = Symbol::intern("k");
        // forall k: 0 <= k && k <= n-1 -> a[k] = 0,  0 <= j <= n-1,  a[j] != 0
        // must be unsatisfiable.
        let inv = F::forall(
            vec![k],
            F::and(vec![
                F::le(Term::int(0), Term::Bound(k)),
                F::le(Term::Bound(k), Term::var("n").sub(Term::int(1))),
            ])
            .implies(F::eq(Term::var("a").select(Term::Bound(k)), Term::int(0))),
        );
        let f = F::and(vec![
            inv.clone(),
            F::ge(Term::var("j"), Term::int(0)),
            F::le(Term::var("j"), Term::var("n").sub(Term::int(1))),
            F::ne(Term::var("a").select(Term::var("j")), Term::int(0)),
        ]);
        assert!(!s.is_sat(&f).unwrap());
        // Outside the initialised range the read is unconstrained.
        let g = F::and(vec![
            inv,
            F::gt(Term::var("j"), Term::var("n")),
            F::ne(Term::var("a").select(Term::var("j")), Term::int(0)),
        ]);
        assert!(s.is_sat(&g).unwrap());
    }

    #[test]
    fn entailment_with_quantified_consequent() {
        let s = solver();
        let k = Symbol::intern("k");
        // a[k] = 0 for 0 <= k < i  and  i <= 0  entails  a[k] = 0 for 0 <= k < i
        // trivially; more interestingly, 0 <= k < 0 is empty so anything holds.
        let empty_range = F::and(vec![F::eq(Term::var("i"), Term::int(0))]);
        let goal = F::forall(
            vec![k],
            F::and(vec![
                F::le(Term::int(0), Term::Bound(k)),
                F::lt(Term::Bound(k), Term::var("i")),
            ])
            .implies(F::eq(Term::var("a").select(Term::Bound(k)), Term::int(7))),
        );
        assert!(s.entails(&empty_range, &goal).unwrap());
        // With i = 1 the range contains k = 0, and nothing constrains a[0].
        let nonempty = F::eq(Term::var("i"), Term::int(1));
        assert!(!s.entails(&nonempty, &goal).unwrap());
    }

    #[test]
    fn entailment_of_conjunction_splits() {
        let s = solver();
        let x = Term::var("x");
        let ante = F::eq(x.clone(), Term::int(5));
        let cons = F::and(vec![F::ge(x.clone(), Term::int(0)), F::le(x, Term::int(10))]);
        assert!(s.entails(&ante, &cons).unwrap());
    }

    #[test]
    fn model_is_returned_for_original_variables_only() {
        let s = solver();
        let f = F::and(vec![
            F::eq(Term::var("x"), Term::int(2)),
            F::eq(Term::var("a").select(Term::var("x")), Term::int(9)),
        ]);
        match s.check(&f).unwrap() {
            SatResult::Sat(m) => {
                assert_eq!(m.value(VarRef::cur(Symbol::intern("x"))), Some(Rat::int(2)));
                assert!(m.values.keys().all(|v| !v.sym.as_str().contains('!')));
            }
            SatResult::Unsat => panic!("satisfiable"),
        }
    }

    #[test]
    fn relaxation_skips_nonlinear_atoms_instead_of_erroring() {
        // The strict path refutes this cube through the congruence
        // pre-filter / the equality contradiction without ever converting
        // the non-linear atom; the relaxation guard (triggered by the two
        // disequalities) must not turn that into a NonLinear error.
        let s = solver();
        let f = F::and(vec![
            F::eq(Term::var("x"), Term::int(1)),
            F::eq(Term::var("x"), Term::int(2)),
            F::le(Term::var("y").mul(Term::var("z")), Term::int(5)),
            F::ne(Term::var("u"), Term::var("v")),
            F::ne(Term::var("w"), Term::var("t")),
        ]);
        assert!(!s.is_sat(&f).unwrap(), "decidably unsat despite the non-linear atom");
    }

    #[test]
    fn budget_is_enforced() {
        let s = Solver::with_budget(1);
        // Needs more than one branch because of the disequalities.
        let f = F::and(vec![
            F::ne(Term::var("x"), Term::int(0)),
            F::ne(Term::var("y"), Term::int(0)),
            F::ne(Term::var("z"), Term::int(0)),
        ]);
        match s.check(&f) {
            Err(SmtError::Budget { .. }) => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn negated_quantifier_is_rejected() {
        let s = solver();
        let k = Symbol::intern("k");
        let f = Formula::Not(Box::new(F::forall(
            vec![k],
            F::eq(Term::var("a").select(Term::Bound(k)), Term::int(0)),
        )));
        assert!(matches!(s.check(&f), Err(SmtError::Unsupported { .. })));
    }

    #[test]
    fn store_chain_through_ssa_versions() {
        let s = solver();
        // a1 = store(a0, 0, 1); a2 = store(a1, 1, 2); a2[0] = 1 && a2[1] = 2 sat;
        // asserting a2[0] = 5 is unsat.
        let base = F::and(vec![
            F::eq(Term::ivar("a", 1), Term::ivar("a", 0).store(Term::int(0), Term::int(1))),
            F::eq(Term::ivar("a", 2), Term::ivar("a", 1).store(Term::int(1), Term::int(2))),
        ]);
        let good = F::and(vec![
            base.clone(),
            F::eq(Term::ivar("a", 2).select(Term::int(0)), Term::int(1)),
            F::eq(Term::ivar("a", 2).select(Term::int(1)), Term::int(2)),
        ]);
        assert!(s.is_sat(&good).unwrap());
        let bad = F::and(vec![base, F::eq(Term::ivar("a", 2).select(Term::int(0)), Term::int(5))]);
        assert!(!s.is_sat(&bad).unwrap());
    }

    #[test]
    fn integral_check_refutes_fractional_only_models() {
        let s = solver();
        // x + x = 1 is rationally satisfiable (x = 1/2) but has no integer
        // solution; the plain check must say sat and the integral check unsat.
        let f = F::eq(Term::var("x").add(Term::var("x")), Term::int(1));
        assert!(s.is_sat(&f).unwrap());
        assert_eq!(s.check_integral(&f, 64).unwrap(), IntSatResult::Unsat);
    }

    #[test]
    fn integral_check_finds_integer_models() {
        let s = solver();
        // 2x + 3y = 7 with 0 <= x, y <= 5 has integer solutions (x=2, y=1).
        let f = F::and(vec![
            F::eq(
                Term::int(2).mul(Term::var("x")).add(Term::int(3).mul(Term::var("y"))),
                Term::int(7),
            ),
            F::ge(Term::var("x"), Term::int(0)),
            F::ge(Term::var("y"), Term::int(0)),
            F::le(Term::var("x"), Term::int(5)),
            F::le(Term::var("y"), Term::int(5)),
        ]);
        let IntSatResult::Sat(m) = s.check_integral(&f, 64).unwrap() else {
            panic!("expected an integral model");
        };
        for r in m.values.values() {
            assert!(r.is_integer(), "model must be integral, got {m}");
        }
        let x = m.value(VarRef::cur(Symbol::intern("x"))).unwrap().as_integer().unwrap();
        let y = m.value(VarRef::cur(Symbol::intern("y"))).unwrap().as_integer().unwrap();
        assert_eq!(2 * x + 3 * y, 7);
    }

    #[test]
    fn integral_check_reports_unknown_on_exhausted_budget() {
        let s = solver();
        let f = F::eq(Term::var("x").add(Term::var("x")), Term::int(1));
        assert_eq!(s.check_integral(&f, 0).unwrap(), IntSatResult::Unknown);
    }
}
