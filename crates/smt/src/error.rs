//! Error types for the decision-procedure substrate.

use std::fmt;

/// Errors produced by the solvers in this crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmtError {
    /// A term that is not linear in the problem variables was given to a
    /// linear-arithmetic component.
    NonLinear {
        /// Rendering of the offending term.
        term: String,
    },
    /// A term of the wrong sort was encountered (e.g. an array used where an
    /// integer is required).
    SortMismatch {
        /// Human-readable description.
        message: String,
    },
    /// An arithmetic overflow occurred in exact rational arithmetic.  The
    /// solvers use 128-bit rationals; problem instances produced by this
    /// library stay far below that, so an overflow indicates a malformed
    /// input rather than a resource limit.
    Overflow,
    /// A formula was outside the supported fragment (e.g. a quantifier given
    /// to the quantifier-free solver).
    Unsupported {
        /// Human-readable description.
        message: String,
    },
    /// A resource limit (case-split budget) was exhausted.
    Budget {
        /// Human-readable description.
        message: String,
    },
    /// The computation was cancelled cooperatively (see [`crate::cancel`]).
    /// This is not a solver failure: a racing harness asked the run to stop
    /// because another engine already produced a conclusive verdict.  It is
    /// deliberately distinct from [`SmtError::Budget`] so engines can report
    /// an honest "cancelled" outcome instead of a misleading
    /// resource-exhaustion reason.
    Cancelled,
}

impl SmtError {
    /// Convenience constructor for [`SmtError::Unsupported`].
    pub fn unsupported(message: impl Into<String>) -> SmtError {
        SmtError::Unsupported { message: message.into() }
    }

    /// Convenience constructor for [`SmtError::SortMismatch`].
    pub fn sort_mismatch(message: impl Into<String>) -> SmtError {
        SmtError::SortMismatch { message: message.into() }
    }
}

impl fmt::Display for SmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtError::NonLinear { term } => write!(f, "term is not linear: {term}"),
            SmtError::SortMismatch { message } => write!(f, "sort mismatch: {message}"),
            SmtError::Overflow => write!(f, "rational arithmetic overflow"),
            SmtError::Unsupported { message } => write!(f, "unsupported input: {message}"),
            SmtError::Budget { message } => write!(f, "resource budget exhausted: {message}"),
            SmtError::Cancelled => write!(f, "computation cancelled by the racing harness"),
        }
    }
}

impl std::error::Error for SmtError {}

/// Result alias used throughout the crate.
pub type SmtResult<T> = Result<T, SmtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SmtError::NonLinear { term: "x * y".into() }.to_string().contains("x * y"));
        assert!(SmtError::unsupported("quantifier").to_string().contains("quantifier"));
        assert_eq!(SmtError::Overflow.to_string(), "rational arithmetic overflow");
        assert!(SmtError::Cancelled.to_string().contains("cancelled"));
    }
}
