//! A general simplex solver for conjunctions of linear constraints over the
//! rationals, in the style of Dutertre and de Moura (SAT 2006).
//!
//! The solver decides feasibility of a set of [`LinConstraint`]s, returning
//! either a satisfying rational assignment or a *Farkas certificate*: a
//! non-negative combination of the constraints (equalities may take either
//! sign) that sums to a contradiction.  The certificate is the workhorse of
//! two other components: LRA interpolation ([`crate::interpolate`]) and the
//! encoding of invariant-template constraints ([Colón et al. 2003], used in
//! `pathinv-invgen`).
//!
//! Strict inequalities are handled symbolically with an infinitesimal `δ`
//! ([`DeltaRat`]), so the solver is exact.

use crate::error::{SmtError, SmtResult};
use crate::linexpr::{ConstrOp, LinConstraint, LinExpr};
use crate::rat::{DeltaRat, Rat};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// Outcome of a linear-programming feasibility query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpResult<K: Ord + Clone> {
    /// The constraints are satisfiable; a witness assignment is returned
    /// (variables not mentioned in any constraint are absent and may take any
    /// value).
    Sat(BTreeMap<K, Rat>),
    /// The constraints are unsatisfiable; a Farkas certificate is returned.
    Unsat(FarkasCertificate),
}

impl<K: Ord + Clone> LpResult<K> {
    /// Returns `true` for the satisfiable outcome.
    pub fn is_sat(&self) -> bool {
        matches!(self, LpResult::Sat(_))
    }

    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&BTreeMap<K, Rat>> {
        match self {
            LpResult::Sat(m) => Some(m),
            LpResult::Unsat(_) => None,
        }
    }

    /// Returns the certificate if unsatisfiable.
    pub fn certificate(&self) -> Option<&FarkasCertificate> {
        match self {
            LpResult::Sat(_) => None,
            LpResult::Unsat(c) => Some(c),
        }
    }
}

/// A Farkas certificate of infeasibility: one multiplier per input
/// constraint such that the weighted sum of the constraint expressions has a
/// zero variable part and a contradictory constant part.
///
/// Multipliers of `≤`/`<` constraints are non-negative; multipliers of `=`
/// constraints may have either sign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FarkasCertificate {
    /// One multiplier per input constraint, in input order.
    pub multipliers: Vec<Rat>,
}

impl FarkasCertificate {
    /// Checks that the certificate indeed proves infeasibility of the given
    /// constraints.
    ///
    /// The combination `Σ λ_k · e_k` must have a zero variable part, the
    /// multipliers of inequality constraints must be non-negative, and the
    /// resulting constant must be positive — or non-negative with a strict
    /// constraint carrying a positive multiplier.
    pub fn verify<K: Ord + Clone>(&self, constraints: &[LinConstraint<K>]) -> SmtResult<bool> {
        if self.multipliers.len() != constraints.len() {
            return Ok(false);
        }
        let mut sum: LinExpr<K> = LinExpr::zero();
        let mut strict_used = false;
        let mut any_nonzero = false;
        for (lambda, c) in self.multipliers.iter().zip(constraints) {
            if lambda.is_zero() {
                continue;
            }
            any_nonzero = true;
            match c.op {
                ConstrOp::Le => {
                    if lambda.is_negative() {
                        return Ok(false);
                    }
                }
                ConstrOp::Lt => {
                    if lambda.is_negative() {
                        return Ok(false);
                    }
                    strict_used = true;
                }
                ConstrOp::Eq => {}
            }
            sum = sum.add(&c.expr.scale(*lambda)?)?;
        }
        if !any_nonzero || !sum.is_constant() {
            return Ok(false);
        }
        let k = sum.constant_part();
        Ok(k.is_positive() || (!k.is_negative() && strict_used))
    }
}

/// Decides feasibility of a conjunction of linear constraints, building a
/// fresh tableau (a *cold* solve; counted in
/// [`SmtStats::simplex_calls`](crate::SmtStats)).
///
/// Incremental callers that extend an already-checked system should keep an
/// [`IncrementalSimplex`] instead: its warm re-checks start from the
/// feasible assignment of the shared constraint prefix rather than
/// rebuilding the tableau from scratch.
///
/// # Errors
///
/// Propagates arithmetic overflow errors from the exact rational arithmetic.
pub fn solve<K: Ord + Clone + Debug>(constraints: &[LinConstraint<K>]) -> SmtResult<LpResult<K>> {
    crate::stats::record_simplex_call();
    let mut tab = IncrementalSimplex::new();
    // Register every problem variable before the first constraint so the
    // column order (problem variables first, then slacks) — and therefore
    // the pivot sequence and the extracted model — matches a batch-built
    // tableau exactly.
    for c in constraints {
        for v in c.expr.vars() {
            tab.ensure_column(&v);
        }
    }
    for c in constraints {
        tab.push_constraint(c)?;
    }
    if tab.check_inner()? {
        Ok(LpResult::Sat(tab.extract_model()?))
    } else {
        Ok(LpResult::Unsat(tab.take_certificate()))
    }
}

/// Checks whether the conjunction of `constraints` entails `goal`
/// (a single constraint), by refuting `constraints ∧ ¬goal`.
///
/// Only `≤`, `<` and `=` goals are supported; `=` goals are checked as the
/// conjunction of the two inequalities.
pub fn entails<K: Ord + Clone + Debug>(
    constraints: &[LinConstraint<K>],
    goal: &LinConstraint<K>,
) -> SmtResult<bool> {
    let negations: Vec<LinConstraint<K>> = match goal.op {
        // ¬(e ≤ 0)  ≡  -e < 0
        ConstrOp::Le => {
            vec![LinConstraint::new(goal.expr.scale(Rat::MINUS_ONE)?, ConstrOp::Lt)]
        }
        // ¬(e < 0)  ≡  -e ≤ 0
        ConstrOp::Lt => {
            vec![LinConstraint::new(goal.expr.scale(Rat::MINUS_ONE)?, ConstrOp::Le)]
        }
        // ¬(e = 0)  ≡  e < 0 ∨ -e < 0 : check both cases.
        ConstrOp::Eq => {
            vec![
                LinConstraint::new(goal.expr.clone(), ConstrOp::Lt),
                LinConstraint::new(goal.expr.scale(Rat::MINUS_ONE)?, ConstrOp::Lt),
            ]
        }
    };
    for neg in negations {
        let mut cs = constraints.to_vec();
        cs.push(neg);
        if solve(&cs)?.is_sat() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// One active constraint of an [`IncrementalSimplex`]: its expression, its
/// operator, and the tableau column of its slack variable.
#[derive(Clone, Debug)]
struct ActiveConstraint<K: Ord + Clone> {
    expr: LinExpr<K>,
    op: ConstrOp,
    slack: usize,
}

/// An incremental simplex solver with constraint push/pop and warm-started
/// re-checks.
///
/// The tableau — column layout, basis, and the current assignment — is kept
/// across [`push_constraint`](IncrementalSimplex::push_constraint) /
/// [`pop_to`](IncrementalSimplex::pop_to) boundaries, so a
/// [`check`](IncrementalSimplex::check) after extending an already-feasible
/// system starts from the feasible assignment of the shared constraint
/// prefix and typically needs a handful of pivots, instead of rebuilding
/// and re-solving the whole tableau as the cold [`solve`] entry point does.
/// Warm re-checks are counted in
/// [`SmtStats::simplex_warm_checks`](crate::SmtStats), separately from the
/// cold tableau constructions in
/// [`SmtStats::simplex_calls`](crate::SmtStats).
///
/// Answers are identical to a cold solve of the active constraint set: the
/// arithmetic is exact, so only the number of pivots — never the verdict —
/// depends on the starting assignment.  (Witness models may differ between
/// warm and cold runs; both are exact witnesses.)  Farkas certificates are
/// available after a failed check via
/// [`take_certificate`](IncrementalSimplex::take_certificate).
#[derive(Clone, Debug)]
pub struct IncrementalSimplex<K: Ord + Clone> {
    /// Column of each problem variable.
    index: BTreeMap<K, usize>,
    /// Problem-variable key of each column (`None` for slack columns).
    keys: Vec<Option<K>>,
    /// Active constraints, in push order.
    constraints: Vec<ActiveConstraint<K>>,
    /// Lower and upper bounds of every tableau column.
    lower: Vec<Option<DeltaRat>>,
    upper: Vec<Option<DeltaRat>>,
    /// Current assignment.
    beta: Vec<DeltaRat>,
    /// Rows of basic variables: `basic -> coefficients over all columns`
    /// (non-zero only at non-basic columns).
    rows: BTreeMap<usize, Vec<Rat>>,
    /// Farkas certificate of the most recent failed check.
    conflict: Option<FarkasCertificate>,
}

impl<K: Ord + Clone + Debug> Default for IncrementalSimplex<K> {
    fn default() -> Self {
        IncrementalSimplex::new()
    }
}

impl<K: Ord + Clone + Debug> IncrementalSimplex<K> {
    /// Creates an empty (trivially satisfiable) system.
    pub fn new() -> IncrementalSimplex<K> {
        IncrementalSimplex {
            index: BTreeMap::new(),
            keys: Vec::new(),
            constraints: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            beta: Vec::new(),
            rows: BTreeMap::new(),
            conflict: None,
        }
    }

    /// Number of active constraints — the token
    /// [`pop_to`](IncrementalSimplex::pop_to) restores to.
    pub fn checkpoint(&self) -> usize {
        self.constraints.len()
    }

    fn total(&self) -> usize {
        self.keys.len()
    }

    /// Appends a fresh column; returns its index.
    fn add_column(&mut self, key: Option<K>) -> usize {
        let col = self.keys.len();
        self.keys.push(key);
        self.lower.push(None);
        self.upper.push(None);
        self.beta.push(DeltaRat::ZERO);
        for row in self.rows.values_mut() {
            row.push(Rat::ZERO);
        }
        col
    }

    /// Registers a problem variable, assigning it a column if new.
    fn ensure_column(&mut self, v: &K) -> usize {
        if let Some(&col) = self.index.get(v) {
            return col;
        }
        let col = self.add_column(Some(v.clone()));
        self.index.insert(v.clone(), col);
        col
    }

    /// Adds a constraint to the system.  The new slack row is expressed over
    /// the current non-basic columns (basic variables are substituted by
    /// their rows), so the tableau invariant — and the feasible assignment
    /// of the existing prefix — survives the push.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow.
    pub fn push_constraint(&mut self, c: &LinConstraint<K>) -> SmtResult<()> {
        for v in c.expr.vars() {
            self.ensure_column(&v);
        }
        let slack = self.add_column(None);
        let mut row = vec![Rat::ZERO; self.total()];
        for (v, coeff) in c.expr.terms() {
            let col = self.index[v];
            if let Some(basic_row) = self.rows.get(&col) {
                let basic_row = basic_row.clone();
                for (k, &a) in basic_row.iter().enumerate() {
                    if !a.is_zero() {
                        row[k] = row[k].add(coeff.mul(a)?)?;
                    }
                }
            } else {
                row[col] = row[col].add(coeff)?;
            }
        }
        let mut value = DeltaRat::ZERO;
        for (k, &a) in row.iter().enumerate() {
            if !a.is_zero() {
                value = value.add(self.beta[k].scale(a)?)?;
            }
        }
        self.beta[slack] = value;
        self.rows.insert(slack, row);
        let bound = c.expr.constant_part().neg()?;
        match c.op {
            ConstrOp::Le => self.upper[slack] = Some(DeltaRat::real(bound)),
            ConstrOp::Lt => self.upper[slack] = Some(DeltaRat::just_below(bound)),
            ConstrOp::Eq => {
                self.upper[slack] = Some(DeltaRat::real(bound));
                self.lower[slack] = Some(DeltaRat::real(bound));
            }
        }
        self.constraints.push(ActiveConstraint { expr: c.expr.clone(), op: c.op, slack });
        Ok(())
    }

    /// Removes every constraint pushed after `checkpoint`; the shared
    /// prefix keeps its tableau and assignment.  Popped slack columns are
    /// reclaimed when they sit at the end of the column range (the common
    /// LIFO push/pop discipline), so a long case-split search does not
    /// widen the tableau monotonically; a popped slack buried under
    /// still-active columns merely goes dead (zero in every row, no
    /// bounds) until the columns above it are reclaimed too.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from basis restoration pivots.
    pub fn pop_to(&mut self, checkpoint: usize) -> SmtResult<()> {
        while self.constraints.len() > checkpoint {
            let dropped = self.constraints.pop().expect("len checked");
            let s = dropped.slack;
            self.lower[s] = None;
            self.upper[s] = None;
            if !self.rows.contains_key(&s) {
                // The slack was pivoted into the non-basic set; bring it
                // back to the basis so the remaining rows stop referencing
                // it, then discard its row.  (Once zeroed everywhere and
                // unbounded, a dead column can never re-enter the basis:
                // pivot targets need a non-zero row coefficient.)
                let referencing =
                    self.rows.iter().find(|(_, row)| !row[s].is_zero()).map(|(&b, _)| b);
                if let Some(b) = referencing {
                    self.pivot(b, s)?;
                }
            }
            self.rows.remove(&s);
            self.conflict = None;
        }
        self.reclaim_trailing_dead_columns();
        Ok(())
    }

    /// Truncates every trailing column that is a dead slack: not a problem
    /// variable, not the slack of an active constraint, not basic, and
    /// (invariantly, after `pop_to`'s basis restoration) zero in every row.
    fn reclaim_trailing_dead_columns(&mut self) {
        while let Some(last) = self.total().checked_sub(1) {
            let is_dead_slack = self.keys[last].is_none()
                && !self.rows.contains_key(&last)
                && self.lower[last].is_none()
                && self.upper[last].is_none()
                && self.constraints.iter().all(|c| c.slack != last)
                && self.rows.values().all(|row| row[last].is_zero());
            if !is_dead_slack {
                break;
            }
            self.keys.pop();
            self.lower.pop();
            self.upper.pop();
            self.beta.pop();
            for row in self.rows.values_mut() {
                row.pop();
            }
        }
    }

    /// Decides feasibility of the active constraints, warm-starting from
    /// the current assignment.  On `false`, a Farkas certificate over the
    /// active constraints is available via
    /// [`take_certificate`](IncrementalSimplex::take_certificate).
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow.
    pub fn check(&mut self) -> SmtResult<bool> {
        crate::stats::record_simplex_warm_check();
        self.check_inner()
    }

    /// Decides feasibility counting the check as a *cold* solve — used by
    /// in-crate callers for the first check after building a tableau, which
    /// is exactly the work [`solve`] would have done.
    pub(crate) fn check_fresh(&mut self) -> SmtResult<bool> {
        crate::stats::record_simplex_call();
        self.check_inner()
    }

    /// The Bland-rule main loop (no stats recording; shared by warm checks
    /// and the cold [`solve`] entry point).
    fn check_inner(&mut self) -> SmtResult<bool> {
        self.conflict = None;
        loop {
            // Find the smallest-index basic variable violating a bound
            // (Bland's rule guarantees termination).
            let violated = self.rows.keys().copied().find(|&b| {
                let v = self.beta[b];
                self.lower[b].is_some_and(|l| v < l) || self.upper[b].is_some_and(|u| v > u)
            });
            let Some(b) = violated else {
                return Ok(true);
            };
            let v = self.beta[b];
            if self.lower[b].is_some_and(|l| v < l) {
                // Need to increase x_b.
                let target = self.lower[b].expect("bound checked");
                let row = self.rows[&b].clone();
                let pivot = (0..self.total()).find(|&j| {
                    if self.rows.contains_key(&j) || row[j].is_zero() {
                        return false;
                    }
                    if row[j].is_positive() {
                        self.upper[j].is_none_or(|u| self.beta[j] < u)
                    } else {
                        self.lower[j].is_none_or(|l| self.beta[j] > l)
                    }
                });
                match pivot {
                    Some(j) => self.pivot_and_update(b, j, target)?,
                    None => {
                        self.conflict = Some(self.build_conflict(b, &row, true)?);
                        return Ok(false);
                    }
                }
            } else {
                // Need to decrease x_b.
                let target = self.upper[b].expect("bound checked");
                let row = self.rows[&b].clone();
                let pivot = (0..self.total()).find(|&j| {
                    if self.rows.contains_key(&j) || row[j].is_zero() {
                        return false;
                    }
                    if row[j].is_negative() {
                        self.upper[j].is_none_or(|u| self.beta[j] < u)
                    } else {
                        self.lower[j].is_none_or(|l| self.beta[j] > l)
                    }
                });
                match pivot {
                    Some(j) => self.pivot_and_update(b, j, target)?,
                    None => {
                        self.conflict = Some(self.build_conflict(b, &row, false)?);
                        return Ok(false);
                    }
                }
            }
        }
    }

    /// The Farkas certificate of the most recent failed check, if any.
    pub fn take_certificate(&mut self) -> FarkasCertificate {
        self.conflict.take().expect("take_certificate requires a failed check")
    }

    /// The support of the most recent conflict: indices (in push order) of
    /// the active constraints carrying a non-zero Farkas multiplier.  This
    /// is an infeasible subsystem, but not necessarily an irreducible one —
    /// see [`minimal_infeasible_subsystem`](IncrementalSimplex::minimal_infeasible_subsystem).
    ///
    /// Valid after a failed [`check`](IncrementalSimplex::check) until the
    /// certificate is taken or the system changes.
    pub fn conflict_core(&self) -> Option<Vec<usize>> {
        let cert = self.conflict.as_ref()?;
        Some(
            cert.multipliers
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.is_zero())
                .map(|(i, _)| i)
                .collect(),
        )
    }

    /// The active constraints, in push order (the index space of
    /// [`conflict_core`](IncrementalSimplex::conflict_core)).
    pub fn active_constraints(&self) -> Vec<LinConstraint<K>> {
        self.constraints.iter().map(|c| LinConstraint::new(c.expr.clone(), c.op)).collect()
    }

    /// Shrinks the conflict support of the most recent failed check into an
    /// *irreducible* infeasible subsystem (IIS, a minimal Farkas conflict):
    /// the returned indices name an infeasible subset of the active
    /// constraints from which no row can be dropped without the remainder
    /// becoming satisfiable.
    ///
    /// Uses the standard deletion filter over the certificate support,
    /// scanning in ascending index order for determinism, on *one* reused
    /// scratch tableau: rows already decided to stay form the persistent
    /// prefix, and each candidate is probed by pushing the undecided suffix
    /// at a checkpoint, warm re-checking, and popping — so the whole filter
    /// costs one probe (a genuine tableau-reuse warm check) per support
    /// row, never a cold rebuild.  The certificate support is typically a
    /// handful of rows, so the filter is cheap relative to the conflict
    /// that produced it.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow; returns an error if no failed check
    /// is pending.
    pub fn minimal_infeasible_subsystem(&self) -> SmtResult<Vec<usize>> {
        let support = self.conflict_core().ok_or_else(|| {
            SmtError::unsupported("minimal_infeasible_subsystem requires a failed check")
        })?;
        let rows = self.active_constraints();
        // Invariant: `scratch` holds exactly the kept rows, and
        // kept ∪ support[i..] is infeasible when candidate `i` is reached.
        let mut scratch: IncrementalSimplex<K> = IncrementalSimplex::new();
        let mut kept: Vec<usize> = Vec::new();
        for (i, &candidate) in support.iter().enumerate() {
            let checkpoint = scratch.checkpoint();
            for &j in &support[i + 1..] {
                scratch.push_constraint(&rows[j])?;
            }
            let droppable = !scratch.check()?;
            scratch.pop_to(checkpoint)?;
            if !droppable {
                scratch.push_constraint(&rows[candidate])?;
                kept.push(candidate);
            }
        }
        debug_assert!(
            !scratch.check()?,
            "the shrunk core must still be infeasible (certificate support was not?)"
        );
        Ok(kept)
    }

    /// Builds the Farkas certificate for a conflict on basic variable `b`
    /// whose row is `row`; `lower_violation` says which bound was violated.
    fn build_conflict(
        &self,
        b: usize,
        row: &[Rat],
        lower_violation: bool,
    ) -> SmtResult<FarkasCertificate> {
        let mut slack_to_constraint: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, c) in self.constraints.iter().enumerate() {
            slack_to_constraint.insert(c.slack, i);
        }
        let mut mult = vec![Rat::ZERO; self.constraints.len()];
        let constraint_of = |col: usize| -> SmtResult<usize> {
            slack_to_constraint.get(&col).copied().ok_or_else(|| {
                SmtError::unsupported("internal error: conflict row mentions an unbounded column")
            })
        };
        let cb = constraint_of(b)?;
        if lower_violation {
            // -1 · e_b  +  Σ_j a_bj · e_j
            mult[cb] = mult[cb].sub(Rat::ONE)?;
            for (j, &a) in row.iter().enumerate() {
                if a.is_zero() || j == b {
                    continue;
                }
                let cj = constraint_of(j)?;
                mult[cj] = mult[cj].add(a)?;
            }
        } else {
            // +1 · e_b  -  Σ_j a_bj · e_j
            mult[cb] = mult[cb].add(Rat::ONE)?;
            for (j, &a) in row.iter().enumerate() {
                if a.is_zero() || j == b {
                    continue;
                }
                let cj = constraint_of(j)?;
                mult[cj] = mult[cj].sub(a)?;
            }
        }
        let cert = FarkasCertificate { multipliers: mult };
        debug_assert!(
            cert.verify(
                &self
                    .constraints
                    .iter()
                    .map(|c| LinConstraint::new(c.expr.clone(), c.op))
                    .collect::<Vec<_>>()
            )?,
            "produced an invalid Farkas certificate"
        );
        Ok(cert)
    }

    fn pivot_and_update(&mut self, b: usize, j: usize, target: DeltaRat) -> SmtResult<()> {
        let a_bj = self.rows[&b][j];
        let theta = target.sub(self.beta[b])?.scale(a_bj.recip()?)?;
        self.beta[b] = target;
        self.beta[j] = self.beta[j].add(theta)?;
        let basics: Vec<usize> = self.rows.keys().copied().collect();
        for k in basics {
            if k == b {
                continue;
            }
            let a_kj = self.rows[&k][j];
            if !a_kj.is_zero() {
                self.beta[k] = self.beta[k].add(theta.scale(a_kj)?)?;
            }
        }
        self.pivot(b, j)
    }

    fn pivot(&mut self, b: usize, j: usize) -> SmtResult<()> {
        let row_b = self.rows.remove(&b).expect("pivot row must be basic");
        let a = row_b[j];
        // New row expressing x_j in terms of x_b and the other non-basics.
        let mut row_j = vec![Rat::ZERO; self.total()];
        let a_inv = a.recip()?;
        row_j[b] = a_inv;
        for (k, &coeff) in row_b.iter().enumerate() {
            if k == j || coeff.is_zero() {
                continue;
            }
            row_j[k] = coeff.neg()?.mul(a_inv)?;
        }
        // Substitute x_j in all remaining rows.
        for row in self.rows.values_mut() {
            let c = row[j];
            if c.is_zero() {
                continue;
            }
            row[j] = Rat::ZERO;
            for k in 0..row_j.len() {
                if !row_j[k].is_zero() {
                    row[k] = row[k].add(c.mul(row_j[k])?)?;
                }
            }
        }
        self.rows.insert(j, row_j);
        Ok(())
    }

    /// The current witness assignment of the problem variables (valid after
    /// a successful check).
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from the δ instantiation.
    pub fn model(&self) -> SmtResult<BTreeMap<K, Rat>> {
        self.extract_model()
    }

    /// Converts the delta-rational assignment of the problem variables into a
    /// plain rational model by choosing a concrete small positive δ.
    fn extract_model(&self) -> SmtResult<BTreeMap<K, Rat>> {
        // Find a δ small enough that every active constraint still holds.
        // Each constraint evaluates to A + B·δ; it imposes an upper limit on δ
        // only when A < 0 and B > 0 (for ≤ / <) — see rat.rs for semantics.
        let mut delta = Rat::ONE;
        for c in &self.constraints {
            let mut a = c.expr.constant_part();
            let mut bcoef = Rat::ZERO;
            for (v, coeff) in c.expr.terms() {
                let idx = self.index[v];
                a = a.add(coeff.mul(self.beta[idx].real)?)?;
                bcoef = bcoef.add(coeff.mul(self.beta[idx].delta)?)?;
            }
            match c.op {
                ConstrOp::Le | ConstrOp::Lt => {
                    if a.is_negative() && bcoef.is_positive() {
                        // Need A + B·δ ≤ 0, i.e. δ ≤ -A/B; halve for strictness.
                        let limit = a.neg()?.div(bcoef)?.div(Rat::int(2))?;
                        if limit < delta {
                            delta = limit;
                        }
                    }
                }
                ConstrOp::Eq => {}
            }
        }
        let mut model = BTreeMap::new();
        for (k, &col) in &self.index {
            let value = self.beta[col].real.add(self.beta[col].delta.mul(delta)?)?;
            model.insert(k.clone(), value);
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_ir::{Formula, Term, VarRef};

    fn c(f: Formula) -> LinConstraint<VarRef> {
        LinConstraint::from_atom(&f.atoms()[0]).unwrap()
    }

    fn check_model(constraints: &[LinConstraint<VarRef>], model: &BTreeMap<VarRef, Rat>) {
        for cst in constraints {
            let holds =
                cst.holds(&|v: &VarRef| model.get(v).copied().unwrap_or(Rat::ZERO)).unwrap();
            assert!(holds, "model {model:?} violates {cst}");
        }
    }

    #[test]
    fn satisfiable_system_produces_valid_model() {
        let x = Term::var("x");
        let y = Term::var("y");
        let cs = vec![
            c(Formula::le(x.clone(), Term::int(10))),
            c(Formula::ge(x.clone(), Term::int(3))),
            c(Formula::eq(y.clone(), x.clone().add(Term::int(2)))),
            c(Formula::lt(y.clone(), Term::int(13))),
        ];
        match solve(&cs).unwrap() {
            LpResult::Sat(m) => check_model(&cs, &m),
            LpResult::Unsat(_) => panic!("system is satisfiable"),
        }
    }

    #[test]
    fn infeasible_system_produces_valid_certificate() {
        let x = Term::var("x");
        let cs =
            vec![c(Formula::ge(x.clone(), Term::int(5))), c(Formula::le(x.clone(), Term::int(4)))];
        match solve(&cs).unwrap() {
            LpResult::Unsat(cert) => assert!(cert.verify(&cs).unwrap()),
            LpResult::Sat(m) => panic!("system is infeasible, got model {m:?}"),
        }
    }

    #[test]
    fn strict_inequalities_are_exact() {
        let x = Term::var("x");
        // x < 5 && x > 4 is satisfiable over the rationals.
        let cs =
            vec![c(Formula::lt(x.clone(), Term::int(5))), c(Formula::gt(x.clone(), Term::int(4)))];
        match solve(&cs).unwrap() {
            LpResult::Sat(m) => check_model(&cs, &m),
            LpResult::Unsat(_) => panic!("satisfiable over the rationals"),
        }
        // x < 5 && x >= 5 is not.
        let cs = vec![c(Formula::lt(x.clone(), Term::int(5))), c(Formula::ge(x, Term::int(5)))];
        match solve(&cs).unwrap() {
            LpResult::Unsat(cert) => assert!(cert.verify(&cs).unwrap()),
            LpResult::Sat(_) => panic!("infeasible"),
        }
    }

    #[test]
    fn equality_chain_propagates() {
        let x = Term::var("x");
        let y = Term::var("y");
        let z = Term::var("z");
        let cs = vec![
            c(Formula::eq(x.clone(), y.clone().add(Term::int(1)))),
            c(Formula::eq(y.clone(), z.clone().add(Term::int(1)))),
            c(Formula::eq(z.clone(), Term::int(0))),
            c(Formula::le(x.clone(), Term::int(1))),
        ];
        match solve(&cs).unwrap() {
            LpResult::Unsat(cert) => assert!(cert.verify(&cs).unwrap()),
            LpResult::Sat(m) => panic!("x must be 2, contradiction expected, got {m:?}"),
        }
    }

    #[test]
    fn forward_path_formula_is_infeasible() {
        // The path formula of Figure 1(b):
        // n0 >= 0, i1 = 0, a1 = 0, b1 = 0, i1 < n0, a2 = a1+1, b2 = b1+2,
        // i2 = i1+1, i2 >= n0, a2 + b2 != 3n0 (here: the > case).
        //
        // Infeasibility relies on the integrality of the variables, so every
        // strict constraint is tightened (`e < 0` to `e + 1 <= 0`) exactly as
        // the full solver does; see LinConstraint::tighten_for_integers.
        let n0 = Term::ivar("n", 0);
        let i1 = Term::ivar("i", 1);
        let i2 = Term::ivar("i", 2);
        let a1 = Term::ivar("a", 1);
        let a2 = Term::ivar("a", 2);
        let b1 = Term::ivar("b", 1);
        let b2 = Term::ivar("b", 2);
        let t = |f: Formula| c(f).tighten_for_integers().unwrap();
        let cs = vec![
            t(Formula::ge(n0.clone(), Term::int(0))),
            t(Formula::eq(i1.clone(), Term::int(0))),
            t(Formula::eq(a1.clone(), Term::int(0))),
            t(Formula::eq(b1.clone(), Term::int(0))),
            t(Formula::lt(i1.clone(), n0.clone())),
            t(Formula::eq(a2.clone(), a1.clone().add(Term::int(1)))),
            t(Formula::eq(b2.clone(), b1.clone().add(Term::int(2)))),
            t(Formula::eq(i2.clone(), i1.clone().add(Term::int(1)))),
            t(Formula::ge(i2.clone(), n0.clone())),
        ];
        let sum = a2.clone().add(b2.clone());
        let gt_case = t(Formula::gt(sum.clone(), Term::int(3).mul(n0.clone())));
        let lt_case = t(Formula::lt(sum, Term::int(3).mul(n0)));
        for case in [gt_case, lt_case] {
            let mut cs_case = cs.clone();
            cs_case.push(case);
            match solve(&cs_case).unwrap() {
                LpResult::Unsat(cert) => assert!(cert.verify(&cs_case).unwrap()),
                LpResult::Sat(m) => panic!("Figure 1(b) path formula must be infeasible: {m:?}"),
            }
        }
        // Sanity: without the assertion the prefix is satisfiable.
        match solve(&cs).unwrap() {
            LpResult::Sat(m) => check_model(&cs, &m),
            LpResult::Unsat(_) => panic!("prefix must be satisfiable"),
        }
    }

    #[test]
    fn entailment_queries() {
        let x = Term::var("x");
        let y = Term::var("y");
        let ante =
            vec![c(Formula::le(x.clone(), y.clone())), c(Formula::le(y.clone(), Term::int(5)))];
        assert!(entails(&ante, &c(Formula::le(x.clone(), Term::int(5)))).unwrap());
        assert!(!entails(&ante, &c(Formula::le(x.clone(), Term::int(4)))).unwrap());
        assert!(entails(&ante, &c(Formula::le(x.clone(), Term::int(6)))).unwrap());
        // Equality goal.
        let ante_eq =
            vec![c(Formula::le(x.clone(), Term::int(3))), c(Formula::ge(x.clone(), Term::int(3)))];
        assert!(entails(&ante_eq, &c(Formula::eq(x.clone(), Term::int(3)))).unwrap());
        assert!(!entails(&ante_eq, &c(Formula::eq(x, Term::int(4)))).unwrap());
    }

    #[test]
    fn unconstrained_variables_get_some_value() {
        let x = Term::var("x");
        let cs = vec![c(Formula::le(x.clone(), x.clone().add(Term::int(1))))];
        match solve(&cs).unwrap() {
            LpResult::Sat(m) => check_model(&cs, &m),
            LpResult::Unsat(_) => panic!("trivially satisfiable"),
        }
    }

    #[test]
    fn empty_system_is_sat() {
        let cs: Vec<LinConstraint<VarRef>> = vec![];
        assert!(solve(&cs).unwrap().is_sat());
    }

    #[test]
    fn contradictory_equalities_detected() {
        let x = Term::var("x");
        let cs = vec![c(Formula::eq(x.clone(), Term::int(1))), c(Formula::eq(x, Term::int(2)))];
        match solve(&cs).unwrap() {
            LpResult::Unsat(cert) => assert!(cert.verify(&cs).unwrap()),
            LpResult::Sat(_) => panic!("infeasible"),
        }
    }

    #[test]
    fn larger_chain_is_handled() {
        // x0 <= x1 <= ... <= x10, x10 <= x0 - 1 : infeasible.
        let mut cs = Vec::new();
        for i in 0..10 {
            cs.push(c(Formula::le(Term::ivar("x", i), Term::ivar("x", i + 1))));
        }
        cs.push(c(Formula::le(Term::ivar("x", 10), Term::ivar("x", 0).sub(Term::int(1)))));
        match solve(&cs).unwrap() {
            LpResult::Unsat(cert) => assert!(cert.verify(&cs).unwrap()),
            LpResult::Sat(_) => panic!("cycle with a strict drop must be infeasible"),
        }
        // Dropping the last constraint makes it satisfiable.
        cs.pop();
        assert!(solve(&cs).unwrap().is_sat());
    }

    #[test]
    fn conflict_core_is_minimal() {
        // x >= 5, x <= 4, y <= 0 (irrelevant), x <= 3 (redundant with x <= 4
        // for the conflict): the IIS must be exactly two rows that are
        // jointly infeasible, and dropping either must make it satisfiable.
        let x = Term::var("x");
        let y = Term::var("y");
        let cs = vec![
            c(Formula::ge(x.clone(), Term::int(5))),
            c(Formula::le(x.clone(), Term::int(4))),
            c(Formula::le(y, Term::int(0))),
            c(Formula::le(x, Term::int(3))),
        ];
        let mut tab = IncrementalSimplex::new();
        for cst in &cs {
            tab.push_constraint(cst).unwrap();
        }
        assert!(!tab.check().unwrap());
        let core = tab.minimal_infeasible_subsystem().unwrap();
        assert!(core.contains(&0), "the lower bound is in every conflict: {core:?}");
        assert_eq!(core.len(), 2, "{core:?}");
        // The core subsystem is infeasible; dropping any row makes it sat.
        let sub: Vec<_> = core.iter().map(|&i| cs[i].clone()).collect();
        assert!(!solve(&sub).unwrap().is_sat());
        for drop in 0..sub.len() {
            let mut reduced = sub.clone();
            reduced.remove(drop);
            assert!(solve(&reduced).unwrap().is_sat(), "core must be irreducible");
        }
    }

    #[test]
    fn conflict_core_requires_a_failed_check() {
        let mut tab: IncrementalSimplex<VarRef> = IncrementalSimplex::new();
        assert!(tab.conflict_core().is_none());
        assert!(tab.minimal_infeasible_subsystem().is_err());
        tab.push_constraint(&c(Formula::le(Term::var("x"), Term::int(1)))).unwrap();
        assert!(tab.check().unwrap());
        assert!(tab.conflict_core().is_none());
    }

    #[test]
    fn certificate_rejects_tampering() {
        let x = Term::var("x");
        let cs = vec![c(Formula::ge(x.clone(), Term::int(5))), c(Formula::le(x, Term::int(4)))];
        let LpResult::Unsat(mut cert) = solve(&cs).unwrap() else {
            panic!("infeasible");
        };
        assert!(cert.verify(&cs).unwrap());
        cert.multipliers[0] = Rat::ZERO;
        assert!(!cert.verify(&cs).unwrap());
    }
}
