//! A general simplex solver for conjunctions of linear constraints over the
//! rationals, in the style of Dutertre and de Moura (SAT 2006).
//!
//! The solver decides feasibility of a set of [`LinConstraint`]s, returning
//! either a satisfying rational assignment or a *Farkas certificate*: a
//! non-negative combination of the constraints (equalities may take either
//! sign) that sums to a contradiction.  The certificate is the workhorse of
//! two other components: LRA interpolation ([`crate::interpolate`]) and the
//! encoding of invariant-template constraints ([Colón et al. 2003], used in
//! `pathinv-invgen`).
//!
//! Strict inequalities are handled symbolically with an infinitesimal `δ`
//! ([`DeltaRat`]), so the solver is exact.

use crate::error::{SmtError, SmtResult};
use crate::linexpr::{ConstrOp, LinConstraint, LinExpr};
use crate::rat::{DeltaRat, Rat};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// Outcome of a linear-programming feasibility query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpResult<K: Ord + Clone> {
    /// The constraints are satisfiable; a witness assignment is returned
    /// (variables not mentioned in any constraint are absent and may take any
    /// value).
    Sat(BTreeMap<K, Rat>),
    /// The constraints are unsatisfiable; a Farkas certificate is returned.
    Unsat(FarkasCertificate),
}

impl<K: Ord + Clone> LpResult<K> {
    /// Returns `true` for the satisfiable outcome.
    pub fn is_sat(&self) -> bool {
        matches!(self, LpResult::Sat(_))
    }

    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&BTreeMap<K, Rat>> {
        match self {
            LpResult::Sat(m) => Some(m),
            LpResult::Unsat(_) => None,
        }
    }

    /// Returns the certificate if unsatisfiable.
    pub fn certificate(&self) -> Option<&FarkasCertificate> {
        match self {
            LpResult::Sat(_) => None,
            LpResult::Unsat(c) => Some(c),
        }
    }
}

/// A Farkas certificate of infeasibility: one multiplier per input
/// constraint such that the weighted sum of the constraint expressions has a
/// zero variable part and a contradictory constant part.
///
/// Multipliers of `≤`/`<` constraints are non-negative; multipliers of `=`
/// constraints may have either sign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FarkasCertificate {
    /// One multiplier per input constraint, in input order.
    pub multipliers: Vec<Rat>,
}

impl FarkasCertificate {
    /// Checks that the certificate indeed proves infeasibility of the given
    /// constraints.
    ///
    /// The combination `Σ λ_k · e_k` must have a zero variable part, the
    /// multipliers of inequality constraints must be non-negative, and the
    /// resulting constant must be positive — or non-negative with a strict
    /// constraint carrying a positive multiplier.
    pub fn verify<K: Ord + Clone>(&self, constraints: &[LinConstraint<K>]) -> SmtResult<bool> {
        if self.multipliers.len() != constraints.len() {
            return Ok(false);
        }
        let mut sum: LinExpr<K> = LinExpr::zero();
        let mut strict_used = false;
        let mut any_nonzero = false;
        for (lambda, c) in self.multipliers.iter().zip(constraints) {
            if lambda.is_zero() {
                continue;
            }
            any_nonzero = true;
            match c.op {
                ConstrOp::Le => {
                    if lambda.is_negative() {
                        return Ok(false);
                    }
                }
                ConstrOp::Lt => {
                    if lambda.is_negative() {
                        return Ok(false);
                    }
                    strict_used = true;
                }
                ConstrOp::Eq => {}
            }
            sum = sum.add(&c.expr.scale(*lambda)?)?;
        }
        if !any_nonzero || !sum.is_constant() {
            return Ok(false);
        }
        let k = sum.constant_part();
        Ok(k.is_positive() || (!k.is_negative() && strict_used))
    }
}

/// Decides feasibility of a conjunction of linear constraints.
///
/// # Errors
///
/// Propagates arithmetic overflow errors from the exact rational arithmetic.
pub fn solve<K: Ord + Clone + Debug>(constraints: &[LinConstraint<K>]) -> SmtResult<LpResult<K>> {
    crate::stats::record_simplex_call();
    Tableau::new(constraints)?.check()
}

/// Checks whether the conjunction of `constraints` entails `goal`
/// (a single constraint), by refuting `constraints ∧ ¬goal`.
///
/// Only `≤`, `<` and `=` goals are supported; `=` goals are checked as the
/// conjunction of the two inequalities.
pub fn entails<K: Ord + Clone + Debug>(
    constraints: &[LinConstraint<K>],
    goal: &LinConstraint<K>,
) -> SmtResult<bool> {
    let negations: Vec<LinConstraint<K>> = match goal.op {
        // ¬(e ≤ 0)  ≡  -e < 0
        ConstrOp::Le => {
            vec![LinConstraint::new(goal.expr.scale(Rat::MINUS_ONE)?, ConstrOp::Lt)]
        }
        // ¬(e < 0)  ≡  -e ≤ 0
        ConstrOp::Lt => {
            vec![LinConstraint::new(goal.expr.scale(Rat::MINUS_ONE)?, ConstrOp::Le)]
        }
        // ¬(e = 0)  ≡  e < 0 ∨ -e < 0 : check both cases.
        ConstrOp::Eq => {
            vec![
                LinConstraint::new(goal.expr.clone(), ConstrOp::Lt),
                LinConstraint::new(goal.expr.scale(Rat::MINUS_ONE)?, ConstrOp::Lt),
            ]
        }
    };
    for neg in negations {
        let mut cs = constraints.to_vec();
        cs.push(neg);
        if solve(&cs)?.is_sat() {
            return Ok(false);
        }
    }
    Ok(true)
}

struct Tableau<K: Ord + Clone> {
    /// Number of problem variables.
    num_vars: usize,
    /// Total number of tableau variables (problem + one slack per constraint).
    total: usize,
    /// Key of each problem variable, by index.
    keys: Vec<K>,
    /// Lower and upper bounds of every tableau variable.
    lower: Vec<Option<DeltaRat>>,
    upper: Vec<Option<DeltaRat>>,
    /// Current assignment.
    beta: Vec<DeltaRat>,
    /// Rows of basic variables: `basic -> coefficients over all variables`
    /// (non-zero only at non-basic columns).
    rows: BTreeMap<usize, Vec<Rat>>,
    /// The operator of each constraint, for certificate verification.
    ops: Vec<ConstrOp>,
    /// Original constraint expressions (for certificate verification).
    exprs: Vec<LinExpr<K>>,
}

impl<K: Ord + Clone + Debug> Tableau<K> {
    fn new(constraints: &[LinConstraint<K>]) -> SmtResult<Self> {
        // Index problem variables.
        let mut index: BTreeMap<K, usize> = BTreeMap::new();
        let mut keys = Vec::new();
        for c in constraints {
            for v in c.expr.vars() {
                index.entry(v.clone()).or_insert_with(|| {
                    keys.push(v.clone());
                    keys.len() - 1
                });
            }
        }
        let num_vars = keys.len();
        let total = num_vars + constraints.len();
        let mut lower = vec![None; total];
        let mut upper = vec![None; total];
        let beta = vec![DeltaRat::ZERO; total];
        let mut rows = BTreeMap::new();
        let mut ops = Vec::with_capacity(constraints.len());
        let mut exprs = Vec::with_capacity(constraints.len());

        for (j, c) in constraints.iter().enumerate() {
            let slack = num_vars + j;
            let mut row = vec![Rat::ZERO; total];
            for (v, coeff) in c.expr.terms() {
                row[index[v]] = coeff;
            }
            rows.insert(slack, row);
            // linpart ⋈ -constant
            let bound = c.expr.constant_part().neg()?;
            match c.op {
                ConstrOp::Le => upper[slack] = Some(DeltaRat::real(bound)),
                ConstrOp::Lt => upper[slack] = Some(DeltaRat::just_below(bound)),
                ConstrOp::Eq => {
                    upper[slack] = Some(DeltaRat::real(bound));
                    lower[slack] = Some(DeltaRat::real(bound));
                }
            }
            ops.push(c.op);
            exprs.push(c.expr.clone());
        }
        Ok(Tableau { num_vars, total, keys, lower, upper, beta, rows, ops, exprs })
    }

    fn check(mut self) -> SmtResult<LpResult<K>> {
        loop {
            // Find the smallest-index basic variable violating a bound
            // (Bland's rule guarantees termination).
            let violated = self.rows.keys().copied().find(|&b| {
                let v = self.beta[b];
                self.lower[b].is_some_and(|l| v < l) || self.upper[b].is_some_and(|u| v > u)
            });
            let Some(b) = violated else {
                return Ok(LpResult::Sat(self.extract_model()?));
            };
            let v = self.beta[b];
            if self.lower[b].is_some_and(|l| v < l) {
                // Need to increase x_b.
                let target = self.lower[b].expect("bound checked");
                let row = self.rows[&b].clone();
                let pivot = (0..self.total).find(|&j| {
                    if self.rows.contains_key(&j) || row[j].is_zero() {
                        return false;
                    }
                    if row[j].is_positive() {
                        self.upper[j].is_none_or(|u| self.beta[j] < u)
                    } else {
                        self.lower[j].is_none_or(|l| self.beta[j] > l)
                    }
                });
                match pivot {
                    Some(j) => self.pivot_and_update(b, j, target)?,
                    None => return Ok(LpResult::Unsat(self.conflict(b, &row, true)?)),
                }
            } else {
                // Need to decrease x_b.
                let target = self.upper[b].expect("bound checked");
                let row = self.rows[&b].clone();
                let pivot = (0..self.total).find(|&j| {
                    if self.rows.contains_key(&j) || row[j].is_zero() {
                        return false;
                    }
                    if row[j].is_negative() {
                        self.upper[j].is_none_or(|u| self.beta[j] < u)
                    } else {
                        self.lower[j].is_none_or(|l| self.beta[j] > l)
                    }
                });
                match pivot {
                    Some(j) => self.pivot_and_update(b, j, target)?,
                    None => return Ok(LpResult::Unsat(self.conflict(b, &row, false)?)),
                }
            }
        }
    }

    /// Builds the Farkas certificate for a conflict on basic variable `b`
    /// whose row is `row`; `lower_violation` says which bound was violated.
    fn conflict(
        &self,
        b: usize,
        row: &[Rat],
        lower_violation: bool,
    ) -> SmtResult<FarkasCertificate> {
        let m = self.ops.len();
        let mut mult = vec![Rat::ZERO; m];
        let constraint_of = |var: usize| -> Option<usize> {
            if var >= self.num_vars {
                Some(var - self.num_vars)
            } else {
                None
            }
        };
        let cb = constraint_of(b).ok_or_else(|| {
            SmtError::unsupported("internal error: conflict on an unbounded problem variable")
        })?;
        if lower_violation {
            // -1 · e_b  +  Σ_j a_bj · e_j
            mult[cb] = mult[cb].sub(Rat::ONE)?;
            for (j, &a) in row.iter().enumerate() {
                if a.is_zero() || j == b {
                    continue;
                }
                let cj = constraint_of(j).ok_or_else(|| {
                    SmtError::unsupported(
                        "internal error: conflict row mentions an unbounded problem variable",
                    )
                })?;
                mult[cj] = mult[cj].add(a)?;
            }
        } else {
            // +1 · e_b  -  Σ_j a_bj · e_j
            mult[cb] = mult[cb].add(Rat::ONE)?;
            for (j, &a) in row.iter().enumerate() {
                if a.is_zero() || j == b {
                    continue;
                }
                let cj = constraint_of(j).ok_or_else(|| {
                    SmtError::unsupported(
                        "internal error: conflict row mentions an unbounded problem variable",
                    )
                })?;
                mult[cj] = mult[cj].sub(a)?;
            }
        }
        let cert = FarkasCertificate { multipliers: mult };
        debug_assert!(
            cert.verify(
                &self
                    .exprs
                    .iter()
                    .cloned()
                    .zip(self.ops.iter().copied())
                    .map(|(expr, op)| LinConstraint::new(expr, op))
                    .collect::<Vec<_>>()
            )?,
            "produced an invalid Farkas certificate"
        );
        Ok(cert)
    }

    fn pivot_and_update(&mut self, b: usize, j: usize, target: DeltaRat) -> SmtResult<()> {
        let a_bj = self.rows[&b][j];
        let theta = target.sub(self.beta[b])?.scale(a_bj.recip()?)?;
        self.beta[b] = target;
        self.beta[j] = self.beta[j].add(theta)?;
        let basics: Vec<usize> = self.rows.keys().copied().collect();
        for k in basics {
            if k == b {
                continue;
            }
            let a_kj = self.rows[&k][j];
            if !a_kj.is_zero() {
                self.beta[k] = self.beta[k].add(theta.scale(a_kj)?)?;
            }
        }
        self.pivot(b, j)
    }

    fn pivot(&mut self, b: usize, j: usize) -> SmtResult<()> {
        let row_b = self.rows.remove(&b).expect("pivot row must be basic");
        let a = row_b[j];
        // New row expressing x_j in terms of x_b and the other non-basics.
        let mut row_j = vec![Rat::ZERO; self.total];
        let a_inv = a.recip()?;
        row_j[b] = a_inv;
        for (k, &coeff) in row_b.iter().enumerate() {
            if k == j || coeff.is_zero() {
                continue;
            }
            row_j[k] = coeff.neg()?.mul(a_inv)?;
        }
        // Substitute x_j in all remaining rows.
        for row in self.rows.values_mut() {
            let c = row[j];
            if c.is_zero() {
                continue;
            }
            row[j] = Rat::ZERO;
            for k in 0..row_j.len() {
                if !row_j[k].is_zero() {
                    row[k] = row[k].add(c.mul(row_j[k])?)?;
                }
            }
        }
        self.rows.insert(j, row_j);
        Ok(())
    }

    /// Converts the delta-rational assignment of the problem variables into a
    /// plain rational model by choosing a concrete small positive δ.
    fn extract_model(&self) -> SmtResult<BTreeMap<K, Rat>> {
        // Find a δ small enough that every original constraint still holds.
        // Each constraint evaluates to A + B·δ; it imposes an upper limit on δ
        // only when A < 0 and B > 0 (for ≤ / <) — see rat.rs for semantics.
        let assign_real = |i: usize| self.beta[i].real;
        let assign_delta = |i: usize| self.beta[i].delta;
        let mut delta = Rat::ONE;
        for (c, op) in self.exprs.iter().zip(self.ops.iter()) {
            let mut a = c.constant_part();
            let mut bcoef = Rat::ZERO;
            for (v, coeff) in c.terms() {
                let idx = self.keys.iter().position(|k| k == v).expect("indexed variable");
                a = a.add(coeff.mul(assign_real(idx))?)?;
                bcoef = bcoef.add(coeff.mul(assign_delta(idx))?)?;
            }
            match op {
                ConstrOp::Le | ConstrOp::Lt => {
                    if a.is_negative() && bcoef.is_positive() {
                        // Need A + B·δ ≤ 0, i.e. δ ≤ -A/B; halve for strictness.
                        let limit = a.neg()?.div(bcoef)?.div(Rat::int(2))?;
                        if limit < delta {
                            delta = limit;
                        }
                    }
                }
                ConstrOp::Eq => {}
            }
        }
        let mut model = BTreeMap::new();
        for (i, k) in self.keys.iter().enumerate() {
            let value = self.beta[i].real.add(self.beta[i].delta.mul(delta)?)?;
            model.insert(k.clone(), value);
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_ir::{Formula, Term, VarRef};

    fn c(f: Formula) -> LinConstraint<VarRef> {
        LinConstraint::from_atom(&f.atoms()[0]).unwrap()
    }

    fn check_model(constraints: &[LinConstraint<VarRef>], model: &BTreeMap<VarRef, Rat>) {
        for cst in constraints {
            let holds =
                cst.holds(&|v: &VarRef| model.get(v).copied().unwrap_or(Rat::ZERO)).unwrap();
            assert!(holds, "model {model:?} violates {cst}");
        }
    }

    #[test]
    fn satisfiable_system_produces_valid_model() {
        let x = Term::var("x");
        let y = Term::var("y");
        let cs = vec![
            c(Formula::le(x.clone(), Term::int(10))),
            c(Formula::ge(x.clone(), Term::int(3))),
            c(Formula::eq(y.clone(), x.clone().add(Term::int(2)))),
            c(Formula::lt(y.clone(), Term::int(13))),
        ];
        match solve(&cs).unwrap() {
            LpResult::Sat(m) => check_model(&cs, &m),
            LpResult::Unsat(_) => panic!("system is satisfiable"),
        }
    }

    #[test]
    fn infeasible_system_produces_valid_certificate() {
        let x = Term::var("x");
        let cs =
            vec![c(Formula::ge(x.clone(), Term::int(5))), c(Formula::le(x.clone(), Term::int(4)))];
        match solve(&cs).unwrap() {
            LpResult::Unsat(cert) => assert!(cert.verify(&cs).unwrap()),
            LpResult::Sat(m) => panic!("system is infeasible, got model {m:?}"),
        }
    }

    #[test]
    fn strict_inequalities_are_exact() {
        let x = Term::var("x");
        // x < 5 && x > 4 is satisfiable over the rationals.
        let cs =
            vec![c(Formula::lt(x.clone(), Term::int(5))), c(Formula::gt(x.clone(), Term::int(4)))];
        match solve(&cs).unwrap() {
            LpResult::Sat(m) => check_model(&cs, &m),
            LpResult::Unsat(_) => panic!("satisfiable over the rationals"),
        }
        // x < 5 && x >= 5 is not.
        let cs = vec![c(Formula::lt(x.clone(), Term::int(5))), c(Formula::ge(x, Term::int(5)))];
        match solve(&cs).unwrap() {
            LpResult::Unsat(cert) => assert!(cert.verify(&cs).unwrap()),
            LpResult::Sat(_) => panic!("infeasible"),
        }
    }

    #[test]
    fn equality_chain_propagates() {
        let x = Term::var("x");
        let y = Term::var("y");
        let z = Term::var("z");
        let cs = vec![
            c(Formula::eq(x.clone(), y.clone().add(Term::int(1)))),
            c(Formula::eq(y.clone(), z.clone().add(Term::int(1)))),
            c(Formula::eq(z.clone(), Term::int(0))),
            c(Formula::le(x.clone(), Term::int(1))),
        ];
        match solve(&cs).unwrap() {
            LpResult::Unsat(cert) => assert!(cert.verify(&cs).unwrap()),
            LpResult::Sat(m) => panic!("x must be 2, contradiction expected, got {m:?}"),
        }
    }

    #[test]
    fn forward_path_formula_is_infeasible() {
        // The path formula of Figure 1(b):
        // n0 >= 0, i1 = 0, a1 = 0, b1 = 0, i1 < n0, a2 = a1+1, b2 = b1+2,
        // i2 = i1+1, i2 >= n0, a2 + b2 != 3n0 (here: the > case).
        //
        // Infeasibility relies on the integrality of the variables, so every
        // strict constraint is tightened (`e < 0` to `e + 1 <= 0`) exactly as
        // the full solver does; see LinConstraint::tighten_for_integers.
        let n0 = Term::ivar("n", 0);
        let i1 = Term::ivar("i", 1);
        let i2 = Term::ivar("i", 2);
        let a1 = Term::ivar("a", 1);
        let a2 = Term::ivar("a", 2);
        let b1 = Term::ivar("b", 1);
        let b2 = Term::ivar("b", 2);
        let t = |f: Formula| c(f).tighten_for_integers().unwrap();
        let cs = vec![
            t(Formula::ge(n0.clone(), Term::int(0))),
            t(Formula::eq(i1.clone(), Term::int(0))),
            t(Formula::eq(a1.clone(), Term::int(0))),
            t(Formula::eq(b1.clone(), Term::int(0))),
            t(Formula::lt(i1.clone(), n0.clone())),
            t(Formula::eq(a2.clone(), a1.clone().add(Term::int(1)))),
            t(Formula::eq(b2.clone(), b1.clone().add(Term::int(2)))),
            t(Formula::eq(i2.clone(), i1.clone().add(Term::int(1)))),
            t(Formula::ge(i2.clone(), n0.clone())),
        ];
        let sum = a2.clone().add(b2.clone());
        let gt_case = t(Formula::gt(sum.clone(), Term::int(3).mul(n0.clone())));
        let lt_case = t(Formula::lt(sum, Term::int(3).mul(n0)));
        for case in [gt_case, lt_case] {
            let mut cs_case = cs.clone();
            cs_case.push(case);
            match solve(&cs_case).unwrap() {
                LpResult::Unsat(cert) => assert!(cert.verify(&cs_case).unwrap()),
                LpResult::Sat(m) => panic!("Figure 1(b) path formula must be infeasible: {m:?}"),
            }
        }
        // Sanity: without the assertion the prefix is satisfiable.
        match solve(&cs).unwrap() {
            LpResult::Sat(m) => check_model(&cs, &m),
            LpResult::Unsat(_) => panic!("prefix must be satisfiable"),
        }
    }

    #[test]
    fn entailment_queries() {
        let x = Term::var("x");
        let y = Term::var("y");
        let ante =
            vec![c(Formula::le(x.clone(), y.clone())), c(Formula::le(y.clone(), Term::int(5)))];
        assert!(entails(&ante, &c(Formula::le(x.clone(), Term::int(5)))).unwrap());
        assert!(!entails(&ante, &c(Formula::le(x.clone(), Term::int(4)))).unwrap());
        assert!(entails(&ante, &c(Formula::le(x.clone(), Term::int(6)))).unwrap());
        // Equality goal.
        let ante_eq =
            vec![c(Formula::le(x.clone(), Term::int(3))), c(Formula::ge(x.clone(), Term::int(3)))];
        assert!(entails(&ante_eq, &c(Formula::eq(x.clone(), Term::int(3)))).unwrap());
        assert!(!entails(&ante_eq, &c(Formula::eq(x, Term::int(4)))).unwrap());
    }

    #[test]
    fn unconstrained_variables_get_some_value() {
        let x = Term::var("x");
        let cs = vec![c(Formula::le(x.clone(), x.clone().add(Term::int(1))))];
        match solve(&cs).unwrap() {
            LpResult::Sat(m) => check_model(&cs, &m),
            LpResult::Unsat(_) => panic!("trivially satisfiable"),
        }
    }

    #[test]
    fn empty_system_is_sat() {
        let cs: Vec<LinConstraint<VarRef>> = vec![];
        assert!(solve(&cs).unwrap().is_sat());
    }

    #[test]
    fn contradictory_equalities_detected() {
        let x = Term::var("x");
        let cs = vec![c(Formula::eq(x.clone(), Term::int(1))), c(Formula::eq(x, Term::int(2)))];
        match solve(&cs).unwrap() {
            LpResult::Unsat(cert) => assert!(cert.verify(&cs).unwrap()),
            LpResult::Sat(_) => panic!("infeasible"),
        }
    }

    #[test]
    fn larger_chain_is_handled() {
        // x0 <= x1 <= ... <= x10, x10 <= x0 - 1 : infeasible.
        let mut cs = Vec::new();
        for i in 0..10 {
            cs.push(c(Formula::le(Term::ivar("x", i), Term::ivar("x", i + 1))));
        }
        cs.push(c(Formula::le(Term::ivar("x", 10), Term::ivar("x", 0).sub(Term::int(1)))));
        match solve(&cs).unwrap() {
            LpResult::Unsat(cert) => assert!(cert.verify(&cs).unwrap()),
            LpResult::Sat(_) => panic!("cycle with a strict drop must be infeasible"),
        }
        // Dropping the last constraint makes it satisfiable.
        cs.pop();
        assert!(solve(&cs).unwrap().is_sat());
    }

    #[test]
    fn certificate_rejects_tampering() {
        let x = Term::var("x");
        let cs = vec![c(Formula::ge(x.clone(), Term::int(5))), c(Formula::le(x, Term::int(4)))];
        let LpResult::Unsat(mut cert) = solve(&cs).unwrap() else {
            panic!("infeasible");
        };
        assert!(cert.verify(&cs).unwrap());
        cert.multipliers[0] = Rat::ZERO;
        assert!(!cert.verify(&cs).unwrap());
    }
}
