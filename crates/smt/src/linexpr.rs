//! Linear expressions and linear constraints.
//!
//! [`LinExpr`] is generic over the variable key type so the same machinery
//! serves both the decision procedures (variables are [`VarRef`]s) and the
//! template-based invariant generator (variables are template parameters or
//! pairs of parameter × program variable).

use crate::error::{SmtError, SmtResult};
use crate::rat::Rat;
use pathinv_ir::{Atom, RelOp, Term, VarRef};
use std::collections::BTreeMap;
use std::fmt;

/// A linear expression `Σ cᵢ·xᵢ + c` with rational coefficients over
/// variables of type `K`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LinExpr<K: Ord + Clone = VarRef> {
    coeffs: BTreeMap<K, Rat>,
    constant: Rat,
}

impl<K: Ord + Clone> Default for LinExpr<K> {
    fn default() -> Self {
        LinExpr { coeffs: BTreeMap::new(), constant: Rat::ZERO }
    }
}

impl<K: Ord + Clone> LinExpr<K> {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: Rat) -> Self {
        LinExpr { coeffs: BTreeMap::new(), constant: c }
    }

    /// The expression `1·x`.
    pub fn var(x: K) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(x, Rat::ONE);
        LinExpr { coeffs, constant: Rat::ZERO }
    }

    /// The expression `c·x`.
    pub fn scaled_var(x: K, c: Rat) -> Self {
        let mut e = Self::zero();
        if !c.is_zero() {
            e.coeffs.insert(x, c);
        }
        e
    }

    /// The constant part.
    pub fn constant_part(&self) -> Rat {
        self.constant
    }

    /// The coefficient of `x` (zero if absent).
    pub fn coeff(&self, x: &K) -> Rat {
        self.coeffs.get(x).copied().unwrap_or(Rat::ZERO)
    }

    /// Iterates over the (variable, non-zero coefficient) pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&K, Rat)> + '_ {
        self.coeffs.iter().map(|(k, &c)| (k, c))
    }

    /// The variables with non-zero coefficients.
    pub fn vars(&self) -> Vec<K> {
        self.coeffs.keys().cloned().collect()
    }

    /// Returns `true` if the expression has no variable part.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Adds `c·x` to the expression in place.
    pub fn add_term(&mut self, x: K, c: Rat) -> SmtResult<()> {
        let entry = self.coeffs.entry(x.clone()).or_insert(Rat::ZERO);
        *entry = entry.add(c)?;
        if entry.is_zero() {
            self.coeffs.remove(&x);
        }
        Ok(())
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: Rat) -> SmtResult<()> {
        self.constant = self.constant.add(c)?;
        Ok(())
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &Self) -> SmtResult<Self> {
        let mut out = self.clone();
        for (k, c) in other.terms() {
            out.add_term(k.clone(), c)?;
        }
        out.add_constant(other.constant)?;
        Ok(out)
    }

    /// Difference of two expressions.
    pub fn sub(&self, other: &Self) -> SmtResult<Self> {
        self.add(&other.scale(Rat::MINUS_ONE)?)
    }

    /// The expression scaled by `k`.
    pub fn scale(&self, k: Rat) -> SmtResult<Self> {
        if k.is_zero() {
            return Ok(Self::zero());
        }
        let mut coeffs = BTreeMap::new();
        for (x, c) in &self.coeffs {
            coeffs.insert(x.clone(), c.mul(k)?);
        }
        Ok(LinExpr { coeffs, constant: self.constant.mul(k)? })
    }

    /// Evaluates the expression under a (total on its variables) assignment.
    pub fn eval(&self, assignment: &impl Fn(&K) -> Rat) -> SmtResult<Rat> {
        let mut acc = self.constant;
        for (x, c) in &self.coeffs {
            acc = acc.add(c.mul(assignment(x))?)?;
        }
        Ok(acc)
    }

    /// Rewrites every variable with `f`, producing a new expression (used for
    /// substituting variables by other linear expressions).
    pub fn substitute<L: Ord + Clone>(
        &self,
        f: &impl Fn(&K) -> LinExpr<L>,
    ) -> SmtResult<LinExpr<L>> {
        let mut out = LinExpr::<L>::constant(self.constant);
        for (x, c) in &self.coeffs {
            out = out.add(&f(x).scale(*c)?)?;
        }
        Ok(out)
    }
}

impl LinExpr<VarRef> {
    /// Converts an IR term into a linear expression.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::NonLinear`] if the term multiplies two
    /// non-constant subterms, and [`SmtError::SortMismatch`] if it contains
    /// array or uninterpreted-function operations (callers must abstract
    /// those away first).
    pub fn from_term(t: &Term) -> SmtResult<LinExpr<VarRef>> {
        match t {
            Term::Const(c) => Ok(LinExpr::constant(Rat::int(*c))),
            Term::Var(v) => Ok(LinExpr::var(*v)),
            Term::Bound(b) => Err(SmtError::sort_mismatch(format!(
                "bound variable `{b}` reached the linear-arithmetic layer"
            ))),
            Term::Add(a, b) => LinExpr::from_term(a)?.add(&LinExpr::from_term(b)?),
            Term::Sub(a, b) => LinExpr::from_term(a)?.sub(&LinExpr::from_term(b)?),
            Term::Neg(a) => LinExpr::from_term(a)?.scale(Rat::MINUS_ONE),
            Term::Mul(a, b) => {
                let ea = LinExpr::from_term(a)?;
                let eb = LinExpr::from_term(b)?;
                if ea.is_constant() {
                    eb.scale(ea.constant_part())
                } else if eb.is_constant() {
                    ea.scale(eb.constant_part())
                } else {
                    Err(SmtError::NonLinear { term: t.to_string() })
                }
            }
            Term::Select(..) | Term::Store(..) | Term::App(..) => Err(SmtError::sort_mismatch(
                format!("non-arithmetic term `{t}` reached the linear-arithmetic layer"),
            )),
        }
    }
}

impl LinExpr<VarRef> {
    /// Converts the expression back into an IR [`Term`], scaling by the least
    /// common multiple of the coefficient denominators so that the resulting
    /// term has integer coefficients.  Returns the scaled term together with
    /// the (positive) scale factor that was applied.
    pub fn to_scaled_term(&self) -> SmtResult<(Term, i128)> {
        let mut scale: i128 = 1;
        let mut lcm = |d: i128| {
            let g = {
                let (mut a, mut b) = (scale.abs(), d.abs());
                while b != 0 {
                    let t = a % b;
                    a = b;
                    b = t;
                }
                a
            };
            scale = scale / g * d;
        };
        for (_, c) in self.terms() {
            lcm(c.denom());
        }
        lcm(self.constant.denom());
        let mut term: Option<Term> = None;
        fn push(term: &mut Option<Term>, t: Term) {
            *term = Some(match term.take() {
                None => t,
                Some(acc) => acc.add(t),
            });
        }
        for (v, c) in self.terms() {
            let k = c.mul(Rat::int(scale))?.as_integer().ok_or(SmtError::Overflow)?;
            if k == 1 {
                push(&mut term, Term::Var(*v));
            } else {
                push(&mut term, Term::Const(k).mul(Term::Var(*v)));
            }
        }
        let k = self.constant.mul(Rat::int(scale))?.as_integer().ok_or(SmtError::Overflow)?;
        if k != 0 || term.is_none() {
            push(&mut term, Term::Const(k));
        }
        Ok((term.expect("at least one summand pushed"), scale))
    }
}

impl LinConstraint<VarRef> {
    /// Converts the constraint back into an IR [`Formula`](pathinv_ir::Formula) with integer
    /// coefficients (`expr ⋈ 0` becomes `scaled_expr ⋈ 0`).
    pub fn to_formula(&self) -> SmtResult<pathinv_ir::Formula> {
        let (term, _) = self.expr.to_scaled_term()?;
        let op = match self.op {
            ConstrOp::Le => RelOp::Le,
            ConstrOp::Lt => RelOp::Lt,
            ConstrOp::Eq => RelOp::Eq,
        };
        Ok(pathinv_ir::Formula::atom(term, op, Term::Const(0)))
    }
}

impl<K: Ord + Clone + fmt::Display> fmt::Display for LinExpr<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (x, c) in &self.coeffs {
            if first {
                write!(f, "{c}*{x}")?;
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}*{x}", c.abs())?;
            } else {
                write!(f, " + {c}*{x}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if !self.constant.is_zero() {
            if self.constant.is_negative() {
                write!(f, " - {}", self.constant.abs())?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

/// Relation of a normalised linear constraint `e ⋈ 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConstrOp {
    /// `e ≤ 0`
    Le,
    /// `e < 0`
    Lt,
    /// `e = 0`
    Eq,
}

impl fmt::Display for ConstrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstrOp::Le => write!(f, "<="),
            ConstrOp::Lt => write!(f, "<"),
            ConstrOp::Eq => write!(f, "="),
        }
    }
}

/// A normalised linear constraint `expr ⋈ 0`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LinConstraint<K: Ord + Clone = VarRef> {
    /// The linear expression.
    pub expr: LinExpr<K>,
    /// The relation against zero.
    pub op: ConstrOp,
}

impl<K: Ord + Clone> LinConstraint<K> {
    /// Builds `expr ⋈ 0`.
    pub fn new(expr: LinExpr<K>, op: ConstrOp) -> Self {
        LinConstraint { expr, op }
    }

    /// Builds `lhs ≤ rhs`.
    pub fn le(lhs: LinExpr<K>, rhs: LinExpr<K>) -> SmtResult<Self> {
        Ok(LinConstraint { expr: lhs.sub(&rhs)?, op: ConstrOp::Le })
    }

    /// Builds `lhs = rhs`.
    pub fn eq(lhs: LinExpr<K>, rhs: LinExpr<K>) -> SmtResult<Self> {
        Ok(LinConstraint { expr: lhs.sub(&rhs)?, op: ConstrOp::Eq })
    }

    /// Evaluates the constraint under an assignment.
    pub fn holds(&self, assignment: &impl Fn(&K) -> Rat) -> SmtResult<bool> {
        let v = self.expr.eval(assignment)?;
        Ok(match self.op {
            ConstrOp::Le => !v.is_positive(),
            ConstrOp::Lt => v.is_negative(),
            ConstrOp::Eq => v.is_zero(),
        })
    }
}

impl<K: Ord + Clone> LinConstraint<K> {
    /// Strengthens a strict inequality into a non-strict one using the
    /// integrality of the program variables: if every coefficient and the
    /// constant of `e < 0` are integers, then `e < 0` is equivalent to
    /// `e + 1 ≤ 0` over the integers.
    ///
    /// This is the standard tightening used by software model checkers that
    /// reason over a rational relaxation of integer programs; without it the
    /// relaxation would miss infeasibilities such as the one in the FORWARD
    /// path formula of §2.1 (`i < n ∧ i + 1 ≥ n` forces `n = i + 1` only over
    /// the integers).  Constraints with fractional coefficients are returned
    /// unchanged.
    pub fn tighten_for_integers(&self) -> SmtResult<LinConstraint<K>> {
        if self.op != ConstrOp::Lt {
            return Ok(self.clone());
        }
        let all_integer = self.expr.terms().all(|(_, c)| c.is_integer())
            && self.expr.constant_part().is_integer();
        if !all_integer {
            return Ok(self.clone());
        }
        let mut expr = self.expr.clone();
        expr.add_constant(Rat::ONE)?;
        Ok(LinConstraint { expr, op: ConstrOp::Le })
    }
}

impl LinConstraint<VarRef> {
    /// Converts an IR atom into a normalised constraint.
    ///
    /// # Errors
    ///
    /// `!=` atoms are rejected (they require a case split and are handled by
    /// the solver layer), as are non-linear or non-arithmetic atoms.
    pub fn from_atom(a: &Atom) -> SmtResult<LinConstraint<VarRef>> {
        let lhs = LinExpr::from_term(&a.lhs)?;
        let rhs = LinExpr::from_term(&a.rhs)?;
        let (expr, op) = match a.op {
            RelOp::Le => (lhs.sub(&rhs)?, ConstrOp::Le),
            RelOp::Lt => (lhs.sub(&rhs)?, ConstrOp::Lt),
            RelOp::Ge => (rhs.sub(&lhs)?, ConstrOp::Le),
            RelOp::Gt => (rhs.sub(&lhs)?, ConstrOp::Lt),
            RelOp::Eq => (lhs.sub(&rhs)?, ConstrOp::Eq),
            RelOp::Ne => {
                return Err(SmtError::unsupported(
                    "disequality atoms must be split before reaching linear arithmetic",
                ))
            }
        };
        Ok(LinConstraint { expr, op })
    }
}

impl<K: Ord + Clone + fmt::Display> fmt::Display for LinConstraint<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} 0", self.expr, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_ir::Formula;

    fn x() -> VarRef {
        VarRef::cur("x".into())
    }
    fn y() -> VarRef {
        VarRef::cur("y".into())
    }

    #[test]
    fn from_term_linear() {
        // 2*x + 3*y - 5
        let t = Term::var("x").scale(2).add(Term::var("y").scale(3)).sub(Term::int(5));
        let e = LinExpr::from_term(&t).unwrap();
        assert_eq!(e.coeff(&x()), Rat::int(2));
        assert_eq!(e.coeff(&y()), Rat::int(3));
        assert_eq!(e.constant_part(), Rat::int(-5));
    }

    #[test]
    fn from_term_constant_times_expression() {
        let t = Term::int(3).mul(Term::var("n"));
        let e = LinExpr::from_term(&t).unwrap();
        assert_eq!(e.coeff(&VarRef::cur("n".into())), Rat::int(3));
    }

    #[test]
    fn from_term_rejects_nonlinear() {
        let t = Term::var("x").mul(Term::var("y"));
        assert!(matches!(LinExpr::from_term(&t), Err(SmtError::NonLinear { .. })));
    }

    #[test]
    fn from_term_rejects_arrays() {
        let t = Term::var("a").select(Term::var("i"));
        assert!(matches!(LinExpr::from_term(&t), Err(SmtError::SortMismatch { .. })));
    }

    #[test]
    fn coefficients_cancel() {
        let t = Term::var("x").sub(Term::var("x"));
        let e = LinExpr::from_term(&t).unwrap();
        assert!(e.is_constant());
        assert!(e.constant_part().is_zero());
    }

    #[test]
    fn arithmetic_on_expressions() {
        let a = LinExpr::var(x());
        let b = LinExpr::var(y()).scale(Rat::int(2)).unwrap();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.coeff(&y()), Rat::int(2));
        let diff = sum.sub(&LinExpr::var(x())).unwrap();
        assert_eq!(diff.coeff(&x()), Rat::ZERO);
        assert_eq!(diff.vars(), vec![y()]);
    }

    #[test]
    fn substitution() {
        // x + 2y  with  x -> y + 1  gives 3y + 1
        let e = LinExpr::var(x()).add(&LinExpr::var(y()).scale(Rat::int(2)).unwrap()).unwrap();
        let s = e
            .substitute(&|k: &VarRef| {
                if *k == x() {
                    LinExpr::var(y()).add(&LinExpr::constant(Rat::ONE)).unwrap()
                } else {
                    LinExpr::var(*k)
                }
            })
            .unwrap();
        assert_eq!(s.coeff(&y()), Rat::int(3));
        assert_eq!(s.constant_part(), Rat::ONE);
    }

    #[test]
    fn evaluation() {
        let e = LinExpr::var(x()).add(&LinExpr::constant(Rat::int(4))).unwrap();
        let v = e.eval(&|_| Rat::int(2)).unwrap();
        assert_eq!(v, Rat::int(6));
    }

    #[test]
    fn atom_conversion_normalises_direction() {
        // x >= y  becomes  y - x <= 0
        let f = Formula::ge(Term::var("x"), Term::var("y"));
        let atoms = f.atoms();
        let c = LinConstraint::from_atom(&atoms[0]).unwrap();
        assert_eq!(c.op, ConstrOp::Le);
        assert_eq!(c.expr.coeff(&x()), Rat::MINUS_ONE);
        assert_eq!(c.expr.coeff(&y()), Rat::ONE);
    }

    #[test]
    fn atom_conversion_rejects_disequality() {
        let f = Formula::ne(Term::var("x"), Term::var("y"));
        assert!(LinConstraint::from_atom(&f.atoms()[0]).is_err());
    }

    #[test]
    fn constraint_holds() {
        let c = LinConstraint::from_atom(&Formula::le(Term::var("x"), Term::int(3)).atoms()[0])
            .unwrap();
        assert!(c.holds(&|_| Rat::int(3)).unwrap());
        assert!(!c.holds(&|_| Rat::int(4)).unwrap());
        let strict =
            LinConstraint::from_atom(&Formula::lt(Term::var("x"), Term::int(3)).atoms()[0])
                .unwrap();
        assert!(!strict.holds(&|_| Rat::int(3)).unwrap());
    }

    #[test]
    fn display_forms() {
        let e = LinExpr::var(x())
            .add(&LinExpr::scaled_var(y(), Rat::int(-2)))
            .unwrap()
            .add(&LinExpr::constant(Rat::int(7)))
            .unwrap();
        let s = e.to_string();
        assert!(s.contains("1*x"));
        assert!(s.contains("- 2*y"));
        assert!(s.contains("+ 7"));
        assert_eq!(LinExpr::<VarRef>::constant(Rat::int(3)).to_string(), "3");
    }

    #[test]
    fn generic_key_type() {
        // The expression machinery works over any ordered key, e.g. strings
        // naming template parameters.
        let mut e: LinExpr<String> = LinExpr::zero();
        e.add_term("p1".to_string(), Rat::int(2)).unwrap();
        e.add_term("p2".to_string(), Rat::int(-1)).unwrap();
        assert_eq!(e.vars().len(), 2);
    }
}
