//! Fourier–Motzkin elimination of variables from conjunctions of linear
//! constraints.
//!
//! Used to project intermediate SSA variables out of composed basic-path
//! relations (strongest-postcondition propagation in `pathinv-invgen`) and as
//! an independently testable quantifier-elimination substrate.  The
//! procedure is exact over the rationals; its worst case is exponential, but
//! the systems it is applied to here (a handful of constraints per basic
//! path) are far below that regime.

use crate::error::SmtResult;
use crate::linexpr::{ConstrOp, LinConstraint};
use crate::rat::Rat;
use std::fmt::Debug;

/// Eliminates each variable in `vars` from the conjunction `constraints`,
/// returning an equivalent (over the remaining variables) conjunction.
///
/// Equalities mentioning an eliminated variable are used as definitions and
/// substituted; remaining occurrences are eliminated by combining each lower
/// bound with each upper bound.
///
/// # Errors
///
/// Propagates arithmetic overflow errors.
pub fn eliminate<K: Ord + Clone + Debug>(
    constraints: &[LinConstraint<K>],
    vars: &[K],
) -> SmtResult<Vec<LinConstraint<K>>> {
    let mut current: Vec<LinConstraint<K>> = constraints.to_vec();
    for v in vars {
        current = eliminate_one(&current, v)?;
    }
    Ok(current)
}

fn eliminate_one<K: Ord + Clone + Debug>(
    constraints: &[LinConstraint<K>],
    v: &K,
) -> SmtResult<Vec<LinConstraint<K>>> {
    // Prefer substitution through an equality that mentions v.
    if let Some(pos) =
        constraints.iter().position(|c| c.op == ConstrOp::Eq && !c.expr.coeff(v).is_zero())
    {
        let def = &constraints[pos];
        let a = def.expr.coeff(v);
        // v = -(rest)/a  where def.expr = a*v + rest = 0.
        let mut rest = def.expr.clone();
        rest.add_term(v.clone(), a.neg()?)?;
        let v_def = rest.scale(Rat::MINUS_ONE.div(a)?)?;
        let mut out = Vec::new();
        for (i, c) in constraints.iter().enumerate() {
            if i == pos {
                continue;
            }
            let coeff = c.expr.coeff(v);
            if coeff.is_zero() {
                out.push(c.clone());
            } else {
                let mut expr = c.expr.clone();
                expr.add_term(v.clone(), coeff.neg()?)?;
                let expr = expr.add(&v_def.scale(coeff)?)?;
                out.push(LinConstraint::new(expr, c.op));
            }
        }
        return Ok(out);
    }

    // Otherwise combine lower and upper bounds on v.
    let mut lowers = Vec::new(); // constraints giving  v >= ...  (coefficient < 0)
    let mut uppers = Vec::new(); // constraints giving  v <= ...  (coefficient > 0)
    let mut rest = Vec::new();
    for c in constraints {
        let coeff = c.expr.coeff(v);
        if coeff.is_zero() {
            rest.push(c.clone());
        } else if coeff.is_positive() {
            uppers.push(c.clone());
        } else {
            lowers.push(c.clone());
        }
    }
    let mut out = rest;
    for lo in &lowers {
        for up in &uppers {
            let a = up.expr.coeff(v); // > 0
            let b = lo.expr.coeff(v).neg()?; // > 0
                                             // b*up + a*lo eliminates v.
            let combined = up.expr.scale(b)?.add(&lo.expr.scale(a)?)?;
            let op = if lo.op == ConstrOp::Lt || up.op == ConstrOp::Lt {
                ConstrOp::Lt
            } else {
                ConstrOp::Le
            };
            out.push(LinConstraint::new(combined, op));
        }
    }
    Ok(out)
}

/// Projects the constraints onto `keep`: eliminates every variable that
/// occurs in the constraints but is not in `keep`.
pub fn project<K: Ord + Clone + Debug>(
    constraints: &[LinConstraint<K>],
    keep: &[K],
) -> SmtResult<Vec<LinConstraint<K>>> {
    let mut to_eliminate = Vec::new();
    for c in constraints {
        for v in c.expr.vars() {
            if !keep.contains(&v) && !to_eliminate.contains(&v) {
                to_eliminate.push(v);
            }
        }
    }
    eliminate(constraints, &to_eliminate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex;
    use pathinv_ir::{Formula, Term, VarRef};

    fn c(f: Formula) -> LinConstraint<VarRef> {
        LinConstraint::from_atom(&f.atoms()[0]).unwrap()
    }
    fn x() -> VarRef {
        VarRef::cur("x".into())
    }
    fn y() -> VarRef {
        VarRef::cur("y".into())
    }

    #[test]
    fn eliminating_a_bounded_variable_combines_bounds() {
        // x <= y, y <= 5  |- eliminate y: x <= 5.
        let cs = vec![
            c(Formula::le(Term::var("x"), Term::var("y"))),
            c(Formula::le(Term::var("y"), Term::int(5))),
        ];
        let out = eliminate(&cs, &[y()]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].expr.coeff(&x()), Rat::ONE);
        assert_eq!(out[0].expr.constant_part(), Rat::int(-5));
        assert_eq!(out[0].op, ConstrOp::Le);
    }

    #[test]
    fn equalities_are_substituted() {
        // y = x + 1, y <= 5  |- eliminate y: x + 1 <= 5.
        let cs = vec![
            c(Formula::eq(Term::var("y"), Term::var("x").add(Term::int(1)))),
            c(Formula::le(Term::var("y"), Term::int(5))),
        ];
        let out = eliminate(&cs, &[y()]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].expr.coeff(&x()), Rat::ONE);
        assert_eq!(out[0].expr.constant_part(), Rat::int(-4));
    }

    #[test]
    fn strictness_is_preserved() {
        let cs = vec![
            c(Formula::lt(Term::var("x"), Term::var("y"))),
            c(Formula::le(Term::var("y"), Term::int(0))),
        ];
        let out = eliminate(&cs, &[y()]).unwrap();
        assert_eq!(out[0].op, ConstrOp::Lt);
    }

    #[test]
    fn projection_preserves_satisfiability() {
        // A satisfiable system stays satisfiable after projection, and the
        // projection no longer mentions the eliminated variables.
        let cs = vec![
            c(Formula::le(Term::var("x"), Term::var("y"))),
            c(Formula::le(Term::var("y"), Term::var("z"))),
            c(Formula::ge(Term::var("z"), Term::int(0))),
        ];
        let out = project(&cs, &[x()]).unwrap();
        for cst in &out {
            assert_eq!(cst.expr.vars(), vec![x()]);
        }
        assert!(simplex::solve(&out).unwrap().is_sat());
    }

    #[test]
    fn projection_preserves_unsatisfiability() {
        let cs = vec![
            c(Formula::le(Term::var("x"), Term::var("y"))),
            c(Formula::le(Term::var("y"), Term::var("x").sub(Term::int(1)))),
        ];
        assert!(!simplex::solve(&cs).unwrap().is_sat());
        let out = project(&cs, &[x()]).unwrap();
        assert!(!simplex::solve(&out).unwrap().is_sat(), "projection must stay infeasible");
    }

    #[test]
    fn unconstrained_variable_elimination_drops_its_constraints() {
        let cs = vec![c(Formula::le(Term::var("y"), Term::int(5)))];
        let out = eliminate(&cs, &[y()]).unwrap();
        assert!(out.is_empty());
    }
}
