//! Property tests for the incremental solving layer: a [`SolverContext`]
//! driven through a random sequence of push/assume/pop operations must
//! answer every satisfiability and entailment query exactly like a fresh
//! stateless [`Solver`] given the equivalent conjunction — with caching on
//! (where repeated stack states replay memoized answers) and with caching
//! off.  This is the soundness argument for the query cache: a hit is
//! observationally indistinguishable from re-solving.

use pathinv_ir::{Formula, Term};
use pathinv_smt::{Solver, SolverContext};
use proptest::prelude::*;

/// One step of a random interaction with the context.
#[derive(Clone, Debug)]
enum StackOp {
    Push,
    Pop,
    Assume(Formula),
}

/// A random linear atom `a*x + b*y + c ⋈ 0` over two variables with small
/// coefficients — small enough that conjunctions stay cheap to decide, rich
/// enough to produce both satisfiable and unsatisfiable stacks.
fn atom_strategy() -> impl Strategy<Value = Formula> {
    (-3i128..=3, -3i128..=3, -4i128..=4, 0u8..=4).prop_map(|(a, b, c, op)| {
        let lhs = Term::int(a)
            .mul(Term::var("x"))
            .add(Term::int(b).mul(Term::var("y")))
            .add(Term::int(c));
        let rhs = Term::int(0);
        match op {
            0 => Formula::le(lhs, rhs),
            1 => Formula::lt(lhs, rhs),
            2 => Formula::ge(lhs, rhs),
            3 => Formula::eq(lhs, rhs),
            _ => Formula::ne(lhs, rhs),
        }
    })
}

fn op_strategy() -> impl Strategy<Value = StackOp> {
    prop_oneof![
        Just(StackOp::Push),
        Just(StackOp::Pop),
        atom_strategy().prop_map(StackOp::Assume),
        atom_strategy().prop_map(StackOp::Assume),
    ]
}

/// A shadow model of the context: the flat assumption list plus the frame
/// heights, maintained with plain `Vec` operations.
#[derive(Default)]
struct Shadow {
    assumptions: Vec<Formula>,
    frames: Vec<usize>,
}

impl Shadow {
    fn apply(&mut self, op: &StackOp) {
        match op {
            StackOp::Push => self.frames.push(self.assumptions.len()),
            StackOp::Pop => {
                if let Some(h) = self.frames.pop() {
                    self.assumptions.truncate(h);
                }
            }
            StackOp::Assume(f) => self.assumptions.push(f.clone()),
        }
    }

    fn conjunction(&self) -> Formula {
        Formula::and(self.assumptions.clone())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After every operation of a random stack script, the context's
    /// satisfiability answer equals a fresh solver's answer on the
    /// equivalent conjunction, and the cached and uncached contexts agree.
    #[test]
    fn random_stack_scripts_match_fresh_solver(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        let fresh = Solver::new();
        let mut cached = SolverContext::new();
        let mut uncached = SolverContext::uncached();
        let mut shadow = Shadow::default();
        for op in &ops {
            match op {
                StackOp::Push => {
                    cached.push();
                    uncached.push();
                }
                StackOp::Pop => {
                    cached.pop();
                    uncached.pop();
                }
                StackOp::Assume(f) => {
                    cached.assume(f.clone());
                    uncached.assume(f.clone());
                }
            }
            shadow.apply(op);
            prop_assert_eq!(cached.num_assumptions(), shadow.assumptions.len());
            let expected = fresh.is_sat(&shadow.conjunction()).expect("small systems stay in budget");
            let got_cached = cached.is_sat().expect("context must stay in budget");
            let got_uncached = uncached.is_sat().expect("context must stay in budget");
            prop_assert_eq!(got_cached, expected);
            prop_assert_eq!(got_uncached, expected);
        }
        // Entailment of each assumed atom (and one foreign atom) must also
        // match the fresh solver on the final stack.
        let ante = shadow.conjunction();
        let mut goals: Vec<Formula> = shadow.assumptions.clone();
        goals.push(Formula::ge(Term::var("x").add(Term::var("y")), Term::int(-9)));
        for goal in goals {
            let expected = fresh.entails(&ante, &goal).expect("entailment stays in budget");
            prop_assert_eq!(cached.entails(&goal).expect("context entailment"), expected);
            prop_assert_eq!(uncached.entails(&goal).expect("context entailment"), expected);
        }
        // Replaying the whole script's final query hits the cache, and the
        // cache never answered differently from the fresh solver above.
        let stats = cached.stats();
        prop_assert!(stats.cache_hits <= stats.queries);
    }

    /// Replaying an identical stack script against the *same* context
    /// answers every query from the id-keyed cache: the hash-consed
    /// cons-chain stack identity is reproducible, so the second pass adds
    /// no cache entries, hits on every query, and agrees with the first
    /// pass (and therefore with the fresh solver, by the test above).
    #[test]
    fn replayed_scripts_hit_the_id_keyed_cache(ops in proptest::collection::vec(op_strategy(), 1..10)) {
        let mut ctx = SolverContext::new();
        let run = |ctx: &mut SolverContext| -> Vec<bool> {
            // An outer frame brackets the whole script so the replay starts
            // from the identical (empty) stack; script pops never cross it.
            ctx.push();
            let mut answers = Vec::new();
            for op in &ops {
                match op {
                    StackOp::Push => ctx.push(),
                    StackOp::Pop => {
                        if ctx.depth() > 1 {
                            ctx.pop();
                        }
                    }
                    StackOp::Assume(f) => ctx.assume(f.clone()),
                }
                answers.push(ctx.is_sat().expect("small systems stay in budget"));
            }
            while ctx.depth() > 0 {
                ctx.pop();
            }
            answers
        };
        let first = run(&mut ctx);
        let entries_after_first = ctx.stats().cache_entries;
        let hits_before = ctx.stats().cache_hits;
        let second = run(&mut ctx);
        prop_assert_eq!(first, second);
        let stats = ctx.stats();
        prop_assert_eq!(stats.cache_entries, entries_after_first);
        prop_assert_eq!(stats.cache_hits, hits_before + ops.len() as u64);
    }

    /// Popping every frame restores the exact pre-push answers: the stack is
    /// checked before pushing, after pushing extra constraints, and after
    /// popping them again.
    #[test]
    fn pop_restores_previous_answers(
        base in proptest::collection::vec(atom_strategy(), 0..4),
        extra in proptest::collection::vec(atom_strategy(), 1..4),
    ) {
        let fresh = Solver::new();
        let mut ctx = SolverContext::new();
        for f in &base {
            ctx.assume(f.clone());
        }
        let before = ctx.is_sat().expect("base stack in budget");
        prop_assert_eq!(before, fresh.is_sat(&Formula::and(base.clone())).unwrap());
        ctx.push();
        for f in &extra {
            ctx.assume(f.clone());
        }
        let mut all = base.clone();
        all.extend(extra.iter().cloned());
        let inner = ctx.is_sat().expect("pushed stack in budget");
        prop_assert_eq!(inner, fresh.is_sat(&Formula::and(all)).unwrap());
        prop_assert!(ctx.pop());
        let after = ctx.is_sat().expect("post-pop stack in budget");
        prop_assert_eq!(after, before);
        // The post-pop query is a replay of the pre-push query: cache hit.
        prop_assert!(ctx.stats().cache_hits >= 1);
    }
}
