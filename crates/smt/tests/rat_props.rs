//! Property tests for the `Rat` fast paths: the `den == 1` integer
//! shortcuts and the ZERO/ONE short-circuits in `add`/`mul` must agree with
//! the general cross-multiply-and-normalise path on every input.

use pathinv_smt::{Rat, SmtResult};
use proptest::prelude::*;

/// The general (slow) addition: cross-multiply, then normalise.  This is
/// the code path `Rat::add` takes when no fast path applies; reproducing it
/// through the public constructor makes the fast paths checkable against
/// it on *every* input.
fn add_slow(a: Rat, b: Rat) -> SmtResult<Rat> {
    Rat::new(a.numer() * b.denom() + b.numer() * a.denom(), a.denom() * b.denom())
}

/// The general (slow) multiplication.
fn mul_slow(a: Rat, b: Rat) -> SmtResult<Rat> {
    Rat::new(a.numer() * b.numer(), a.denom() * b.denom())
}

fn rat_strategy() -> impl Strategy<Value = Rat> {
    // Biased toward integers (including 0 and ±1) so the fast paths are
    // exercised heavily, but with enough proper fractions to cover the
    // general path and mixed cases.  (The vendored proptest stub has no
    // weighted `prop_oneof`; repeating an arm plays the same role.)
    prop_oneof![
        (-50i128..=50).prop_map(Rat::int),
        (-50i128..=50).prop_map(Rat::int),
        Just(Rat::ZERO),
        Just(Rat::ONE),
        Just(Rat::MINUS_ONE),
        (-50i128..=50, 1i128..=12).prop_map(|(n, d)| Rat::new(n, d).unwrap()),
        (-50i128..=50, 1i128..=12).prop_map(|(n, d)| Rat::new(n, d).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `add` agrees with the general path on every operand pair.
    #[test]
    fn fast_add_matches_slow_add(a in rat_strategy(), b in rat_strategy()) {
        prop_assert_eq!(a.add(b).unwrap(), add_slow(a, b).unwrap());
    }

    /// `mul` agrees with the general path on every operand pair.
    #[test]
    fn fast_mul_matches_slow_mul(a in rat_strategy(), b in rat_strategy()) {
        prop_assert_eq!(a.mul(b).unwrap(), mul_slow(a, b).unwrap());
    }

    /// `sub` (built on `add`'s fast paths) agrees with the general path.
    #[test]
    fn fast_sub_matches_slow_sub(a in rat_strategy(), b in rat_strategy()) {
        let slow = Rat::new(
            a.numer() * b.denom() - b.numer() * a.denom(),
            a.denom() * b.denom(),
        ).unwrap();
        prop_assert_eq!(a.sub(b).unwrap(), slow);
    }

    /// The results of the fast paths keep the representation invariant
    /// (lowest terms, positive denominator), observable through repeated
    /// arithmetic agreeing with exact integer arithmetic.
    #[test]
    fn fast_paths_preserve_normalisation(a in rat_strategy(), b in rat_strategy()) {
        let sum = a.add(b).unwrap();
        prop_assert!(sum.denom() > 0);
        prop_assert!(gcd(sum.numer().abs(), sum.denom()) == 1,
            "fraction must stay in lowest terms: {}", sum);
        let product = a.mul(b).unwrap();
        prop_assert!(product.denom() > 0);
        prop_assert!(gcd(product.numer().abs(), product.denom()) == 1,
            "fraction must stay in lowest terms: {}", product);
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.max(1), b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}
