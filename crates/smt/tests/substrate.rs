//! Cross-checks on the decision-procedure substrate:
//!
//! * the general simplex and Fourier–Motzkin elimination must agree on the
//!   satisfiability of random linear systems (both are exact over the
//!   rationals), simplex models must satisfy every constraint, and Farkas
//!   certificates must verify;
//! * congruence closure must decide satisfiability of equality chains with
//!   a disequality correctly, including through uninterpreted function
//!   applications.

use pathinv_ir::{Symbol, Term, VarRef};
use pathinv_smt::{
    fourier_motzkin, lra_solve, CongruenceClosure, ConstrOp, LinConstraint, LinExpr, LpResult, Rat,
};
use proptest::prelude::*;

const VARS: [&str; 3] = ["x", "y", "z"];

fn vref(name: &str) -> VarRef {
    VarRef::cur(Symbol::intern(name))
}

/// A random normalized constraint `c1*x + c2*y + c3*z + d ⋈ 0`.
fn constraint_strategy() -> impl Strategy<Value = LinConstraint<VarRef>> {
    let coeff = -3i128..=3;
    let op = prop_oneof![Just(ConstrOp::Le), Just(ConstrOp::Lt), Just(ConstrOp::Eq)];
    (coeff.clone(), coeff.clone(), coeff, -5i128..=5, op).prop_map(|(a, b, c, d, op)| {
        let mut e = LinExpr::constant(Rat::int(d));
        for (name, k) in VARS.iter().zip([a, b, c]) {
            e.add_term(vref(name), Rat::int(k)).expect("small coefficients cannot overflow");
        }
        LinConstraint::new(e, op)
    })
}

/// Full Fourier–Motzkin elimination decides satisfiability: after projecting
/// out every variable, the residue is variable-free and the conjunction is
/// satisfiable iff every residual (constant) constraint holds.
fn fm_is_sat(constraints: &[LinConstraint<VarRef>]) -> bool {
    let residue =
        fourier_motzkin::eliminate(constraints, &VARS.iter().map(|v| vref(v)).collect::<Vec<_>>())
            .expect("elimination on small systems cannot overflow");
    residue.iter().all(|c| {
        assert!(c.expr.vars().is_empty(), "residue must be variable-free");
        c.holds(&|_| Rat::ZERO).expect("constant evaluation cannot fail")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Simplex and Fourier–Motzkin agree on random systems; models and
    /// Farkas certificates check out.
    #[test]
    fn simplex_and_fourier_motzkin_agree(
        constraints in proptest::collection::vec(constraint_strategy(), 1..6)
    ) {
        let fm_sat = fm_is_sat(&constraints);
        match lra_solve(&constraints).expect("small systems cannot overflow") {
            LpResult::Sat(model) => {
                prop_assert!(
                    fm_sat,
                    "simplex found a model but Fourier–Motzkin says unsat: {constraints:?}"
                );
                for c in &constraints {
                    prop_assert!(
                        c.holds(&|k: &VarRef| {
                            model.get(k).copied().unwrap_or(Rat::ZERO)
                        }).expect("model evaluation cannot fail"),
                        "simplex model violates {c:?}"
                    );
                }
            }
            LpResult::Unsat(cert) => {
                prop_assert!(
                    !fm_sat,
                    "simplex says unsat but Fourier–Motzkin found the system satisfiable: \
                     {constraints:?}"
                );
                prop_assert!(
                    cert.verify(&constraints).expect("certificate check cannot overflow"),
                    "Farkas certificate fails to verify for {constraints:?}"
                );
            }
        }
    }

    /// An equality chain `t_0 = t_1 = ... = t_n` makes the endpoints equal;
    /// adding `t_0 != t_n` is inconsistent, and omitting one link is not.
    #[test]
    fn congruence_closure_on_equality_chains(
        n in 2usize..8,
        missing in 0usize..8,
        use_apps in proptest::prelude::any::<u8>(),
    ) {
        let use_apps = use_apps.is_multiple_of(2);
        let term = |i: usize| {
            let v = Term::var(format!("c{i}").as_str());
            if use_apps { Term::app("f", vec![v]) } else { v }
        };

        // Complete chain: endpoints merge, a disequality breaks consistency.
        let mut cc = CongruenceClosure::new();
        for i in 0..n {
            cc.assert_eq(&term(i), &term(i + 1));
        }
        prop_assert!(cc.is_consistent());
        prop_assert!(cc.are_equal(&term(0), &term(n)));
        cc.assert_ne(&term(0), &term(n));
        prop_assert!(!cc.is_consistent(), "t0 = ... = tn together with t0 != tn must be unsat");

        // Chain with one missing link: the endpoints stay separate, so the
        // same disequality remains satisfiable.
        let missing = missing % n;
        let mut cc = CongruenceClosure::new();
        for i in 0..n {
            if i != missing {
                cc.assert_eq(&term(i), &term(i + 1));
            }
        }
        cc.assert_ne(&term(0), &term(n));
        prop_assert!(
            cc.is_consistent(),
            "with link {missing} missing, t0 != tn must be satisfiable"
        );
        prop_assert!(!cc.are_equal(&term(0), &term(n)));
    }

    /// Congruence propagates through function applications: merging the
    /// chain endpoints merges their images under `f`.
    #[test]
    fn congruence_propagates_through_applications(n in 1usize..6) {
        let var = |i: usize| Term::var(format!("d{i}").as_str());
        let mut cc = CongruenceClosure::new();
        let f0 = Term::app("g", vec![var(0)]);
        let fn_ = Term::app("g", vec![var(n)]);
        cc.add_term(&f0);
        cc.add_term(&fn_);
        prop_assert!(!cc.are_equal(&f0, &fn_));
        for i in 0..n {
            cc.assert_eq(&var(i), &var(i + 1));
        }
        prop_assert!(cc.are_equal(&f0, &fn_), "g(d0) = g(dn) must follow from the chain");
        prop_assert!(cc.is_consistent());
    }
}
