//! Property test for irreducible-infeasible-subsystem (IIS) extraction:
//! on every random infeasible system, the subsystem named by
//! `IncrementalSimplex::minimal_infeasible_subsystem` must itself be
//! infeasible, and dropping *any* single row of it must make the remainder
//! satisfiable (irreducibility — the defining property of a minimal Farkas
//! conflict).

use pathinv_ir::{Symbol, VarRef};
use pathinv_smt::{lra_solve, ConstrOp, IncrementalSimplex, LinConstraint, LinExpr, Rat};
use proptest::prelude::*;

const VARS: [&str; 3] = ["x", "y", "z"];

fn vref(name: &str) -> VarRef {
    VarRef::cur(Symbol::intern(name))
}

/// A random normalized constraint `c1*x + c2*y + c3*z + d ⋈ 0`, biased
/// toward small coefficients so infeasible combinations are common.
fn constraint_strategy() -> impl Strategy<Value = LinConstraint<VarRef>> {
    let coeff = -2i128..=2;
    let op = prop_oneof![Just(ConstrOp::Le), Just(ConstrOp::Lt), Just(ConstrOp::Eq)];
    (coeff.clone(), coeff.clone(), coeff, -4i128..=4, op).prop_map(|(a, b, c, d, op)| {
        let mut e = LinExpr::constant(Rat::int(d));
        for (name, k) in VARS.iter().zip([a, b, c]) {
            e.add_term(vref(name), Rat::int(k)).expect("small coefficients cannot overflow");
        }
        LinConstraint::new(e, op)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// IIS extraction returns an infeasible, irreducible subsystem of every
    /// infeasible input system (satisfiable inputs are skipped — there is
    /// no conflict to extract).
    #[test]
    fn iis_is_infeasible_and_irreducible(
        constraints in proptest::collection::vec(constraint_strategy(), 2..8)
    ) {
        let mut tab = IncrementalSimplex::new();
        for c in &constraints {
            tab.push_constraint(c).expect("small systems cannot overflow");
        }
        if tab.check().expect("small systems cannot overflow") {
            // Satisfiable: nothing to extract.
            prop_assert!(tab.conflict_core().is_none());
            return Ok(());
        }
        let core = tab.minimal_infeasible_subsystem().expect("failed check pending");
        prop_assert!(!core.is_empty());
        let sub: Vec<LinConstraint<VarRef>> =
            core.iter().map(|&i| constraints[i].clone()).collect();
        prop_assert!(
            !lra_solve(&sub).expect("small systems cannot overflow").is_sat(),
            "IIS must be infeasible: {core:?} of {constraints:?}"
        );
        for drop in 0..sub.len() {
            let mut reduced = sub.clone();
            reduced.remove(drop);
            prop_assert!(
                lra_solve(&reduced).expect("small systems cannot overflow").is_sat(),
                "dropping row {drop} of the IIS must make it satisfiable: \
                 {core:?} of {constraints:?}"
            );
        }
    }
}
