//! Integration tests for the batch harness: `.pinv` file loading and
//! end-to-end verification of the committed sample programs across worker
//! threads.

use pathinv_cli::{load_pinv_file, make_tasks, run_batch, EngineChoice, RefinerChoice};
use std::process::Command;

fn program_path(name: &str) -> String {
    format!("{}/../../programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Runs the real `pathinv-cli` binary and returns its exit code.
fn run_cli(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_pathinv-cli"))
        .args(args)
        .output()
        .expect("pathinv-cli binary must run")
        .status
        .code()
        .expect("pathinv-cli must exit normally")
}

fn temp_pinv(name: &str, src: &str) -> String {
    let dir = std::env::temp_dir().join("pathinv-cli-exit-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, src).unwrap();
    path.to_str().unwrap().to_string()
}

/// Exit-code contract: a task that *errors* (here: nonlinear arithmetic the
/// solver rejects) must fail the run, even though the harness completes and
/// reports it.
#[test]
fn errored_tasks_exit_nonzero() {
    let bad = temp_pinv("nonlinear.pinv", "proc nl(x: int) { assert(x * x >= 0); }");
    assert_eq!(run_cli(&["--quiet", &bad]), 1, "an errored task must exit 1");
}

/// Non-`safe` verdicts are results, not failures: an unsafe program exits 0.
#[test]
fn unsafe_verdicts_exit_zero() {
    let buggy = temp_pinv("buggy.pinv", "proc b(x: int) { x = 1; assert(x == 2); }");
    assert_eq!(run_cli(&["--quiet", &buggy]), 0, "a falsified program is a completed task");
}

/// A file that cannot be loaded fails the run even when every loadable task
/// succeeds.
#[test]
fn load_failures_exit_nonzero() {
    let ok = temp_pinv("fine.pinv", "proc ok(x: int) { x = 1; assert(x == 1); }");
    assert_eq!(run_cli(&["--quiet", &ok, "/nonexistent/nope.pinv"]), 1);
}

/// Usage errors are distinguished from task failures.
#[test]
fn usage_errors_exit_two() {
    assert_eq!(run_cli(&["--refiner", "bogus"]), 2);
    assert_eq!(run_cli(&["--engine", "bogus"]), 2);
    assert_eq!(run_cli(&["--engine", "bmc", "--max-refinements", "3", "x.pinv"]), 2);
    assert_eq!(run_cli(&["--engine", "pdr", "--refiner", "both", "x.pinv"]), 2);
    assert_eq!(run_cli(&[]), 2, "no inputs is a usage error");
}

/// The portfolio cross-checks engines end-to-end through the real binary:
/// agreeing engines exit 0 even when some report `unknown`.
#[test]
fn portfolio_agreement_exits_zero() {
    let safe = temp_pinv("pf_safe.pinv", "proc ok(x: int) { x = 1; assert(x == 1); }");
    let buggy = temp_pinv("pf_bug.pinv", "proc b(x: int) { x = 1; assert(x == 2); }");
    assert_eq!(run_cli(&["--quiet", "--engine", "portfolio", &safe, &buggy]), 0);
}

/// A single non-CEGAR engine is selectable on its own; a bounded `unknown`
/// is a completed task, not a failure.
#[test]
fn single_engine_selection_runs_bmc_alone() {
    let loopy = temp_pinv(
        "pf_loop.pinv",
        "proc l(n: int) {
            var i: int;
            assume(n >= 0);
            i = 0;
            while (i < n) { i = i + 1; }
            assert(i >= n);
        }",
    );
    assert_eq!(run_cli(&["--quiet", "--engine", "bmc", &loopy]), 0);
}

#[test]
fn missing_and_malformed_files_are_reported_not_panicked() {
    let err = load_pinv_file("/nonexistent/nope.pinv").unwrap_err();
    assert!(err.contains("nope.pinv"), "{err}");

    let dir = std::env::temp_dir().join("pathinv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.pinv");
    std::fs::write(&bad, "proc broken( { oops").unwrap();
    let err = load_pinv_file(bad.to_str().unwrap()).unwrap_err();
    assert!(err.contains("parse error"), "{err}");
}

#[test]
fn committed_sample_programs_verify_as_documented() {
    let programs = vec![
        load_pinv_file(&program_path("lockstep.pinv")).unwrap(),
        load_pinv_file(&program_path("array_reset_bug.pinv")).unwrap(),
    ];
    let report = run_batch(make_tasks(programs, EngineChoice::Cegar, RefinerChoice::Both, None), 4);
    assert_eq!(report.tasks.len(), 4);
    for t in &report.tasks {
        if t.program_name.ends_with("lockstep.pinv") {
            assert_eq!(t.verdict, "safe", "{}/{}: {}", t.program_name, t.refiner, t.detail);
        } else {
            assert_eq!(t.verdict, "unsafe", "{}/{}: {}", t.program_name, t.refiner, t.detail);
        }
    }
}

#[test]
fn triple_sum_needs_the_relational_path_invariant() {
    let programs = vec![load_pinv_file(&program_path("triple_sum.pinv")).unwrap()];
    let report = run_batch(
        make_tasks(programs, EngineChoice::Cegar, RefinerChoice::PathInvariants, None),
        1,
    );
    assert_eq!(report.tasks.len(), 1);
    assert_eq!(
        report.tasks[0].verdict, "safe",
        "triple_sum must be proved by path invariants: {}",
        report.tasks[0].detail
    );
    // The proof is found in a handful of refinements, not by unrolling.
    assert!(report.tasks[0].refinements <= 10, "{}", report.tasks[0].refinements);
}
