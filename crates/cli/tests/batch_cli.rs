//! Integration tests for the batch harness: `.pinv` file loading and
//! end-to-end verification of the committed sample programs across worker
//! threads.

use pathinv_cli::{load_pinv_file, make_tasks, run_batch, RefinerChoice};

fn program_path(name: &str) -> String {
    format!("{}/../../programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn missing_and_malformed_files_are_reported_not_panicked() {
    let err = load_pinv_file("/nonexistent/nope.pinv").unwrap_err();
    assert!(err.contains("nope.pinv"), "{err}");

    let dir = std::env::temp_dir().join("pathinv-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.pinv");
    std::fs::write(&bad, "proc broken( { oops").unwrap();
    let err = load_pinv_file(bad.to_str().unwrap()).unwrap_err();
    assert!(err.contains("parse error"), "{err}");
}

#[test]
fn committed_sample_programs_verify_as_documented() {
    let programs = vec![
        load_pinv_file(&program_path("lockstep.pinv")).unwrap(),
        load_pinv_file(&program_path("array_reset_bug.pinv")).unwrap(),
    ];
    let report = run_batch(make_tasks(programs, RefinerChoice::Both, None), 4);
    assert_eq!(report.tasks.len(), 4);
    for t in &report.tasks {
        if t.program_name.ends_with("lockstep.pinv") {
            assert_eq!(t.verdict, "safe", "{}/{}: {}", t.program_name, t.refiner, t.detail);
        } else {
            assert_eq!(t.verdict, "unsafe", "{}/{}: {}", t.program_name, t.refiner, t.detail);
        }
    }
}

#[test]
fn triple_sum_needs_the_relational_path_invariant() {
    let programs = vec![load_pinv_file(&program_path("triple_sum.pinv")).unwrap()];
    let report = run_batch(make_tasks(programs, RefinerChoice::PathInvariants, None), 1);
    assert_eq!(report.tasks.len(), 1);
    assert_eq!(
        report.tasks[0].verdict, "safe",
        "triple_sum must be proved by path invariants: {}",
        report.tasks[0].detail
    );
    // The proof is found in a handful of refinements, not by unrolling.
    assert!(report.tasks[0].refinements <= 10, "{}", report.tasks[0].refinements);
}
