//! Fault-injection integration tests for the service daemon, driving the
//! *real* `pathinv-cli` binary over its Unix socket and stdin front ends:
//! panicking jobs, overdue jobs, malformed protocol lines, corrupted cache
//! journals, warm restarts, and mid-job SIGTERM drains.  Each scenario
//! asserts the robustness contract of DESIGN.md §14 from the outside — the
//! daemon must never die, never hang, and never serve a wrong verdict.

use pathinv_cli::json::{self, Json};
use pathinv_cli::{run_batch, BatchTask, TaskEngine};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SAFE_SRC: &str = "proc ok(x: int) { x = 1; assert(x == 1); }";
const BUG_SRC: &str = "proc bug(x: int) { x = 1; assert(x == 2); }";

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("pathinv-serve-cli-{}-{n}-{tag}", std::process::id()))
}

/// A daemon child whose `Drop` kills the process, so a failing test never
/// leaks daemons into the test host.
struct Daemon {
    child: Child,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `pathinv-cli serve --socket ...` and waits for the socket file.
fn spawn_daemon(socket: &Path, extra: &[&str]) -> Daemon {
    let mut args = vec!["serve".to_string(), "--socket".to_string(), socket.display().to_string()];
    args.extend(extra.iter().map(|s| s.to_string()));
    let child = Command::new(env!("CARGO_BIN_EXE_pathinv-cli"))
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon must spawn");
    let start = Instant::now();
    while !socket.exists() {
        assert!(start.elapsed() < Duration::from_secs(30), "daemon never created its socket");
        std::thread::sleep(Duration::from_millis(10));
    }
    Daemon { child }
}

struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(socket: &Path) -> Client {
        let stream = UnixStream::connect(socket).expect("client must connect");
        let reader = BufReader::new(stream.try_clone().expect("stream must clone"));
        Client { writer: stream, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send must succeed");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv must succeed");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    }

    /// Reads lines until EOF (used after SIGTERM, when the daemon drains
    /// and closes the connection).
    fn recv_until_eof(&mut self) -> Vec<Json> {
        let mut out = Vec::new();
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => out.push(json::parse(line.trim()).expect("responses parse")),
            }
        }
        out
    }
}

fn verify_request(id: i64, name: &str, source: &str, extra: &[(&str, Json)]) -> String {
    let mut fields = vec![
        ("op", Json::Str("verify".to_string())),
        ("id", Json::Int(id)),
        ("name", Json::Str(name.to_string())),
        ("program", Json::Str(source.to_string())),
    ];
    fields.extend(extra.iter().cloned());
    Json::object(fields).compact()
}

fn task_field<'j>(response: &'j Json, key: &str) -> &'j str {
    response.get("task").and_then(|t| t.get(key)).and_then(Json::as_str).unwrap_or_default()
}

/// A panicking engine job yields an errored *task* — and the daemon keeps
/// serving correct verdicts on the same connection afterwards.
#[test]
fn panicking_job_is_isolated_and_the_daemon_keeps_serving() {
    let socket = temp_path("panic.sock");
    let _daemon = spawn_daemon(&socket, &[]);
    let mut client = Client::connect(&socket);
    client.send(&verify_request(
        1,
        "boom",
        SAFE_SRC,
        &[("engine", Json::Str("panic-shim".to_string()))],
    ));
    let r = client.recv();
    assert_eq!(r.get("status").and_then(Json::as_str), Some("done"), "{r:?}");
    assert_eq!(task_field(&r, "verdict"), "error", "{r:?}");
    assert!(task_field(&r, "detail").contains("panicked"), "{r:?}");

    client.send(&verify_request(2, "after", BUG_SRC, &[]));
    let r = client.recv();
    assert_eq!(task_field(&r, "verdict"), "unsafe", "daemon must survive the panic: {r:?}");
}

/// An overdue job (the divergent spin shim under a 300 ms deadline) comes
/// back `cancelled` well before twice its deadline.
#[test]
fn overdue_job_cancels_within_twice_its_deadline() {
    let socket = temp_path("deadline.sock");
    let _daemon = spawn_daemon(&socket, &[]);
    let mut client = Client::connect(&socket);
    let start = Instant::now();
    client.send(&verify_request(
        1,
        "spin",
        SAFE_SRC,
        &[("engine", Json::Str("spin-shim".to_string())), ("timeout_ms", Json::Int(300))],
    ));
    let r = client.recv();
    let elapsed = start.elapsed();
    assert_eq!(task_field(&r, "verdict"), "cancelled", "{r:?}");
    assert!(task_field(&r, "detail").contains("deadline of 300 ms"), "{r:?}");
    assert!(elapsed < Duration::from_millis(2500), "cancel took {elapsed:?}, deadline was 300 ms");
}

/// Malformed protocol lines produce one `error` response each; the stream —
/// and the daemon — keep going.
#[test]
fn malformed_lines_error_and_the_stream_continues() {
    let socket = temp_path("malformed.sock");
    let _daemon = spawn_daemon(&socket, &[]);
    let mut client = Client::connect(&socket);
    for hostile in ["not json at all", "{\"op\":\"no-such-op\"}", "{\"op\":\"verify\"}", "[1,2]"] {
        client.send(hostile);
        let r = client.recv();
        assert_eq!(r.get("status").and_then(Json::as_str), Some("error"), "{hostile} -> {r:?}");
    }
    client.send("{\"op\":\"ping\"}");
    assert_eq!(client.recv().get("status").and_then(Json::as_str), Some("pong"));
}

/// A corrupted journal tail is truncated on recovery: the intact prefix
/// still serves cache hits, the corrupted-away entries are recomputed, and
/// every verdict stays correct.  The daemon must not crash, hang, or serve
/// garbage off a half-written record — the crash-recovery contract.
#[test]
fn corrupted_journal_recovers_and_verdicts_stay_correct() {
    let socket = temp_path("corrupt.sock");
    let cache = temp_path("corrupt.journal");
    let cache_arg = cache.display().to_string();
    {
        let mut daemon = spawn_daemon(&socket, &["--cache", &cache_arg]);
        let mut client = Client::connect(&socket);
        client.send(&verify_request(1, "first", SAFE_SRC, &[]));
        let r = client.recv();
        assert_eq!(task_field(&r, "verdict"), "safe", "{r:?}");
        client.send(&verify_request(2, "second", BUG_SRC, &[]));
        let r = client.recv();
        assert_eq!(task_field(&r, "verdict"), "unsafe", "{r:?}");
        client.send("{\"op\":\"shutdown\"}");
        let ack = client.recv();
        assert_eq!(ack.get("status").and_then(Json::as_str), Some("shutdown"), "{ack:?}");
        assert_eq!(daemon.child.wait().expect("daemon exits").code(), Some(0));
    }

    // Flip one byte inside the *last* record's checksum, simulating a torn
    // write; the first record must survive recovery.
    let mut journal = std::fs::read(&cache).expect("journal exists");
    let last_line_start =
        journal[..journal.len() - 1].iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    journal[last_line_start] = journal[last_line_start].wrapping_add(1);
    std::fs::write(&cache, &journal).expect("journal rewritten");

    let socket2 = temp_path("corrupt2.sock");
    let _daemon = spawn_daemon(&socket2, &["--cache", &cache_arg]);
    let mut client = Client::connect(&socket2);
    client.send(&verify_request(3, "first", SAFE_SRC, &[]));
    let r = client.recv();
    assert_eq!(task_field(&r, "verdict"), "safe", "{r:?}");
    assert_eq!(r.get("cached"), Some(&Json::Bool(true)), "intact prefix must hit: {r:?}");
    client.send(&verify_request(4, "second", BUG_SRC, &[]));
    let r = client.recv();
    assert_eq!(task_field(&r, "verdict"), "unsafe", "recomputed verdict must be right: {r:?}");
    assert_eq!(r.get("cached"), Some(&Json::Bool(false)), "corrupted entry must recompute: {r:?}");
    std::fs::remove_file(&cache).ok();
}

/// SIGTERM mid-job: the in-flight divergent job is cancelled with an honest
/// result line, the connection drains, and the daemon exits 0.
#[test]
fn sigterm_mid_job_drains_with_exit_zero() {
    let socket = temp_path("sigterm.sock");
    let mut daemon = spawn_daemon(&socket, &[]);
    let mut client = Client::connect(&socket);
    client.send(&verify_request(
        1,
        "spin-forever",
        SAFE_SRC,
        &[("engine", Json::Str("spin-shim".to_string()))],
    ));
    // Give the worker a moment to pick the job up, then terminate mid-job.
    std::thread::sleep(Duration::from_millis(300));
    let status = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("kill must run");
    assert!(status.success());
    let responses = client.recv_until_eof();
    let cancelled = responses.iter().any(|r| task_field(r, "verdict") == "cancelled");
    assert!(cancelled, "the in-flight job must get an honest cancelled line: {responses:?}");
    let exit = daemon.child.wait().expect("daemon exits");
    assert_eq!(exit.code(), Some(0), "SIGTERM drain must exit 0, got {exit:?}");
}

/// The stdin front end round-trips the same protocol and EOF drains: pipe a
/// ping, a verify, and a shutdown through the binary and check the stream.
#[test]
fn stdin_mode_round_trips_and_protocol_shutdown_acks() {
    let input = format!(
        "{}\n{}\n{}\n",
        "{\"op\":\"ping\"}",
        verify_request(1, "via-stdin", BUG_SRC, &[]),
        "{\"op\":\"shutdown\"}"
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_pathinv-cli"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon must spawn");
    child.stdin.take().expect("stdin").write_all(input.as_bytes()).expect("write stdin");
    let out = child.wait_with_output().expect("daemon exits");
    assert_eq!(out.status.code(), Some(0), "stdin mode must exit 0");
    let lines: Vec<Json> = String::from_utf8(out.stdout)
        .expect("stdout is UTF-8")
        .lines()
        .map(|l| json::parse(l).expect(l))
        .collect();
    let status_of = |i: usize| lines[i].get("status").and_then(Json::as_str).unwrap_or_default();
    assert_eq!(lines.len(), 3, "{lines:?}");
    assert_eq!(status_of(0), "pong");
    assert_eq!(status_of(1), "done");
    assert_eq!(task_field(&lines[1], "verdict"), "unsafe");
    assert_eq!(status_of(2), "shutdown");
}

/// Batch-side panic isolation: a panicking engine task in a batch reports
/// `error` without taking down the other tasks in the same run.
#[test]
fn batch_panicking_task_errors_without_killing_the_batch() {
    let program = pathinv_ir::parse_program(SAFE_SRC).expect("program parses");
    let tasks = vec![
        BatchTask {
            program_name: "boom".to_string(),
            engine: TaskEngine::PanicShim,
            program: program.clone(),
            certify: false,
            timeout_ms: None,
        },
        BatchTask {
            program_name: "fine".to_string(),
            engine: TaskEngine::Cegar(pathinv_core::CegarConfig::path_invariants()),
            program,
            certify: false,
            timeout_ms: None,
        },
    ];
    let report = run_batch(tasks, 2);
    assert_eq!(report.tasks.len(), 2);
    let boom = report.tasks.iter().find(|t| t.program_name == "boom").expect("boom task");
    assert_eq!(boom.verdict, "error", "{}", boom.detail);
    assert!(boom.detail.contains("panicked"), "{}", boom.detail);
    let fine = report.tasks.iter().find(|t| t.program_name == "fine").expect("fine task");
    assert_eq!(fine.verdict, "safe", "{}", fine.detail);
}

/// Batch-side `--timeout-ms`: an overdue task reports the honest
/// `cancelled` verdict; a generous deadline changes nothing.
#[test]
fn batch_timeout_cancels_overdue_tasks_and_spares_quick_ones() {
    let program = pathinv_ir::parse_program(SAFE_SRC).expect("program parses");
    let tasks = vec![
        BatchTask {
            program_name: "spin".to_string(),
            engine: TaskEngine::SpinShim,
            program: program.clone(),
            certify: false,
            timeout_ms: Some(200),
        },
        BatchTask {
            program_name: "quick".to_string(),
            engine: TaskEngine::Cegar(pathinv_core::CegarConfig::path_invariants()),
            program,
            certify: false,
            timeout_ms: Some(60_000),
        },
    ];
    let start = Instant::now();
    let report = run_batch(tasks, 2);
    assert!(start.elapsed() < Duration::from_secs(30), "the spin task must not hang the batch");
    let spin = report.tasks.iter().find(|t| t.program_name == "spin").expect("spin task");
    assert_eq!(spin.verdict, "cancelled", "{}", spin.detail);
    let quick = report.tasks.iter().find(|t| t.program_name == "quick").expect("quick task");
    assert_eq!(quick.verdict, "safe", "{}", quick.detail);
}

/// CLI validation for the new flags: a zero timeout is a usage error, and
/// the serve subcommand rejects an unknown flag.
#[test]
fn cli_flag_validation_exits_two() {
    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_pathinv-cli"))
            .args(args)
            .output()
            .expect("binary runs")
            .status
            .code()
            .expect("binary exits")
    };
    assert_eq!(run(&["--timeout-ms", "0", "x.pinv"]), 2);
    assert_eq!(run(&["--timeout-ms", "nope", "x.pinv"]), 2);
    assert_eq!(run(&["serve", "--bogus"]), 2);
    assert_eq!(run(&["serve", "--workers", "0"]), 2);
}

/// Acceptance criterion (a): an *aborting* engine under `--isolate process`
/// yields an `error` task line — thread-level catch_unwind could never
/// absorb an abort — and the daemon keeps serving correct verdicts.
#[test]
fn aborting_engine_under_process_isolation_is_contained() {
    let socket = temp_path("abort.sock");
    let _daemon = spawn_daemon(&socket, &["--isolate", "process", "--retries", "0"]);
    let mut client = Client::connect(&socket);
    client.send(&verify_request(
        1,
        "hard-crash",
        SAFE_SRC,
        &[("engine", Json::Str("abort-shim".to_string()))],
    ));
    let r = client.recv();
    assert_eq!(r.get("status").and_then(Json::as_str), Some("done"), "{r:?}");
    assert_eq!(task_field(&r, "verdict"), "error", "{r:?}");
    assert!(
        task_field(&r, "detail").contains("signal"),
        "the abort must be reported as a child death, got: {r:?}"
    );
    // The daemon — not just the worker — survived: a normal job still runs,
    // in its own child process, and reports the right verdict.
    client.send(&verify_request(2, "after", BUG_SRC, &[]));
    let r = client.recv();
    assert_eq!(task_field(&r, "verdict"), "unsafe", "daemon must survive the abort: {r:?}");
    client.send(&verify_request(3, "after-safe", SAFE_SRC, &[]));
    let r = client.recv();
    assert_eq!(task_field(&r, "verdict"), "safe", "{r:?}");
}

/// Acceptance criterion (b): repeated faults trip the engine's circuit
/// breaker (status `quarantined` while open, other engines unaffected), and
/// after the cooldown a half-open probe is admitted and recovers the
/// engine — all through the real binary.
#[test]
fn breaker_quarantines_a_faulting_engine_and_recovers_after_cooldown() {
    const TWO_VAR: &str = "proc f(x: int, y: int) { x = 1; assert(x == 1); }";
    const ONE_VAR: &str = "proc f(x: int) { x = 1; assert(x == 1); }";
    let socket = temp_path("breaker.sock");
    let _daemon = spawn_daemon(
        &socket,
        &["--retries", "0", "--breaker-threshold", "2", "--breaker-cooldown-ms", "600"],
    );
    let mut client = Client::connect(&socket);
    let flaky = ("engine", Json::Str("flaky-shim".to_string()));
    // flaky-shim faults deterministically on two-variable programs: two
    // consecutive faults trip the breaker.
    for id in 1..=2 {
        client.send(&verify_request(id, "fault", TWO_VAR, std::slice::from_ref(&flaky)));
        let r = client.recv();
        assert_eq!(task_field(&r, "verdict"), "error", "{r:?}");
    }
    // Open: even a would-succeed submission is fast-failed.
    client.send(&verify_request(3, "quarantine-probe", ONE_VAR, std::slice::from_ref(&flaky)));
    let r = client.recv();
    assert_eq!(r.get("status").and_then(Json::as_str), Some("quarantined"), "{r:?}");
    assert_eq!(r.get("engine").and_then(Json::as_str), Some("flaky-shim"), "{r:?}");
    assert!(r.get("retry_after_ms").and_then(Json::as_int).is_some(), "{r:?}");
    // Other engines are not quarantined by flaky-shim's breaker.
    client.send(&verify_request(4, "bystander", BUG_SRC, &[]));
    let r = client.recv();
    assert_eq!(task_field(&r, "verdict"), "unsafe", "{r:?}");
    // After the cooldown the half-open probe is admitted; its success
    // closes the breaker and the engine serves normally again.
    std::thread::sleep(Duration::from_millis(800));
    client.send(&verify_request(5, "recovery-probe", ONE_VAR, std::slice::from_ref(&flaky)));
    let r = client.recv();
    assert_eq!(r.get("status").and_then(Json::as_str), Some("done"), "{r:?}");
    assert_eq!(task_field(&r, "verdict"), "unknown", "{r:?}");
    client.send(&verify_request(6, "recovered", ONE_VAR, &[flaky]));
    let r = client.recv();
    assert_eq!(r.get("status").and_then(Json::as_str), Some("done"), "closed again: {r:?}");
}

/// Acceptance criterion (c): a journal full of superseded records is
/// compacted by the daemon (tiny `--cache-compact-bytes`), the daemon is
/// then killed with SIGKILL — no drain, no fsync courtesy — and a fresh
/// daemon over the compacted journal serves byte-identical warm verdicts.
#[test]
fn compacted_journal_survives_a_sigkill_crash_with_identical_warm_verdicts() {
    let socket = temp_path("compact.sock");
    let cache = temp_path("compact.journal");
    let cache_arg = cache.display().to_string();
    // Phase 1: capture the cold verdicts through a daemon, clean shutdown.
    let (cold_safe, cold_bug);
    {
        let mut daemon = spawn_daemon(&socket, &["--cache", &cache_arg]);
        let mut client = Client::connect(&socket);
        client.send(&verify_request(1, "first", SAFE_SRC, &[]));
        let r = client.recv();
        cold_safe =
            (task_field(&r, "verdict").to_string(), task_field(&r, "cert_digest").to_string());
        client.send(&verify_request(2, "second", BUG_SRC, &[]));
        let r = client.recv();
        cold_bug =
            (task_field(&r, "verdict").to_string(), task_field(&r, "cert_digest").to_string());
        client.send("{\"op\":\"shutdown\"}");
        client.recv();
        assert_eq!(daemon.child.wait().expect("daemon exits").code(), Some(0));
    }
    // Bloat the journal with superseded records so the daemon's next insert
    // crosses both compaction triggers (size + half-dead).
    {
        let mut bloat = pathinv_cli::cache::VerdictCache::open(&cache);
        assert!(bloat.warnings.is_empty(), "{:?}", bloat.warnings);
        for i in 0..30 {
            bloat.insert(
                "dummy-superseded-key",
                Json::object(vec![
                    ("engine", Json::Str("cegar".to_string())),
                    ("verdict", Json::Str("unknown".to_string())),
                    ("iteration", Json::Int(i)),
                ]),
            );
        }
    }
    let bloated_lines = std::fs::read_to_string(&cache).expect("journal exists").lines().count();
    assert!(bloated_lines > 30, "the bloat must be on disk ({bloated_lines} lines)");
    // Phase 2: a daemon with a tiny compaction threshold; its first
    // cacheable insert compacts the journal.  Then SIGKILL — a real crash.
    let socket2 = temp_path("compact2.sock");
    {
        let mut daemon =
            spawn_daemon(&socket2, &["--cache", &cache_arg, "--cache-compact-bytes", "64"]);
        let mut client = Client::connect(&socket2);
        client.send(&verify_request(
            3,
            "third",
            "proc third(x: int) { x = 3; assert(x == 3); }",
            &[],
        ));
        let r = client.recv();
        assert_eq!(r.get("status").and_then(Json::as_str), Some("done"), "{r:?}");
        let status = Command::new("kill")
            .args(["-KILL", &daemon.child.id().to_string()])
            .status()
            .expect("kill must run");
        assert!(status.success());
        let _ = daemon.child.wait();
    }
    let compacted_lines = std::fs::read_to_string(&cache).expect("journal exists").lines().count();
    assert!(
        compacted_lines <= 6,
        "compaction must have rewritten the journal to live records only \
         ({bloated_lines} lines before, {compacted_lines} after)"
    );
    // Phase 3: a fresh daemon over the crashed-but-compacted journal must
    // serve the original verdicts warm and byte-identical.
    let socket3 = temp_path("compact3.sock");
    let _daemon = spawn_daemon(&socket3, &["--cache", &cache_arg]);
    let mut client = Client::connect(&socket3);
    client.send(&verify_request(4, "first", SAFE_SRC, &[]));
    let r = client.recv();
    assert_eq!(r.get("cached"), Some(&Json::Bool(true)), "must replay warm: {r:?}");
    assert_eq!(
        (task_field(&r, "verdict").to_string(), task_field(&r, "cert_digest").to_string()),
        cold_safe,
        "{r:?}"
    );
    client.send(&verify_request(5, "second", BUG_SRC, &[]));
    let r = client.recv();
    assert_eq!(r.get("cached"), Some(&Json::Bool(true)), "must replay warm: {r:?}");
    assert_eq!(
        (task_field(&r, "verdict").to_string(), task_field(&r, "cert_digest").to_string()),
        cold_bug,
        "{r:?}"
    );
    std::fs::remove_file(&cache).ok();
}

/// Satellite: many simultaneous connections past `--queue` each get exactly
/// one response — the excess `overloaded`, the admitted ones eventually
/// `done` — with zero dropped and zero duplicated replies.
#[test]
fn concurrent_clients_past_queue_capacity_each_get_exactly_one_response() {
    let socket = temp_path("overload.sock");
    let _daemon = spawn_daemon(&socket, &["--workers", "1", "--queue", "2"]);
    // Occupy the single worker so the queue is what the flood fights over.
    let mut occupier = Client::connect(&socket);
    occupier.send(&verify_request(
        100,
        "occupier",
        SAFE_SRC,
        &[("engine", Json::Str("spin-shim".to_string())), ("timeout_ms", Json::Int(800))],
    ));
    std::thread::sleep(Duration::from_millis(300));
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket);
                client.send(&verify_request(
                    i,
                    &format!("flood-{i}"),
                    SAFE_SRC,
                    &[
                        ("engine", Json::Str("spin-shim".to_string())),
                        ("timeout_ms", Json::Int(500)),
                    ],
                ));
                let r = client.recv();
                // Exactly one response per client: after it, the connection
                // must stay silent (a duplicate would land here).
                client.writer.shutdown(std::net::Shutdown::Write).ok();
                let extras = client.recv_until_eof();
                (i, r, extras)
            })
        })
        .collect();
    let mut statuses = std::collections::HashMap::new();
    for handle in handles {
        let (i, r, extras) = handle.join().expect("client thread");
        assert_eq!(r.get("id").and_then(Json::as_int), Some(i), "response routed to wrong id");
        let status = r.get("status").and_then(Json::as_str).unwrap_or("?").to_string();
        assert!(matches!(status.as_str(), "done" | "overloaded"), "{r:?}");
        assert!(extras.is_empty(), "client {i} got duplicated responses: {extras:?}");
        *statuses.entry(status).or_insert(0usize) += 1;
    }
    let overloaded = statuses.get("overloaded").copied().unwrap_or(0);
    let done = statuses.get("done").copied().unwrap_or(0);
    assert_eq!(overloaded + done, 10, "zero dropped responses: {statuses:?}");
    assert!(overloaded >= 7, "1 worker + queue 2 can admit at most 3 of 10 floods: {statuses:?}");
    // The occupier's job still completes honestly.
    let r = occupier.recv();
    assert_eq!(r.get("id").and_then(Json::as_int), Some(100), "{r:?}");
    assert_eq!(task_field(&r, "verdict"), "cancelled", "{r:?}");
}

/// A batch with a generous `--timeout-ms` through the real binary produces
/// the same exit code and verdicts as an undeadlined run.
#[test]
fn batch_timeout_flag_preserves_verdicts_through_the_binary() {
    let dir = std::env::temp_dir().join("pathinv-serve-cli-batch");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("quick.pinv");
    std::fs::write(&path, SAFE_SRC).unwrap();
    let code = Command::new(env!("CARGO_BIN_EXE_pathinv-cli"))
        .args(["--quiet", "--timeout-ms", "60000", path.to_str().unwrap()])
        .output()
        .expect("binary runs")
        .status
        .code()
        .expect("binary exits");
    assert_eq!(code, 0);
}
