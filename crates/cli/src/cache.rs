//! Crash-safe persistent verdict cache: the service's cross-run memo.
//!
//! The daemon memoizes deterministic verdicts keyed on
//! [`pathinv_core::job_fingerprint`] — a digest of the interned program
//! structure plus the engine configuration — so resubmitting an unchanged
//! program is `O(1)`: no engine run, no solver call, not even a parse of
//! anything but the job line.  The cache must survive daemon restarts and
//! *any* on-disk corruption without ever crashing or returning a wrong
//! verdict, so the design is deliberately minimal (DESIGN.md §14):
//!
//! * **Append-only journal.**  One record per line; inserts append and
//!   flush.  There is no in-place mutation, so a crash can only damage the
//!   *tail* of the file.
//! * **Per-record checksum.**  Every line is `<fnv64-hex> <compact-json>`;
//!   the checksum covers the JSON bytes.  A torn write, a flipped bit, or
//!   editor mangling fails the checksum.
//! * **Schema-versioned header.**  The first record declares
//!   [`CACHE_SCHEMA_VERSION`]; a journal written by an incompatible
//!   generation of the verifier is discarded wholesale (a *stale verdict is
//!   a wrong verdict* once engine semantics change — the fingerprint salt
//!   guards the key side, the header guards the record side).
//! * **Truncate-at-first-corruption recovery.**  On open, records are
//!   validated in order; the journal is truncated to the longest valid
//!   prefix and a warning describes what was dropped.  Worst case (garbage
//!   from byte 0) is a cold cache — never a crashed or lying daemon.
//! * **Crash-safe compaction.**  Superseded records (later records win)
//!   make the journal grow without bound; once it crosses a size threshold
//!   *and* at least half its records are dead, [`VerdictCache::compact`]
//!   rewrites the live map to `<journal>.tmp`, fsyncs, and atomically
//!   renames over the journal.  A crash before the rename leaves the old
//!   journal untouched (the stale `.tmp` is deleted on the next open); a
//!   crash after it leaves the complete compacted journal — there is no
//!   intermediate state.
//! * **Mid-run degradation.**  An append failure (disk full, journal
//!   unlinked, injected chaos) drops persistence for the rest of the run
//!   with a *one-time* stderr warning; the in-memory map keeps serving and
//!   later inserts are not re-attempted (and not re-warned).
//! * **Seeded fault injection.**  [`CacheChaos`] makes the journal lie on
//!   purpose — torn writes, failed writes, slow writes — deterministically
//!   from a seed, so the `chaos-smoke` harness (DESIGN.md §15) can prove
//!   the recovery story against an actively hostile disk.
//!
//! Only deterministic outcomes are admitted
//! ([`pathinv_core::JobOutcome::is_cacheable`]): `safe`/`unsafe`/`unknown`
//! are functions of (program, config), while `cancelled` and `error` are
//! functions of the weather.  A cached verdict is the *engine's* claim
//! replayed verbatim; it is inside the trusted base exactly as far as the
//! engine is — `--certify`-style auditing applies to the certificate digest
//! stored with the record, not to the replay (DESIGN.md §14 trust
//! boundary).

use crate::json::{self, Json};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Journal schema version; bump when the record layout (or anything that
/// makes old cached verdicts unreplayable) changes.  A header mismatch
/// discards the journal — cold cache, never a misread record.
pub const CACHE_SCHEMA_VERSION: i64 = 1;

/// Default journal size (bytes) past which an insert considers compaction.
pub const DEFAULT_COMPACT_BYTES: u64 = 1 << 20;

/// Seeded fault injector for journal writes: each insert rolls one of
/// *fail* (the append errors, exercising the degrade-to-memory path),
/// *torn* (only a prefix of the record reaches the disk, exercising
/// recovery), *slow* (the write stalls, exercising deadline margins), or
/// no fault.  Probabilities are per-mille and the stream is a deterministic
/// LCG, so a chaos run is reproducible from its seed.
#[derive(Clone, Debug)]
pub struct CacheChaos {
    state: u64,
    /// Per-mille probability of an injected append failure.
    pub fail_per_mille: u16,
    /// Per-mille probability of a torn (half-written) record.
    pub torn_per_mille: u16,
    /// Per-mille probability of a stalled write.
    pub slow_per_mille: u16,
    /// Stall duration for slow writes, in milliseconds.
    pub slow_ms: u64,
}

/// One rolled fault (internal to [`VerdictCache::insert`]).
enum CacheFault {
    None,
    Fail,
    Torn,
    Slow(u64),
}

impl CacheChaos {
    /// The default chaos mix for `--chaos seed=N`: mostly clean writes with
    /// occasional stalls, tears, and failures.
    pub fn from_seed(seed: u64) -> CacheChaos {
        CacheChaos {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
            fail_per_mille: 8,
            torn_per_mille: 15,
            slow_per_mille: 40,
            slow_ms: 5,
        }
    }

    fn roll_fault(&mut self) -> CacheFault {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r = ((self.state >> 33) % 1000) as u16;
        if r < self.fail_per_mille {
            CacheFault::Fail
        } else if r < self.fail_per_mille + self.torn_per_mille {
            CacheFault::Torn
        } else if r < self.fail_per_mille + self.torn_per_mille + self.slow_per_mille {
            CacheFault::Slow(self.slow_ms)
        } else {
            CacheFault::None
        }
    }
}

/// The compaction scratch path: `<journal>.tmp`, always on the same
/// filesystem so the final rename is atomic.
fn compact_tmp_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".tmp");
    PathBuf::from(s)
}

/// FNV-1a 64 over `bytes`, the same digest primitive certificates use.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders one journal line (without the terminating newline): checksum,
/// space, compact body.
fn render_line(body: &Json) -> String {
    let body = body.compact();
    format!("{:016x} {body}", fnv64(body.as_bytes()))
}

/// Parses and verifies one journal line; `None` on any mismatch.
fn parse_line(line: &str) -> Option<Json> {
    let (sum, body) = line.split_at_checked(17)?;
    let sum = u64::from_str_radix(sum.strip_suffix(' ')?, 16).ok()?;
    if sum != fnv64(body.as_bytes()) {
        return None;
    }
    json::parse(body).ok()
}

fn header_record() -> Json {
    Json::object(vec![
        ("kind", Json::Str("header".to_string())),
        ("schema", Json::Int(CACHE_SCHEMA_VERSION)),
    ])
}

/// The persistent verdict cache: an in-memory map backed by the append-only
/// journal.  All file problems degrade to warnings plus a (partially) cold
/// cache; no method fails.
pub struct VerdictCache {
    /// Journal path; `None` for a purely in-memory cache (stdin mode without
    /// `--cache`).
    path: Option<PathBuf>,
    /// Append handle, positioned at the end of the valid prefix.
    file: Option<File>,
    /// Fingerprint → cached task record (the full task JSON minus the
    /// submission-specific fields, which the service re-stamps on replay).
    map: HashMap<String, Json>,
    /// Human-readable recovery warnings from [`VerdictCache::open`]; the
    /// caller logs them to stderr.  Empty when the journal was pristine.
    pub warnings: Vec<String>,
    /// Lookup hits since open.
    pub hits: u64,
    /// Lookup misses since open.
    pub misses: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// Bytes currently in the journal (valid prefix at open plus appends).
    journal_bytes: u64,
    /// Verdict records currently in the journal, *including* superseded
    /// duplicates — the live set is `map.len()`; the gap is what compaction
    /// reclaims.
    journal_records: u64,
    /// Journal size threshold for automatic compaction; `0` means
    /// [`DEFAULT_COMPACT_BYTES`].
    compact_threshold: u64,
    /// Whether a mid-run append failure already dropped persistence (the
    /// one-time warning has been emitted).
    degraded: bool,
    /// Seeded write-fault injector, when running under `--chaos`.
    chaos: Option<CacheChaos>,
}

impl VerdictCache {
    /// A cache with no backing file: memoizes within the process only.
    pub fn in_memory() -> VerdictCache {
        VerdictCache {
            path: None,
            file: None,
            map: HashMap::new(),
            warnings: Vec::new(),
            hits: 0,
            misses: 0,
            compactions: 0,
            journal_bytes: 0,
            journal_records: 0,
            compact_threshold: 0,
            degraded: false,
            chaos: None,
        }
    }

    /// Opens (or creates) the journal at `path`, recovering to the longest
    /// valid prefix: the file is truncated after the last record that
    /// checksums, parses, and carries the current schema, and every byte
    /// beyond it is dropped with a warning.  Never fails — an unopenable
    /// path degrades to an in-memory cache with a warning.
    pub fn open(path: &Path) -> VerdictCache {
        let mut cache = VerdictCache::in_memory();
        cache.path = Some(path.to_path_buf());
        // A stale compaction scratch file means a crash hit mid-compaction:
        // the rename never happened, the original journal is intact, and
        // the partial rewrite is garbage.  Delete it.
        let tmp = compact_tmp_path(path);
        if tmp.exists() && std::fs::remove_file(&tmp).is_ok() {
            cache.warnings.push(format!(
                "verdict cache {}: removed stale compaction file {} (crash mid-compaction)",
                path.display(),
                tmp.display()
            ));
        }
        let mut file =
            match OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)
            {
                Ok(f) => f,
                Err(e) => {
                    cache.warnings.push(format!(
                        "verdict cache {} cannot be opened ({e}); continuing without persistence",
                        path.display()
                    ));
                    return cache;
                }
            };
        let mut text = String::new();
        if let Err(e) = file.read_to_string(&mut text) {
            // Not UTF-8 (or unreadable): the whole journal is garbage.
            cache.warnings.push(format!(
                "verdict cache {} is unreadable ({e}); starting cold",
                path.display()
            ));
            text.clear();
        }
        let mut valid_len: u64 = 0;
        let mut dropped = None;
        let mut rest = text.as_str();
        let mut index = 0usize;
        while !rest.is_empty() {
            // A record must be a complete newline-terminated line: a tail
            // without `\n` is a torn write even if it happens to checksum.
            let Some(nl) = rest.find('\n') else {
                dropped = Some(format!("torn record {index} (no terminating newline)"));
                break;
            };
            let line = &rest[..nl];
            let Some(body) = parse_line(line) else {
                dropped = Some(format!("corrupt record {index} (checksum or syntax)"));
                break;
            };
            if index == 0 {
                let schema = body.get("schema").and_then(Json::as_int);
                if body.get("kind").and_then(Json::as_str) != Some("header")
                    || schema != Some(CACHE_SCHEMA_VERSION)
                {
                    dropped = Some(format!(
                        "schema {} journal (this verifier writes schema {CACHE_SCHEMA_VERSION})",
                        schema.map_or_else(|| "?".to_string(), |s| s.to_string()),
                    ));
                    break;
                }
            } else if let (Some(key), Some(task)) =
                (body.get("key").and_then(Json::as_str), body.get("task"))
            {
                // Later records win: replaying the journal converges to the
                // newest entry per fingerprint.
                cache.map.insert(key.to_string(), task.clone());
                cache.journal_records += 1;
            } else {
                dropped = Some(format!("malformed record {index} (missing key/task)"));
                break;
            }
            valid_len += nl as u64 + 1;
            rest = &rest[nl + 1..];
            index += 1;
        }
        if let Some(reason) = dropped {
            let lost = text.len() as u64 - valid_len;
            cache.warnings.push(format!(
                "verdict cache {}: recovered {} record(s), dropped {lost} byte(s) at {reason}",
                path.display(),
                cache.map.len(),
            ));
        }
        // Make the on-disk journal equal to the valid prefix, then position
        // for appends.  An empty (or fully discarded) journal gets a fresh
        // header.
        let header_line = render_line(&header_record());
        let result = file
            .set_len(valid_len)
            .and_then(|()| file.seek(SeekFrom::Start(valid_len)))
            .and_then(|_| {
                if valid_len == 0 {
                    writeln!(file, "{header_line}")?;
                    file.flush()?;
                }
                Ok(())
            });
        match result {
            Ok(()) => {
                cache.file = Some(file);
                cache.journal_bytes =
                    if valid_len == 0 { header_line.len() as u64 + 1 } else { valid_len };
            }
            Err(e) => cache.warnings.push(format!(
                "verdict cache {}: cannot repair journal ({e}); continuing without persistence",
                path.display()
            )),
        }
        cache
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a fingerprint, counting the hit or miss.
    pub fn lookup(&mut self, key: &str) -> Option<Json> {
        let found = self.map.get(key).cloned();
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Inserts a task record under `key`, appending it to the journal and
    /// flushing, so a crash immediately after the insert loses at most the
    /// in-flight record itself (and a torn tail is recovered away on the
    /// next open).  A failed append degrades the cache to in-memory for the
    /// rest of the run with a one-time warning (DESIGN.md §15) — it never
    /// errors, and it never retries the disk on every insert.  May trigger
    /// a compaction (see [`VerdictCache::compact`]).
    pub fn insert(&mut self, key: &str, task: Json) {
        let record = Json::object(vec![
            ("kind", Json::Str("verdict".to_string())),
            ("key", Json::Str(key.to_string())),
            ("task", task.clone()),
        ]);
        self.map.insert(key.to_string(), task);
        if self.file.is_none() {
            return;
        }
        let line = render_line(&record);
        match self.chaos.as_mut().map_or(CacheFault::None, CacheChaos::roll_fault) {
            CacheFault::Fail => {
                self.degrade("injected write failure (chaos)");
                return;
            }
            CacheFault::Torn => {
                // Only a prefix of the record reaches the disk, no newline:
                // exactly the tail a crash mid-write leaves behind.  The
                // next open recovers by truncating it away.
                let cut = line.len() / 2;
                let torn = line[..cut].to_string();
                match self.append_bytes(torn.as_bytes()) {
                    Ok(()) => self.journal_bytes += cut as u64,
                    Err(e) => self.degrade(&e.to_string()),
                }
                return;
            }
            CacheFault::Slow(ms) => std::thread::sleep(Duration::from_millis(ms)),
            CacheFault::None => {}
        }
        match self.append_bytes(format!("{line}\n").as_bytes()) {
            Ok(()) => {
                self.journal_bytes += line.len() as u64 + 1;
                self.journal_records += 1;
                self.maybe_compact();
            }
            Err(e) => self.degrade(&e.to_string()),
        }
    }

    /// Appends raw bytes to the journal and flushes.
    fn append_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let file = self.file.as_mut().expect("append_bytes requires an open journal");
        file.write_all(bytes)?;
        file.flush()
    }

    /// Drops persistence after a failed append: warns **once** on stderr,
    /// records the warning, and keeps serving from memory.  Later inserts
    /// skip the disk entirely instead of failing loudly every time.
    fn degrade(&mut self, why: &str) {
        let msg = format!("verdict cache append failed ({why}); continuing without persistence");
        if !self.degraded {
            self.degraded = true;
            eprintln!("pathinv-serve: {msg}");
        }
        self.warnings.push(msg);
        self.file = None;
    }

    /// Whether a mid-run append failure dropped persistence.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Compacts automatically once the journal is past the size threshold
    /// *and* at least half its records are superseded — a journal of purely
    /// live records gains nothing from a rewrite.
    fn maybe_compact(&mut self) {
        let threshold = if self.compact_threshold == 0 {
            DEFAULT_COMPACT_BYTES
        } else {
            self.compact_threshold
        };
        if self.journal_bytes >= threshold && self.journal_records >= 2 * self.map.len() as u64 {
            self.compact();
        }
    }

    /// Rewrites the journal to exactly the live map: header plus one record
    /// per fingerprint (sorted, so compaction output is deterministic).
    ///
    /// Crash-safety argument (DESIGN.md §15): the rewrite goes to
    /// `<journal>.tmp`, is fsynced, and is atomically renamed over the
    /// journal.  A crash *before* the rename leaves the original journal
    /// byte-for-byte intact (the stale `.tmp` is removed on the next open);
    /// a crash *after* it leaves the complete compacted journal.  No
    /// interleaving exposes a partially compacted file under the journal
    /// path.  Returns whether a compaction happened; a failed rewrite keeps
    /// the uncompacted journal and warns.
    pub fn compact(&mut self) -> bool {
        let Some(path) = self.path.clone() else { return false };
        if self.file.is_none() {
            return false;
        }
        let tmp = compact_tmp_path(&path);
        let mut keys: Vec<String> = self.map.keys().cloned().collect();
        keys.sort();
        let result = (|| -> std::io::Result<(File, u64)> {
            let mut out = File::create(&tmp)?;
            let mut bytes: u64 = 0;
            let header = render_line(&header_record());
            writeln!(out, "{header}")?;
            bytes += header.len() as u64 + 1;
            for key in &keys {
                let record = Json::object(vec![
                    ("kind", Json::Str("verdict".to_string())),
                    ("key", Json::Str(key.clone())),
                    ("task", self.map[key].clone()),
                ]);
                let line = render_line(&record);
                writeln!(out, "{line}")?;
                bytes += line.len() as u64 + 1;
            }
            out.sync_all()?;
            std::fs::rename(&tmp, &path)?;
            let file = OpenOptions::new().append(true).open(&path)?;
            Ok((file, bytes))
        })();
        match result {
            Ok((file, bytes)) => {
                self.file = Some(file);
                self.journal_bytes = bytes;
                self.journal_records = self.map.len() as u64;
                self.compactions += 1;
                true
            }
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                self.warnings.push(format!(
                    "verdict cache compaction failed ({e}); keeping the uncompacted journal"
                ));
                false
            }
        }
    }

    /// Bytes currently in the journal (0 for in-memory caches).
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    /// Overrides the automatic-compaction size threshold (`0` restores
    /// [`DEFAULT_COMPACT_BYTES`]).
    pub fn set_compact_threshold(&mut self, bytes: u64) {
        self.compact_threshold = bytes;
    }

    /// Arms seeded write-fault injection for every later insert.
    pub fn set_chaos(&mut self, chaos: CacheChaos) {
        self.chaos = Some(chaos);
    }

    /// Forces the journal to stable storage (the shutdown drain calls this;
    /// per-insert writes are already flushed, this adds an fsync).
    pub fn sync(&mut self) {
        if let Some(file) = &mut self.file {
            let _ = file.sync_all();
        }
    }

    /// The journal path, when persistent.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir()
            .join(format!("pathinv-cache-test-{}-{n}-{tag}.journal", std::process::id()))
    }

    fn sample_task(verdict: &str) -> Json {
        Json::object(vec![
            ("engine", Json::Str("cegar".to_string())),
            ("verdict", Json::Str(verdict.to_string())),
            ("cert_digest", Json::Str("0123456789abcdef".to_string())),
        ])
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = temp_path("roundtrip");
        let mut cache = VerdictCache::open(&path);
        assert!(cache.warnings.is_empty(), "{:?}", cache.warnings);
        cache.insert("aaaa", sample_task("safe"));
        cache.insert("bbbb", sample_task("unsafe"));
        drop(cache);
        let mut cache = VerdictCache::open(&path);
        assert!(cache.warnings.is_empty(), "{:?}", cache.warnings);
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.lookup("aaaa").unwrap().get("verdict").and_then(Json::as_str),
            Some("safe")
        );
        assert_eq!(cache.lookup("missing"), None);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_recovers_to_valid_prefix() {
        let path = temp_path("torn");
        let mut cache = VerdictCache::open(&path);
        cache.insert("aaaa", sample_task("safe"));
        cache.insert("bbbb", sample_task("unsafe"));
        drop(cache);
        // Tear the last record: drop its final 7 bytes (newline included).
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let mut cache = VerdictCache::open(&path);
        assert_eq!(cache.len(), 1, "the torn record is dropped, the prefix survives");
        assert!(cache.lookup("aaaa").is_some());
        assert!(cache.lookup("bbbb").is_none());
        assert_eq!(cache.warnings.len(), 1, "recovery must be loud: {:?}", cache.warnings);
        assert!(cache.warnings[0].contains("torn record"), "{:?}", cache.warnings);
        // The repair is durable: a third open sees a pristine journal.
        cache.insert("cccc", sample_task("unknown"));
        drop(cache);
        let cache = VerdictCache::open(&path);
        assert!(cache.warnings.is_empty(), "{:?}", cache.warnings);
        assert_eq!(cache.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_checksum_byte_drops_the_record_and_its_suffix() {
        let path = temp_path("bitflip");
        let mut cache = VerdictCache::open(&path);
        cache.insert("aaaa", sample_task("safe"));
        cache.insert("bbbb", sample_task("unsafe"));
        cache.insert("cccc", sample_task("unknown"));
        drop(cache);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Flip one checksum byte of the *middle* verdict record.
        let mut mangled: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        let flipped = if mangled[2].starts_with('0') { "1" } else { "0" };
        mangled[2].replace_range(0..1, flipped);
        std::fs::write(&path, format!("{}\n", mangled.join("\n"))).unwrap();
        let mut cache = VerdictCache::open(&path);
        // Truncate-at-first-corruption: record 2 *and everything after it*
        // are gone; an append-only journal cannot trust offsets past a
        // corrupt record.
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup("aaaa").is_some());
        assert!(cache.lookup("bbbb").is_none());
        assert!(cache.lookup("cccc").is_none());
        assert!(cache.warnings[0].contains("corrupt record 2"), "{:?}", cache.warnings);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_schema_version_discards_the_whole_journal() {
        let path = temp_path("schema");
        let header = Json::object(vec![
            ("kind", Json::Str("header".to_string())),
            ("schema", Json::Int(CACHE_SCHEMA_VERSION + 1)),
        ]);
        let record = Json::object(vec![
            ("kind", Json::Str("verdict".to_string())),
            ("key", Json::Str("aaaa".to_string())),
            ("task", sample_task("safe")),
        ]);
        std::fs::write(&path, format!("{}\n{}\n", render_line(&header), render_line(&record)))
            .unwrap();
        let mut cache = VerdictCache::open(&path);
        assert!(cache.is_empty(), "future-schema records must not be replayed");
        assert!(cache.lookup("aaaa").is_none());
        assert!(cache.warnings[0].contains("schema"), "{:?}", cache.warnings);
        // And the journal is reinitialized for the current generation.
        drop(cache);
        let cache = VerdictCache::open(&path);
        assert!(cache.warnings.is_empty(), "{:?}", cache.warnings);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_from_byte_zero_degrades_to_cold_cache() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"\x00\xffnot a journal at all\n\x7f").unwrap();
        let mut cache = VerdictCache::open(&path);
        assert!(cache.is_empty());
        assert_eq!(cache.warnings.len(), 1);
        cache.insert("aaaa", sample_task("safe"));
        drop(cache);
        let cache = VerdictCache::open(&path);
        assert!(cache.warnings.is_empty(), "{:?}", cache.warnings);
        assert_eq!(cache.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_triggers_reclaims_superseded_records_and_survives_reopen() {
        let path = temp_path("compact");
        let mut cache = VerdictCache::open(&path);
        cache.set_compact_threshold(512);
        // Hammer one key with superseded records until the journal crosses
        // the threshold with >= half its records dead.
        for i in 0..20 {
            cache.insert("aaaa", sample_task(if i % 2 == 0 { "safe" } else { "unsafe" }));
        }
        cache.insert("bbbb", sample_task("unknown"));
        assert!(cache.compactions > 0, "the threshold should have forced a compaction");
        assert!(
            cache.journal_bytes() < 512,
            "post-compaction journal holds only live records ({} bytes)",
            cache.journal_bytes()
        );
        let expect_a = cache.lookup("aaaa").unwrap();
        drop(cache);
        let mut cache = VerdictCache::open(&path);
        assert!(cache.warnings.is_empty(), "{:?}", cache.warnings);
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.lookup("aaaa").unwrap().compact(),
            expect_a.compact(),
            "compaction must preserve the newest record byte-identically"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compacted_journal_round_trips_through_crash_recovery() {
        let path = temp_path("compact-crash");
        let mut cache = VerdictCache::open(&path);
        for i in 0..10 {
            cache.insert("aaaa", sample_task(if i < 9 { "unknown" } else { "safe" }));
            cache.insert("bbbb", sample_task("unsafe"));
        }
        assert!(cache.compact(), "forced compaction must succeed");
        let warm_a = cache.lookup("aaaa").unwrap().compact();
        let warm_b = cache.lookup("bbbb").unwrap().compact();
        drop(cache);
        // Crash simulation 1: torn append after the compaction.
        let mut bytes = std::fs::read(&path).unwrap();
        let clean = bytes.clone();
        bytes.extend_from_slice(b"0123456789abcdef {\"kind\":\"verd");
        std::fs::write(&path, &bytes).unwrap();
        let mut cache = VerdictCache::open(&path);
        assert_eq!(cache.warnings.len(), 1, "{:?}", cache.warnings);
        assert_eq!(cache.lookup("aaaa").unwrap().compact(), warm_a);
        assert_eq!(cache.lookup("bbbb").unwrap().compact(), warm_b);
        drop(cache);
        // Crash simulation 2: a stale .tmp from a crash mid-compaction is
        // discarded and the journal itself is untouched.
        std::fs::write(&path, &clean).unwrap();
        std::fs::write(compact_tmp_path(&path), b"partial rewrite, never renamed").unwrap();
        let mut cache = VerdictCache::open(&path);
        assert!(!compact_tmp_path(&path).exists(), "stale .tmp must be removed");
        assert!(
            cache.warnings.iter().any(|w| w.contains("stale compaction")),
            "{:?}",
            cache.warnings
        );
        assert_eq!(cache.lookup("aaaa").unwrap().compact(), warm_a);
        assert_eq!(cache.lookup("bbbb").unwrap().compact(), warm_b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_write_failure_degrades_to_memory_with_one_warning() {
        let path = temp_path("chaos-fail");
        let mut cache = VerdictCache::open(&path);
        cache.set_chaos(CacheChaos {
            state: 7,
            fail_per_mille: 1000,
            torn_per_mille: 0,
            slow_per_mille: 0,
            slow_ms: 0,
        });
        cache.insert("aaaa", sample_task("safe"));
        cache.insert("bbbb", sample_task("unsafe"));
        cache.insert("cccc", sample_task("unknown"));
        assert!(cache.is_degraded());
        assert_eq!(cache.warnings.len(), 1, "degrade warns once, not per insert");
        assert!(cache.lookup("aaaa").is_some(), "memoization keeps serving from memory");
        assert!(cache.lookup("cccc").is_some());
        drop(cache);
        let cache = VerdictCache::open(&path);
        assert!(cache.is_empty(), "nothing was persisted after the injected failure");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_torn_write_is_recovered_away_on_reopen() {
        let path = temp_path("chaos-torn");
        let mut cache = VerdictCache::open(&path);
        cache.insert("aaaa", sample_task("safe"));
        cache.set_chaos(CacheChaos {
            state: 7,
            fail_per_mille: 0,
            torn_per_mille: 1000,
            slow_per_mille: 0,
            slow_ms: 0,
        });
        cache.insert("bbbb", sample_task("unsafe"));
        assert!(cache.lookup("bbbb").is_some(), "the in-memory map is unaffected by the tear");
        drop(cache);
        let mut cache = VerdictCache::open(&path);
        assert_eq!(cache.len(), 1, "the torn record is truncated away");
        assert_eq!(
            cache.lookup("aaaa").unwrap().get("verdict").and_then(Json::as_str),
            Some("safe"),
            "recovery never surfaces a mangled record as a verdict"
        );
        assert!(cache.warnings[0].contains("torn record"), "{:?}", cache.warnings);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unopenable_path_means_in_memory_operation() {
        let mut cache = VerdictCache::open(Path::new("/nonexistent-dir/zz/cache.journal"));
        assert_eq!(cache.warnings.len(), 1);
        cache.insert("aaaa", sample_task("safe"));
        assert!(cache.lookup("aaaa").is_some(), "memoization still works unpersisted");
    }

    /// Deterministically decodes a seed into a hostile detail string: mixes
    /// quotes, backslashes, newlines, control characters, and multi-byte
    /// unicode — everything the journal's one-record-per-line framing and
    /// the JSON string escaper must survive.
    fn hostile_detail(seed: u64, len: usize) -> String {
        const ALPHABET: [&str; 12] =
            ["a", "\"", "\\", "\n", "\t", "\r", "\u{1}", "λ", "∀", "{", "}", " "];
        let mut s = String::new();
        let mut state = seed;
        for _ in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(ALPHABET[(state >> 33) as usize % ALPHABET.len()]);
        }
        s
    }

    proptest! {
        /// Arbitrary verdict records — keys and task payloads with hostile
        /// strings (quotes, newlines, unicode, control characters) — survive
        /// the journal round-trip byte-exactly.
        #[test]
        fn journal_round_trips_arbitrary_records(
            entries in proptest::collection::vec(
                (0u64..u64::MAX, 0usize..40, -1_000_000i64..1_000_000),
                1..12,
            )
        ) {
            let path = temp_path("prop");
            let mut cache = VerdictCache::open(&path);
            let mut expect: HashMap<String, Json> = HashMap::new();
            for (key_seed, detail_len, n) in &entries {
                let key = format!("{:016x}", fnv64(&key_seed.to_le_bytes()));
                let detail = hostile_detail(*key_seed, *detail_len);
                let (key, detail) = (&key, &detail);
                let task = Json::object(vec![
                    ("verdict", Json::Str("unknown".to_string())),
                    ("detail", Json::Str(detail.clone())),
                    ("refinements", Json::Int(*n)),
                ]);
                cache.insert(key, task.clone());
                expect.insert(key.clone(), task);
            }
            drop(cache);
            let mut reopened = VerdictCache::open(&path);
            prop_assert!(reopened.warnings.is_empty(), "{:?}", reopened.warnings);
            prop_assert_eq!(reopened.len(), expect.len());
            for (key, task) in &expect {
                let got = reopened.lookup(key);
                prop_assert_eq!(got.as_ref(), Some(task));
            }
            std::fs::remove_file(&path).ok();
        }
    }
}
