//! Differential corpus checking: cross-engine verdict agreement.
//!
//! A second (and third) verification engine is only worth its keep if it can
//! be *trusted* — and the cheapest trust argument is an oracle check: run
//! every engine over every corpus program and demand that no two engines
//! reach *contradictory* conclusions.  Under the soundness contract of
//! [`VerificationEngine`](pathinv_core::VerificationEngine) (DESIGN.md §8),
//! a `safe` verdict carries a proof and an `unsafe` verdict carries a
//! validated counterexample, so `safe` vs `unsafe` on the same program is
//! always a bug in one engine.  `unknown` is "no opinion" — a bounded BMC
//! run or a PDR frame-bound give-up never counts as a disagreement — and an
//! *errored* task is reported per program so that an engine that crashes on
//! exactly one corpus entry cannot hide behind the others' verdicts.
//!
//! [`DifferentialReport::from_batch`] groups a portfolio
//! [`BatchReport`] by program; the CLI hard-fails (nonzero exit) when
//! [`DifferentialReport::disagreements`] is non-empty, and the
//! `differential-smoke` CI job runs exactly that over the full corpus.

use crate::json::Json;
use crate::{engine_rank, BatchReport};
use std::collections::BTreeMap;

/// One engine's verdict on one program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineVerdict {
    /// The engine name (`"cegar"`, `"bmc"`, `"pdr"`).
    pub engine: String,
    /// The refiner (CEGAR tasks) or [`NO_REFINER`](crate::NO_REFINER).
    pub refiner: String,
    /// `"safe"`, `"unsafe"`, `"unknown"`, or `"error"`.
    pub verdict: String,
}

impl EngineVerdict {
    /// The engine/refiner column label (`"cegar/path-invariants"`, `"bmc"`,
    /// ...), matching [`TaskReport::engine_label`](crate::TaskReport).
    pub fn label(&self) -> String {
        if self.refiner == crate::NO_REFINER {
            self.engine.clone()
        } else {
            format!("{}/{}", self.engine, self.refiner)
        }
    }
}

/// The cross-engine comparison for one program.
#[derive(Clone, Debug)]
pub struct ProgramDiff {
    /// Report name of the program.
    pub program: String,
    /// Every engine's verdict, in deterministic engine order.
    pub verdicts: Vec<EngineVerdict>,
    /// The portfolio verdict: the first conclusive (`safe`/`unsafe`) verdict
    /// in engine order, `"unknown"` when no engine concludes,
    /// `"disagreement"` when conclusive verdicts contradict each other.
    pub combined: String,
    /// Engines whose task errored on this program.
    pub errors: Vec<String>,
}

impl ProgramDiff {
    /// Whether conclusive verdicts contradict each other on this program.
    pub fn is_disagreement(&self) -> bool {
        self.combined == "disagreement"
    }
}

/// The differential section of a portfolio run.
#[derive(Clone, Debug)]
pub struct DifferentialReport {
    /// Per-program comparisons, in report order.
    pub programs: Vec<ProgramDiff>,
}

impl DifferentialReport {
    /// Groups a (portfolio) batch report by program — by name, not by
    /// adjacency, so even a hand-assembled report with interleaved task
    /// order cannot split a program into two groups and hide a conflict —
    /// and compares verdicts across engines.
    pub fn from_batch(report: &BatchReport) -> DifferentialReport {
        let mut by_program: BTreeMap<&str, ProgramDiff> = BTreeMap::new();
        for task in &report.tasks {
            let current =
                by_program.entry(task.program_name.as_str()).or_insert_with(|| ProgramDiff {
                    program: task.program_name.clone(),
                    verdicts: Vec::new(),
                    combined: String::new(),
                    errors: Vec::new(),
                });
            current.verdicts.push(EngineVerdict {
                engine: task.engine.clone(),
                refiner: task.refiner.clone(),
                verdict: task.verdict.clone(),
            });
            if task.verdict == "error" {
                current.errors.push(task.engine_label());
            }
        }
        let mut programs: Vec<ProgramDiff> = by_program.into_values().collect();
        for p in &mut programs {
            p.verdicts.sort_by_key(|v| engine_rank(&v.engine, &v.refiner));
            p.combined = combine(&p.verdicts);
        }
        DifferentialReport { programs }
    }

    /// Human-readable descriptions of every verdict disagreement (empty =
    /// the engines agree on the whole corpus).
    pub fn disagreements(&self) -> Vec<String> {
        self.programs
            .iter()
            .filter(|p| p.is_disagreement())
            .map(|p| {
                let verdicts: Vec<String> = p
                    .verdicts
                    .iter()
                    .filter(|v| v.verdict == "safe" || v.verdict == "unsafe")
                    .map(|v| format!("{} says {}", v.label(), v.verdict))
                    .collect();
                format!("{}: {}", p.program, verdicts.join(", "))
            })
            .collect()
    }

    /// Per-program engine errors, rendered (`"FORWARD: bmc errored"`).
    pub fn errors(&self) -> Vec<String> {
        self.programs
            .iter()
            .flat_map(|p| p.errors.iter().map(move |e| format!("{}: {} errored", p.program, e)))
            .collect()
    }

    /// The JSON rendering of the differential section.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            (
                "programs",
                Json::Array(
                    self.programs
                        .iter()
                        .map(|p| {
                            Json::object(vec![
                                ("program", Json::Str(p.program.clone())),
                                (
                                    "verdicts",
                                    Json::Object(
                                        p.verdicts
                                            .iter()
                                            .map(|v| (v.label(), Json::Str(v.verdict.clone())))
                                            .collect(),
                                    ),
                                ),
                                ("combined", Json::Str(p.combined.clone())),
                                (
                                    "errors",
                                    Json::Array(
                                        p.errors.iter().map(|e| Json::Str(e.clone())).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("disagreements", Json::Int(self.disagreements().len() as i64)),
            ("engine_errors", Json::Int(self.errors().len() as i64)),
        ])
    }

    /// A one-paragraph human-readable summary, listing disagreements and
    /// per-engine errors when present.
    pub fn render_summary(&self) -> String {
        let conclusive =
            self.programs.iter().filter(|p| p.combined == "safe" || p.combined == "unsafe").count();
        let mut out = format!(
            "differential: {} programs cross-checked, {} concluded, {} disagreements\n",
            self.programs.len(),
            conclusive,
            self.disagreements().len(),
        );
        for d in self.disagreements() {
            out.push_str(&format!("  DISAGREEMENT {d}\n"));
        }
        for e in self.errors() {
            out.push_str(&format!("  ERROR {e}\n"));
        }
        out
    }
}

/// Combines one program's verdicts: disagreement dominates; otherwise the
/// first conclusive verdict in engine order; otherwise `unknown`.
///
/// Only `safe` and `unsafe` carry an opinion.  `unknown`, `error`, and
/// `cancelled` (a lane stopped by the racing harness) all fall through: a
/// cancelled engine never contradicts — and never corroborates — anything.
fn combine(verdicts: &[EngineVerdict]) -> String {
    let safe = verdicts.iter().any(|v| v.verdict == "safe");
    let unsafe_ = verdicts.iter().any(|v| v.verdict == "unsafe");
    if safe && unsafe_ {
        return "disagreement".to_string();
    }
    verdicts
        .iter()
        .map(|v| v.verdict.as_str())
        .find(|v| *v == "safe" || *v == "unsafe")
        .unwrap_or("unknown")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TaskReport, VerifierStats};

    fn task(program: &str, engine: &str, refiner: &str, verdict: &str) -> TaskReport {
        TaskReport {
            program_name: program.to_string(),
            engine: engine.to_string(),
            refiner: refiner.to_string(),
            verdict: verdict.to_string(),
            detail: String::new(),
            refinements: 0,
            predicates: 0,
            art_nodes: 0,
            wall_ms: 0.0,
            cert_kind: String::new(),
            cert_size: 0,
            cert_digest: String::new(),
            cert_verdict: String::new(),
            cert_reason: String::new(),
            cert_check_ms: 0.0,
            stats: VerifierStats::default(),
        }
    }

    fn batch(tasks: Vec<TaskReport>) -> BatchReport {
        BatchReport { jobs: 1, tasks, wall_ms_total: 0.0 }
    }

    #[test]
    fn agreement_with_unknown_is_not_a_disagreement() {
        // BMC giving up at its bound must never contradict a CEGAR proof.
        let report = batch(vec![
            task("P", "cegar", "path-invariants", "safe"),
            task("P", "bmc", "-", "unknown"),
            task("P", "pdr", "-", "unknown"),
        ]);
        let diff = DifferentialReport::from_batch(&report);
        assert!(diff.disagreements().is_empty());
        assert_eq!(diff.programs[0].combined, "safe");
    }

    #[test]
    fn interleaved_task_order_cannot_hide_a_conflict() {
        // Grouping is by program name, not adjacency: a hand-assembled
        // report with interleaved tasks must still pair P's verdicts up.
        let report = batch(vec![
            task("P", "cegar", "path-invariants", "safe"),
            task("Q", "bmc", "-", "unknown"),
            task("P", "bmc", "-", "unsafe"),
        ]);
        let diff = DifferentialReport::from_batch(&report);
        assert_eq!(diff.disagreements().len(), 1, "{:?}", diff.programs);
        assert_eq!(diff.programs.len(), 2);
    }

    #[test]
    fn cancelled_is_no_opinion() {
        // A lane the racing harness cancelled must neither contradict nor
        // corroborate: the combination skips it exactly like `unknown`.
        let report = batch(vec![
            task("P", "cegar", "path-invariants", "cancelled"),
            task("P", "bmc", "-", "unsafe"),
            task("Q", "cegar", "path-invariants", "cancelled"),
            task("Q", "bmc", "-", "cancelled"),
        ]);
        let diff = DifferentialReport::from_batch(&report);
        assert!(diff.disagreements().is_empty());
        assert_eq!(diff.programs[0].combined, "unsafe");
        assert_eq!(diff.programs[1].combined, "unknown");
        assert!(diff.errors().is_empty(), "cancelled is not an error");
    }

    #[test]
    fn conclusive_conflict_is_a_disagreement() {
        let report = batch(vec![
            task("P", "cegar", "path-invariants", "safe"),
            task("P", "bmc", "-", "unsafe"),
        ]);
        let diff = DifferentialReport::from_batch(&report);
        let ds = diff.disagreements();
        assert_eq!(ds.len(), 1);
        assert!(ds[0].contains("cegar/path-invariants says safe"), "{ds:?}");
        assert!(ds[0].contains("bmc says unsafe"), "{ds:?}");
        assert_eq!(diff.programs[0].combined, "disagreement");
    }

    #[test]
    fn an_engine_erroring_on_one_program_is_surfaced() {
        let report = batch(vec![
            task("P", "cegar", "path-invariants", "unsafe"),
            task("P", "bmc", "-", "error"),
            task("Q", "cegar", "path-invariants", "safe"),
            task("Q", "bmc", "-", "safe"),
        ]);
        let diff = DifferentialReport::from_batch(&report);
        assert!(diff.disagreements().is_empty(), "an error is not a verdict");
        assert_eq!(diff.errors(), vec!["P: bmc errored".to_string()]);
        // The other engines' verdicts still combine.
        assert_eq!(diff.programs[0].combined, "unsafe");
        let json = diff.to_json();
        assert_eq!(json.get("engine_errors").and_then(Json::as_int), Some(1));
    }

    #[test]
    fn combined_verdict_prefers_the_engine_order() {
        let report = batch(vec![
            task("P", "cegar", "path-invariants", "unknown"),
            task("P", "cegar", "path-predicates", "unknown"),
            task("P", "bmc", "-", "safe"),
            task("P", "pdr", "-", "safe"),
        ]);
        let diff = DifferentialReport::from_batch(&report);
        assert_eq!(diff.programs[0].combined, "safe");
        let summary = diff.render_summary();
        assert!(summary.contains("1 programs cross-checked"), "{summary}");
        assert!(summary.contains("0 disagreements"), "{summary}");
    }
}
