//! The benchmark-trajectory report: one deterministic measurement point of
//! the corpus-wide solver workload, emitted as `BENCH_pr10.json`
//! (`BENCH_pr9.json` is the committed previous point the bench-smoke CI job
//! diffs against for per-task counter regressions), plus the [`render_history`]
//! aggregation that renders every committed `BENCH_*.json` as one per-PR
//! table (`pathinv-cli trajectory --history`).
//!
//! A trajectory run verifies the full corpus under both refiners twice —
//! once with the incremental caches on (the shipping configuration) and once
//! with them off (the uncached baseline) — and reports, per task and in
//! total: verdict, refinement count, solver calls, cache hits, hit rates,
//! and wall-clock.  Verdicts and refinement counts are identical between the
//! two runs by construction (the caches replay deterministic answers); the
//! solver-call delta *is* the measured effect of the incremental layer.
//!
//! Everything except wall-clock is deterministic across runs, machines, and
//! worker counts, so the deterministic projection
//! ([`TrajectoryReport::to_golden_json`]) is committed as
//! `tests/golden/bench.json` and CI fails when the schema or any
//! deterministic field drifts ([`TrajectoryReport::check_against_golden`]).

use crate::json::Json;
use crate::{
    corpus_programs, make_tasks, BatchReport, EngineChoice, RefinerChoice, SCHEMA_VERSION,
};

/// Schema version of the trajectory report, bumped on breaking layout
/// changes.  Distinct from the batch-report schema version, though both are
/// stamped into the emitted JSON.  Version 2 added the cold/warm simplex
/// totals; version 3 added the refine-phase cold-simplex total and the
/// invariant-synthesis counters (systems solved, branches
/// explored/pruned, cores learned, memo hits); version 4 marks the point
/// where counterexamples are certified integral before a task concludes
/// `unsafe`, so concluded-`unsafe` tasks carry the certification's solver
/// calls — counters that pre-v4 points did not account for (the
/// `--compare-previous` gate exempts exactly those tasks across the v4
/// boundary); version 5 added the optional `race` section (per-program
/// winner and per-lane time-to-first-verdict from a racing portfolio run)
/// to the emitted point — timing data only, absent from the golden
/// projection, whose deterministic fields are unchanged; version 6 added
/// the certificate fields to every task (kind, size, digest, and — when the
/// run audited — the checker verdict and check time) plus the
/// `certificates` totals section of the emitted point, reporting how many
/// certificates the independent `pathinv-check` crate validated and how
/// long the audits took; version 7 added the optional `serve` section
/// (cold vs warm daemon throughput over the source corpus with the
/// persistent verdict cache reopened between passes) to the emitted point
/// — timing data only, absent from the golden projection; version 8 added
/// the optional `supervision` section (process-isolation overhead vs
/// in-thread jobs, plus the seeded chaos pass's availability) to the
/// emitted point — timing data only, absent from the golden projection.
pub const BENCH_SCHEMA_VERSION: i64 = 8;

/// Totals of the counters that matter for the trajectory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrajectoryTotals {
    /// Combined-solver invocations summed over all tasks.
    pub solver_calls: u64,
    /// Cold simplex solves (tableau constructions) summed over all tasks.
    pub simplex_calls: u64,
    /// Warm incremental simplex re-checks summed over all tasks.
    pub simplex_warm_checks: u64,
    /// Boolean queries through the incremental contexts.
    pub smt_queries: u64,
    /// Context queries answered from the keyed cache.
    pub query_cache_hits: u64,
    /// Abstract-post cube requests.
    pub post_queries: u64,
    /// Cube requests answered from the post memo.
    pub post_cache_hits: u64,
    /// Cold simplex solves attributed to the refinement phase (where the
    /// Farkas systems of invariant synthesis live) — the counter the PR 5
    /// acceptance gate tracks.
    pub refine_simplex_calls: u64,
    /// LP systems solved by the synthesis frontier search.
    pub synth_systems_solved: u64,
    /// Frontier branches explored by the synthesis search.
    pub synth_branches_explored: u64,
    /// Branches pruned by conflict cores and presolve refutation.
    pub synth_branches_pruned: u64,
    /// Minimal Farkas conflict cores learned.
    pub synth_cores_learned: u64,
    /// Syntheses replayed from the cross-refinement memo.
    pub synth_memo_hits: u64,
}

impl TrajectoryTotals {
    fn from_batch(report: &BatchReport) -> TrajectoryTotals {
        TrajectoryTotals {
            solver_calls: report.total(|s| s.solver_calls),
            simplex_calls: report.total(|s| s.simplex_calls),
            simplex_warm_checks: report.total(|s| s.simplex_warm_checks),
            smt_queries: report.total(|s| s.smt_queries),
            query_cache_hits: report.total(|s| s.query_cache_hits),
            post_queries: report.total(|s| s.post_queries),
            post_cache_hits: report.total(|s| s.post_cache_hits),
            refine_simplex_calls: report.total(|s| s.refine_simplex_calls),
            synth_systems_solved: report.total(|s| s.synth_systems_solved),
            synth_branches_explored: report.total(|s| s.synth_branches_explored),
            synth_branches_pruned: report.total(|s| s.synth_branches_pruned),
            synth_cores_learned: report.total(|s| s.synth_cores_learned),
            synth_memo_hits: report.total(|s| s.synth_memo_hits),
        }
    }
}

/// The outcome of one trajectory run: the cached corpus batch, the uncached
/// baseline batch, and their totals.
#[derive(Clone, Debug)]
pub struct TrajectoryReport {
    /// The corpus run with the incremental caches on.
    pub cached: BatchReport,
    /// The corpus run with the caches off (same verdicts, more solver
    /// calls).
    pub uncached: BatchReport,
    /// Totals of the cached run.
    pub totals: TrajectoryTotals,
    /// Totals of the uncached baseline.
    pub baseline: TrajectoryTotals,
    /// An optional racing-portfolio run over the same corpus, rendered as
    /// the `race` section of the emitted point (never of the golden
    /// projection — race timings are machine-dependent by nature).
    pub race: Option<crate::race::RaceReport>,
    /// An optional daemon warm-vs-cold benchmark, rendered as the `serve`
    /// section of the emitted point (never of the golden projection —
    /// daemon timings are machine-dependent by nature).
    pub serve: Option<ServeBench>,
    /// An optional supervision benchmark — process-isolation overhead and
    /// chaos-pass availability — rendered as the `supervision` section of
    /// the emitted point (never of the golden projection — timings and
    /// fault schedules are machine-dependent by nature).
    pub supervision: Option<SupervisionBench>,
}

/// Cold-vs-warm daemon throughput over the source corpus, measured by
/// running the in-process service twice against the same persistent
/// verdict cache — the journal is closed and reopened between passes, so
/// the warm numbers exercise the crash-safe recovery path, not a live
/// in-memory map.
#[derive(Clone, Debug)]
pub struct ServeBench {
    /// Programs submitted in each pass.
    pub programs: usize,
    /// Wall-clock of the cold pass (empty cache, every job verified).
    pub cold_ms: f64,
    /// Wall-clock of the warm pass (reopened cache, every job a hit).
    pub warm_ms: f64,
    /// Cache hits observed during the warm pass.
    pub warm_hits: u64,
    /// Programs whose warm verdict or certificate digest disagreed with
    /// the cold pass — must be empty for `--bless` to succeed.
    pub parity_failures: Vec<String>,
}

impl ServeBench {
    /// The `serve` section of the emitted bench point.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("programs", Json::Int(self.programs as i64)),
            ("cold_ms", Json::Float((self.cold_ms * 10.0).round() / 10.0)),
            ("warm_ms", Json::Float((self.warm_ms * 10.0).round() / 10.0)),
            ("warm_hits", Json::Int(self.warm_hits as i64)),
            ("parity_ok", Json::Bool(self.parity_failures.is_empty())),
        ])
    }
}

/// Supervision costs and payoffs: the per-job overhead of `--isolate
/// process` (each job re-exec'd as a child) against in-thread execution
/// over the same corpus, and the availability the seeded chaos pass
/// observed (jobs answered / jobs submitted) with faults injected.
#[derive(Clone, Debug)]
pub struct SupervisionBench {
    /// Programs verified in each isolation pass.
    pub programs: usize,
    /// Wall-clock of the in-thread pass (cold cache).
    pub in_thread_ms: f64,
    /// Wall-clock of the process-isolated pass (cold cache).
    pub process_ms: f64,
    /// Jobs the chaos pass submitted.
    pub chaos_submitted: u64,
    /// Jobs the chaos pass saw answered (`done`, `overloaded`, or
    /// `quarantined` — every submission that got exactly one reply).
    pub chaos_answered: u64,
    /// Chaos submissions fast-failed by an open circuit breaker.
    pub chaos_quarantined: u64,
    /// `chaos_answered / chaos_submitted`, in `[0, 1]`.
    pub availability: f64,
}

impl SupervisionBench {
    /// The `supervision` section of the emitted bench point.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("programs", Json::Int(self.programs as i64)),
            ("in_thread_ms", Json::Float((self.in_thread_ms * 10.0).round() / 10.0)),
            ("process_ms", Json::Float((self.process_ms * 10.0).round() / 10.0)),
            ("chaos_submitted", Json::Int(self.chaos_submitted as i64)),
            ("chaos_answered", Json::Int(self.chaos_answered as i64)),
            ("chaos_quarantined", Json::Int(self.chaos_quarantined as i64)),
            ("availability", Json::Float(round4(self.availability))),
        ])
    }
}

/// Runs the full corpus under both refiners, cached and uncached, across
/// `jobs` worker threads.
pub fn run_trajectory(jobs: usize) -> TrajectoryReport {
    let cached = crate::run_batch(
        make_tasks(corpus_programs(), EngineChoice::Cegar, RefinerChoice::Both, None),
        jobs,
    );
    trajectory_from_cached(cached, jobs)
}

/// Builds the trajectory from an already-computed cached CEGAR corpus batch
/// — e.g. the CEGAR subset of a portfolio run, so `--bless` does not verify
/// the corpus a third time — re-running only the uncached baseline.
/// `cached` must hold exactly the corpus CEGAR tasks with caching on; the
/// counters are deterministic, so a reused batch is identical to a fresh
/// one.
pub fn trajectory_from_cached(cached: BatchReport, jobs: usize) -> TrajectoryReport {
    let mut baseline_tasks =
        make_tasks(corpus_programs(), EngineChoice::Cegar, RefinerChoice::Both, None);
    for t in &mut baseline_tasks {
        t.disable_cegar_caching();
    }
    let uncached = crate::run_batch(baseline_tasks, jobs);
    let totals = TrajectoryTotals::from_batch(&cached);
    let baseline = TrajectoryTotals::from_batch(&uncached);
    TrajectoryReport {
        cached,
        uncached,
        totals,
        baseline,
        race: None,
        serve: None,
        supervision: None,
    }
}

fn round4(x: f64) -> f64 {
    (x * 1e4).round() / 1e4
}

fn rate(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        round4(hits as f64 / total as f64)
    }
}

impl TrajectoryReport {
    /// Checks that the cached and uncached runs agree on every observable
    /// outcome (verdict, refinements, predicates, ART nodes) — the
    /// incremental layer must only change *how much solver work* a run
    /// does, never what it concludes.  Returns the disagreements.
    pub fn parity_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        if self.cached.tasks.len() != self.uncached.tasks.len() {
            failures.push(format!(
                "task counts differ: {} cached vs {} uncached",
                self.cached.tasks.len(),
                self.uncached.tasks.len()
            ));
            return failures;
        }
        for (c, u) in self.cached.tasks.iter().zip(self.uncached.tasks.iter()) {
            let key = format!("{}/{}", c.program_name, c.refiner);
            if (c.program_name.as_str(), c.refiner.as_str())
                != (u.program_name.as_str(), u.refiner.as_str())
            {
                failures.push(format!("task order differs at {key}"));
                continue;
            }
            for (what, cv, uv) in [
                ("verdict", c.verdict.clone(), u.verdict.clone()),
                ("refinements", c.refinements.to_string(), u.refinements.to_string()),
                ("predicates", c.predicates.to_string(), u.predicates.to_string()),
                ("art_nodes", c.art_nodes.to_string(), u.art_nodes.to_string()),
            ] {
                if cv != uv {
                    failures.push(format!("{key}: {what} is {cv} cached but {uv} uncached"));
                }
            }
        }
        failures
    }

    /// Fraction of baseline solver calls eliminated by the caches, in
    /// `[0, 1]`.
    pub fn solver_call_reduction(&self) -> f64 {
        if self.baseline.solver_calls == 0 {
            return 0.0;
        }
        let saved = self.baseline.solver_calls.saturating_sub(self.totals.solver_calls);
        saved as f64 / self.baseline.solver_calls as f64
    }

    /// The full JSON rendering (the contents of `BENCH_pr10.json`): the
    /// deterministic fields plus wall-clock, and — when a racing run was
    /// attached — the `race` section with the per-program winner and every
    /// lane's time-to-first-verdict.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("bench_schema_version", Json::Int(BENCH_SCHEMA_VERSION)),
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("suite", Json::Str("corpus".to_string())),
            ("jobs", Json::Int(self.cached.jobs as i64)),
            ("tasks", Json::Array(self.cached.tasks.iter().map(|t| t.to_json()).collect())),
        ];
        fields.push(("totals", self.totals_json(&self.totals, self.cached.wall_ms_total)));
        fields.push((
            "uncached_baseline",
            self.totals_json(&self.baseline, self.uncached.wall_ms_total),
        ));
        fields.push(("certificates", self.certificates_json()));
        fields.push((
            "reduction",
            Json::object(vec![
                (
                    "solver_calls_saved",
                    Json::Int(
                        self.baseline.solver_calls.saturating_sub(self.totals.solver_calls) as i64
                    ),
                ),
                ("solver_calls_fraction", Json::Float(round4(self.solver_call_reduction()))),
            ]),
        ));
        if let Some(race) = &self.race {
            fields.push(("race", race.to_json()));
        }
        if let Some(serve) = &self.serve {
            fields.push(("serve", serve.to_json()));
        }
        if let Some(supervision) = &self.supervision {
            fields.push(("supervision", supervision.to_json()));
        }
        Json::object(fields)
    }

    /// Certificate metrics over the cached tasks: audit tallies (all zero
    /// when the run did not audit, e.g. outside `--bless`), total
    /// certificate size, and total checker time.
    fn certificates_json(&self) -> Json {
        let tasks = &self.cached.tasks;
        let count =
            |v: &str| Json::Int(tasks.iter().filter(|t| t.cert_verdict == v).count() as i64);
        let emitted = tasks.iter().filter(|t| !t.cert_kind.is_empty()).count();
        let size_total: usize = tasks.iter().map(|t| t.cert_size).sum();
        let check_ms_total: f64 = tasks.iter().map(|t| t.cert_check_ms).sum();
        Json::object(vec![
            ("emitted", Json::Int(emitted as i64)),
            ("valid", count("valid")),
            ("invalid", count("invalid")),
            ("unsupported", count("unsupported")),
            ("vacuous", count("vacuous")),
            ("missing", count("missing")),
            ("size_total", Json::Int(size_total as i64)),
            ("check_ms_total", Json::Float((check_ms_total * 1e3).round() / 1e3)),
        ])
    }

    fn totals_json(&self, t: &TrajectoryTotals, wall_ms: f64) -> Json {
        Json::object(vec![
            ("solver_calls", Json::Int(t.solver_calls as i64)),
            ("simplex_calls", Json::Int(t.simplex_calls as i64)),
            ("simplex_warm_checks", Json::Int(t.simplex_warm_checks as i64)),
            ("smt_queries", Json::Int(t.smt_queries as i64)),
            ("query_cache_hits", Json::Int(t.query_cache_hits as i64)),
            ("post_queries", Json::Int(t.post_queries as i64)),
            ("post_cache_hits", Json::Int(t.post_cache_hits as i64)),
            ("refine_simplex_calls", Json::Int(t.refine_simplex_calls as i64)),
            ("synth_systems_solved", Json::Int(t.synth_systems_solved as i64)),
            ("synth_branches_explored", Json::Int(t.synth_branches_explored as i64)),
            ("synth_branches_pruned", Json::Int(t.synth_branches_pruned as i64)),
            ("synth_cores_learned", Json::Int(t.synth_cores_learned as i64)),
            ("synth_memo_hits", Json::Int(t.synth_memo_hits as i64)),
            ("query_hit_rate", Json::Float(rate(t.query_cache_hits, t.smt_queries))),
            ("post_hit_rate", Json::Float(rate(t.post_cache_hits, t.post_queries))),
            ("wall_ms", Json::Float((wall_ms * 1e3).round() / 1e3)),
        ])
    }

    /// The deterministic projection committed as `tests/golden/bench.json`:
    /// per-task verdict/refinement/counter fields and the counter totals,
    /// with every wall-clock field dropped.
    pub fn to_golden_json(&self) -> Json {
        let totals_golden = |t: &TrajectoryTotals| {
            Json::object(vec![
                ("solver_calls", Json::Int(t.solver_calls as i64)),
                ("simplex_calls", Json::Int(t.simplex_calls as i64)),
                ("simplex_warm_checks", Json::Int(t.simplex_warm_checks as i64)),
                ("smt_queries", Json::Int(t.smt_queries as i64)),
                ("query_cache_hits", Json::Int(t.query_cache_hits as i64)),
                ("post_queries", Json::Int(t.post_queries as i64)),
                ("post_cache_hits", Json::Int(t.post_cache_hits as i64)),
                ("refine_simplex_calls", Json::Int(t.refine_simplex_calls as i64)),
                ("synth_systems_solved", Json::Int(t.synth_systems_solved as i64)),
                ("synth_branches_explored", Json::Int(t.synth_branches_explored as i64)),
                ("synth_branches_pruned", Json::Int(t.synth_branches_pruned as i64)),
                ("synth_cores_learned", Json::Int(t.synth_cores_learned as i64)),
                ("synth_memo_hits", Json::Int(t.synth_memo_hits as i64)),
            ])
        };
        Json::object(vec![
            ("bench_schema_version", Json::Int(BENCH_SCHEMA_VERSION)),
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            (
                "tasks",
                Json::Array(self.cached.tasks.iter().map(|t| t.to_golden_task_json()).collect()),
            ),
            ("totals", totals_golden(&self.totals)),
            ("uncached_baseline", totals_golden(&self.baseline)),
        ])
    }

    /// Diffs this run's deterministic projection against a committed golden
    /// document.  Returns the list of discrepancies (empty = no drift).
    /// Schema-version mismatches, missing fields, and malformed documents
    /// are reported as discrepancies, not panics, so CI gets a readable
    /// failure.
    pub fn check_against_golden(&self, golden: &Json) -> Vec<String> {
        let mut failures = Vec::new();
        let live = self.to_golden_json();
        for version_field in ["bench_schema_version", "schema_version"] {
            let got = golden.get(version_field).and_then(Json::as_int);
            let want = live.get(version_field).and_then(Json::as_int);
            if got != want {
                failures.push(format!(
                    "{version_field}: golden {got:?}, live {want:?} — regenerate the golden \
                     (pathinv-cli --bless)"
                ));
            }
        }
        for section in ["totals", "uncached_baseline"] {
            compare_objects(section, golden.get(section), live.get(section), &mut failures);
        }
        let golden_tasks = golden.get("tasks").and_then(Json::as_array).unwrap_or(&[]);
        let live_tasks = live.get("tasks").and_then(Json::as_array).unwrap_or(&[]);
        let key = |t: &Json| {
            (
                t.get("program").and_then(Json::as_str).unwrap_or("?").to_string(),
                t.get("refiner").and_then(Json::as_str).unwrap_or("?").to_string(),
            )
        };
        for lt in live_tasks {
            let k = key(lt);
            match golden_tasks.iter().find(|gt| key(gt) == k) {
                None => failures.push(format!("{k:?}: produced but missing from bench golden")),
                Some(gt) => compare_objects(&format!("{k:?}"), Some(gt), Some(lt), &mut failures),
            }
        }
        for gt in golden_tasks {
            let k = key(gt);
            if !live_tasks.iter().any(|lt| key(lt) == k) {
                failures.push(format!("{k:?}: in bench golden but not produced"));
            }
        }
        failures
    }
}

/// Collects every committed `BENCH_*.json` trajectory point in `dir`,
/// sorted by the embedded PR number (then name), each parsed as JSON.
///
/// # Errors
///
/// Returns a readable message when the directory cannot be read or a point
/// is malformed JSON; an *absent* field inside a point is not an error (the
/// history table renders older schemas with `-` placeholders).
pub fn collect_history(dir: &std::path::Path) -> Result<Vec<(String, Json)>, String> {
    let mut names: Vec<String> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {dir:?}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            names.push(name);
        }
    }
    // Natural order: by the numeric suffix of `BENCH_prN.json` when present
    // (so `pr10` sorts after `pr9`), then lexicographically.
    let pr_number = |name: &str| -> i64 {
        name.trim_start_matches("BENCH_pr")
            .trim_end_matches(".json")
            .parse::<i64>()
            .unwrap_or(i64::MAX)
    };
    names.sort_by_key(|n| (pr_number(n), n.clone()));
    let mut points = Vec::new();
    for name in names {
        let path = dir.join(&name);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let doc =
            crate::json::parse(&text).map_err(|e| format!("{name} is not valid JSON: {e}"))?;
        points.push((name, doc));
    }
    Ok(points)
}

/// Renders the trajectory history — one row per committed `BENCH_*.json`
/// point — as a fixed-width table: verdict counts over the cached CEGAR
/// tasks, the headline counter totals, and wall-clock.  Fields a point's
/// schema predates render as `-`, so the whole perf trajectory is readable
/// without parsing any JSON.
pub fn render_history(points: &[(String, Json)]) -> String {
    let int_total = |doc: &Json, field: &str| -> Option<i64> {
        doc.get("totals").and_then(|t| t.get(field)).and_then(Json::as_int)
    };
    let opt = |v: Option<i64>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".to_string());
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16}  {:>5}  {:>4}  {:>6}  {:>7}  {:>7}  {:>8}  {:>11}  {:>10}  {:>9}  {:>8}\n",
        "point",
        "tasks",
        "safe",
        "unsafe",
        "unknown",
        "solver",
        "simplex",
        "warm checks",
        "refine cold",
        "memo hits",
        "wall",
    ));
    out.push_str(&format!("{}\n", "-".repeat(114)));
    for (name, doc) in points {
        let tasks = doc.get("tasks").and_then(Json::as_array).unwrap_or(&[]);
        let verdicts = |which: &str| {
            tasks.iter().filter(|t| t.get("verdict").and_then(Json::as_str) == Some(which)).count()
        };
        let wall = doc
            .get("totals")
            .and_then(|t| t.get("wall_ms"))
            .and_then(|v| match v {
                Json::Float(x) => Some(*x),
                Json::Int(i) => Some(*i as f64),
                _ => None,
            })
            .map(|ms| format!("{:.2} s", ms / 1000.0))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<16}  {:>5}  {:>4}  {:>6}  {:>7}  {:>7}  {:>8}  {:>11}  {:>10}  {:>9}  {:>8}\n",
            name.trim_end_matches(".json"),
            tasks.len(),
            verdicts("safe"),
            verdicts("unsafe"),
            verdicts("unknown"),
            opt(int_total(doc, "solver_calls")),
            opt(int_total(doc, "simplex_calls")),
            opt(int_total(doc, "simplex_warm_checks")),
            opt(int_total(doc, "refine_simplex_calls")),
            opt(int_total(doc, "synth_memo_hits")),
            wall,
        ));
    }
    out
}

/// Compares two JSON objects field by field (both directions), recording
/// mismatches under `label`.
fn compare_objects(label: &str, golden: Option<&Json>, live: Option<&Json>, out: &mut Vec<String>) {
    let (Some(Json::Object(g)), Some(Json::Object(l))) = (golden, live) else {
        if golden != live {
            out.push(format!("{label}: golden {golden:?}, live {live:?}"));
        }
        return;
    };
    for (k, lv) in l {
        match g.iter().find(|(gk, _)| gk == k) {
            None => out.push(format!("{label}.{k}: missing from golden")),
            Some((_, gv)) if gv != lv => {
                out.push(format!("{label}.{k}: golden {gv:?}, live {lv:?}"))
            }
            Some(_) => {}
        }
    }
    for (k, _) in g {
        if !l.iter().any(|(lk, _)| lk == k) {
            out.push(format!("{label}.{k}: in golden but not produced"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// A miniature trajectory (two programs) exercises the full report
    /// shape without paying for the corpus twice.
    fn mini_trajectory() -> TrajectoryReport {
        let slice = || {
            corpus_programs()
                .into_iter()
                .filter(|(name, _)| name == "FIGURE4" || name == "FORWARD")
                .collect::<Vec<_>>()
        };
        let cached = crate::run_batch(
            make_tasks(slice(), EngineChoice::Cegar, RefinerChoice::Both, None),
            2,
        );
        let mut tasks = make_tasks(slice(), EngineChoice::Cegar, RefinerChoice::Both, None);
        for t in &mut tasks {
            t.disable_cegar_caching();
        }
        let uncached = crate::run_batch(tasks, 2);
        let totals = TrajectoryTotals::from_batch(&cached);
        let baseline = TrajectoryTotals::from_batch(&uncached);
        TrajectoryReport {
            cached,
            uncached,
            totals,
            baseline,
            race: None,
            serve: None,
            supervision: None,
        }
    }

    #[test]
    fn report_shape_and_self_check() {
        let report = mini_trajectory();
        // Verdicts agree between cached and uncached runs.
        for (c, u) in report.cached.tasks.iter().zip(report.uncached.tasks.iter()) {
            assert_eq!(c.program_name, u.program_name);
            assert_eq!(c.verdict, u.verdict);
            assert_eq!(c.refinements, u.refinements);
        }
        // The uncached baseline never hits a cache.
        assert_eq!(report.baseline.query_cache_hits, 0);
        assert_eq!(report.baseline.post_cache_hits, 0);
        // The emitted JSON parses and carries both schema stamps.
        let doc = json::parse(&report.to_json().pretty()).expect("bench JSON must parse");
        assert_eq!(
            doc.get("bench_schema_version").and_then(Json::as_int),
            Some(BENCH_SCHEMA_VERSION)
        );
        assert_eq!(doc.get("schema_version").and_then(Json::as_int), Some(SCHEMA_VERSION));
        assert!(doc.get("uncached_baseline").is_some());
        // A run checked against its own golden projection reports no drift.
        let golden = json::parse(&report.to_golden_json().pretty()).unwrap();
        assert_eq!(report.check_against_golden(&golden), Vec::<String>::new());
    }

    #[test]
    fn race_section_is_emitted_but_never_golden() {
        let mut report = mini_trajectory();
        assert!(report.to_json().get("race").is_none(), "no race attached, no section");
        let slice: Vec<_> =
            corpus_programs().into_iter().filter(|(name, _)| name == "FIGURE4").collect();
        report.race = Some(crate::race::run_race(slice, 4, false, None));
        let doc = json::parse(&report.to_json().pretty()).unwrap();
        let race = doc.get("race").expect("attached race must be emitted");
        assert_eq!(race.get("mode").and_then(Json::as_str), Some("race"));
        // The golden projection stays deterministic: no race timings.
        assert!(report.to_golden_json().get("race").is_none());
        // The attached section does not disturb the golden comparison.
        let golden = json::parse(&report.to_golden_json().pretty()).unwrap();
        assert_eq!(report.check_against_golden(&golden), Vec::<String>::new());
    }

    #[test]
    fn history_table_orders_points_and_tolerates_old_schemas() {
        let dir =
            std::env::temp_dir().join(format!("pathinv-trajectory-history-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // An old-schema point (no simplex/synth totals) and two newer ones,
        // written out of order; pr10 must sort after pr9.
        std::fs::write(
            dir.join("BENCH_pr10.json"),
            r#"{"tasks": [{"verdict": "safe"}],
                "totals": {"solver_calls": 10, "simplex_calls": 20,
                           "simplex_warm_checks": 30, "refine_simplex_calls": 5,
                           "synth_memo_hits": 2, "wall_ms": 1500.0}}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_pr2.json"),
            r#"{"tasks": [{"verdict": "unknown"}, {"verdict": "unsafe"}],
                "totals": {"solver_calls": 99, "wall_ms": 2000.0}}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_pr9.json"),
            r#"{"tasks": [], "totals": {"solver_calls": 50, "wall_ms": 100.0}}"#,
        )
        .unwrap();
        std::fs::write(dir.join("not-a-point.json"), "{}").unwrap();
        let points = collect_history(&dir).unwrap();
        let names: Vec<&str> = points.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["BENCH_pr2.json", "BENCH_pr9.json", "BENCH_pr10.json"]);
        let table = render_history(&points);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[2].starts_with("BENCH_pr2"), "{table}");
        assert!(lines[4].starts_with("BENCH_pr10"), "{table}");
        // Old schemas render missing counters as placeholders, not zeros.
        assert!(lines[2].contains('-'), "{table}");
        assert!(lines[4].contains("1.50 s"), "{table}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drift_is_detected_field_by_field() {
        let report = mini_trajectory();
        let mut golden = report.to_golden_json();
        // Corrupt one deterministic counter.
        if let Json::Object(fields) = &mut golden {
            for (k, v) in fields.iter_mut() {
                if k == "totals" {
                    if let Json::Object(tf) = v {
                        for (tk, tv) in tf.iter_mut() {
                            if tk == "solver_calls" {
                                *tv = Json::Int(1);
                            }
                        }
                    }
                }
            }
        }
        let failures = report.check_against_golden(&golden);
        assert!(
            failures.iter().any(|f| f.contains("totals.solver_calls")),
            "corrupted counter must be reported: {failures:?}"
        );
        // A schema bump is reported too.
        let stale = json::parse("{\"bench_schema_version\": 0, \"tasks\": []}").unwrap();
        let failures = report.check_against_golden(&stale);
        assert!(failures.iter().any(|f| f.contains("bench_schema_version")), "{failures:?}");
    }
}
