//! `pathinv-cli chaos-smoke` — the seeded chaos harness for the service.
//!
//! Spawns the *real* `pathinv-cli serve` binary with `--isolate process`
//! and `--chaos seed=N` (worker exits, torn/failed/slow cache writes) and
//! hammers it with a seed-shuffled mix of honest corpus jobs and hostile
//! probes — aborting engines, panicking engines, memory hogs, spinners,
//! and malformed protocol lines.  The run then asserts the supervision
//! contract from the outside:
//!
//! 1. **The daemon never dies.**  Worker crashes, aborted children, and
//!    injected cache faults must all be absorbed; the daemon process is
//!    still alive after the whole workload.
//! 2. **Every submission is answered exactly once.**  Each carried `id`
//!    gets exactly one response (`done`, `overloaded`, or `quarantined`) —
//!    zero dropped, zero duplicated.
//! 3. **No wrong verdicts.**  Every corpus job answered `done` must match
//!    the reference verdict and certificate digest computed in fresh
//!    `run-one-job` child processes before the daemon was spawned — chaos
//!    may cost availability, never correctness.
//! 4. **The breaker quarantines.**  A sequential wave of aborting jobs
//!    must trip the abort-shim circuit breaker into `quarantined`
//!    fast-fails within a bounded number of consecutive faults.
//! 5. **Clean drain.**  The protocol `shutdown` is acknowledged and the
//!    daemon exits 0.
//! 6. **Warm restart.**  A fresh, chaos-free daemon over the surviving
//!    (possibly torn) journal still serves only reference verdicts.
//!
//! Every random choice — the probe deck, the shuffle, the daemon's fault
//! schedule — derives from the one `--seed`, so a failing run replays
//! exactly.  With `--json`, an availability artifact (jobs answered / jobs
//! submitted, quarantine counts) is written for the trajectory record.

use crate::isolate::{run_job_in_child, ChildRun};
use crate::json::{self, Json};
use crate::SCHEMA_VERSION;
use pathinv_core::CancellationToken;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Options for one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// Seed for the probe deck, the shuffle, and the daemon's fault
    /// schedule.
    pub seed: u64,
    /// Where to write the availability artifact (`-` = stdout).
    pub json_path: Option<String>,
    /// Worker threads for the spawned daemon.
    pub workers: usize,
    /// Print per-phase progress.
    pub verbose: bool,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions { seed: 42, json_path: None, workers: 2, verbose: true }
    }
}

/// What the chaos pass observed; [`run_chaos`] returns it so `--bless` can
/// fold availability into the bench point's `supervision` section.
#[derive(Clone, Copy, Debug)]
pub struct ChaosStats {
    /// Verify submissions carrying an id.
    pub submitted: u64,
    /// Submissions answered exactly once (`done`/`overloaded`/`quarantined`).
    pub answered: u64,
    /// Submissions fast-failed by an open circuit breaker.
    pub quarantined: u64,
    /// Submissions rejected by admission control.
    pub overloaded: u64,
    /// Answered jobs whose task verdict was `error` (absorbed faults).
    pub faulted: u64,
}

impl ChaosStats {
    /// `answered / submitted`, in `[0, 1]`.
    pub fn availability(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.answered as f64 / self.submitted as f64
    }
}

/// A deterministic splitmix-fed LCG; all harness randomness flows from it.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One line of the workload deck.
enum Probe {
    /// An honest corpus job: `(id, program name, source)`.
    Corpus(usize, String, String),
    /// A hostile job: `(id, engine, source, timeout_ms)`.
    Hostile(usize, &'static str, String, Option<u64>),
    /// A malformed protocol line (no id, must yield one protocol error).
    Malformed(&'static str),
}

/// A spawned daemon; the `Drop` impl kills the process so a failing run
/// never leaks daemons.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("pathinv-chaos-{}-{n}-{tag}", std::process::id()))
}

/// Spawns `pathinv-cli serve` (this same binary) with the supervision and
/// chaos knobs, and waits for the socket.
fn spawn_daemon(socket: &Path, cache: &Path, extra: &[&str]) -> Result<Daemon, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut args = vec![
        "serve".to_string(),
        "--socket".to_string(),
        socket.display().to_string(),
        "--cache".to_string(),
        cache.display().to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let child = Command::new(exe)
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn daemon: {e}"))?;
    let daemon = Daemon { child, socket: socket.to_path_buf() };
    let start = Instant::now();
    while !daemon.socket.exists() {
        if start.elapsed() > Duration::from_secs(30) {
            return Err("daemon did not create its socket within 30 s".to_string());
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(daemon)
}

/// One protocol connection.
struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| format!("cannot clone stream: {e}"))?);
        Ok(Client { writer: stream, reader })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send failed: {e}"))
    }

    fn recv(&mut self) -> Result<Json, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".to_string()),
            Ok(_) => json::parse(line.trim()).map_err(|e| format!("bad response `{line}`: {e}")),
            Err(e) => Err(format!("recv failed: {e}")),
        }
    }
}

fn verify_request(
    id: usize,
    name: &str,
    source: &str,
    engine: Option<&str>,
    timeout_ms: Option<u64>,
) -> String {
    let mut fields = vec![
        ("op", Json::Str("verify".to_string())),
        ("id", Json::Int(id as i64)),
        ("name", Json::Str(name.to_string())),
        ("program", Json::Str(source.to_string())),
    ];
    if let Some(engine) = engine {
        fields.push(("engine", Json::Str(engine.to_string())));
    }
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms", Json::Int(ms as i64)));
    }
    Json::object(fields).compact()
}

/// The reference: verdict and certificate digest per corpus program under
/// the daemon's default engine, each computed in a fresh `run-one-job`
/// child — the exact path a `--isolate process` daemon worker takes —
/// before any daemon (or any chaos) exists.  A fresh process per job
/// keeps the reference independent of whatever incremental-cache state
/// the *calling* process has accumulated; `--bless` invokes the chaos
/// pass after several full corpus passes, and a warm cache can steer
/// CEGAR to a different (equally valid) invariant with a different
/// certificate digest.
fn reference_verdicts(
    corpus: &[(String, String)],
) -> Result<BTreeMap<String, (String, String)>, String> {
    let engine = crate::serve::engine_spec_named("cegar", None)?;
    let token = CancellationToken::new();
    let mut reference = BTreeMap::new();
    for (name, source) in corpus {
        match run_job_in_child(name, source, &engine, &token) {
            ChildRun::Done { task, verdict, .. } => {
                let digest =
                    task.get("cert_digest").and_then(Json::as_str).unwrap_or_default().to_string();
                reference.insert(name.clone(), (verdict, digest));
            }
            ChildRun::Killed => return Err(format!("reference run of {name} was killed")),
            ChildRun::Crashed { detail } => {
                return Err(format!("reference run of {name} crashed: {detail}"));
            }
        }
    }
    Ok(reference)
}

/// Builds the seed-shuffled workload deck: every corpus program once, plus
/// a batch of hostile probes, plus malformed lines.
fn build_deck(corpus: &[(String, String)], rng: &mut Rng) -> Vec<Probe> {
    // A two-variable program makes `flaky-shim` fault deterministically.
    const TWO_VAR: &str = "proc f(x: int, y: int) { x = 1; assert(x == 1); }";
    let mut deck = Vec::new();
    let mut id = 0;
    for (name, source) in corpus {
        deck.push(Probe::Corpus(id, name.clone(), source.clone()));
        id += 1;
    }
    let sample = corpus[0].1.clone();
    for _ in 0..12 {
        let probe = match rng.below(5) {
            0 => Probe::Hostile(id, "abort-shim", sample.clone(), None),
            1 => Probe::Hostile(id, "panic-shim", sample.clone(), None),
            2 => Probe::Hostile(id, "memhog-shim", sample.clone(), Some(400)),
            3 => Probe::Hostile(id, "spin-shim", sample.clone(), Some(250)),
            _ => Probe::Hostile(id, "flaky-shim", TWO_VAR.to_string(), None),
        };
        deck.push(probe);
        id += 1;
    }
    deck.push(Probe::Malformed("this is not json {"));
    deck.push(Probe::Malformed("{\"op\":\"verify\",\"id\":null}"));
    // Fisher–Yates off the same seed stream.
    for i in (1..deck.len()).rev() {
        deck.swap(i, rng.below(i as u64 + 1) as usize);
    }
    deck
}

/// Runs the whole chaos scenario; returns the availability numbers.
///
/// # Errors
///
/// Returns a human-readable message on the first contract violation (a
/// dead daemon, a dropped or duplicated response, a wrong verdict, an
/// unclean drain); the caller exits 1.
pub fn run_chaos(opts: &ChaosOptions) -> Result<ChaosStats, String> {
    let corpus = crate::corpus_sources();
    let say = |msg: &str| {
        if opts.verbose {
            eprintln!("chaos-smoke: {msg}");
        }
    };

    say(&format!("computing reference verdicts for {} programs", corpus.len()));
    let reference = reference_verdicts(&corpus)?;

    let socket = temp_path("sock");
    let cache = temp_path("cache.journal");
    let chaos_flag = format!("seed={}", opts.seed);
    let workers = opts.workers.to_string();
    say(&format!("spawning daemon (seed {}, {} workers, process isolation)", opts.seed, workers));
    let mut daemon = spawn_daemon(
        &socket,
        &cache,
        &[
            "--workers",
            &workers,
            "--isolate",
            "process",
            "--chaos",
            &chaos_flag,
            "--retries",
            "1",
            "--retry-backoff-ms",
            "20",
            "--breaker-threshold",
            "3",
            "--breaker-cooldown-ms",
            "400",
        ],
    )?;

    let mut rng = Rng::new(opts.seed);
    let deck = build_deck(&corpus, &mut rng);
    let mut client = Client::connect(&socket)?;
    let mut expected_ids = Vec::new();
    let mut malformed = 0u64;
    for probe in &deck {
        match probe {
            Probe::Corpus(id, name, source) => {
                expected_ids.push(*id);
                client.send(&verify_request(*id, name, source, None, None))?;
            }
            Probe::Hostile(id, engine, source, timeout_ms) => {
                expected_ids.push(*id);
                client.send(&verify_request(
                    *id,
                    &format!("probe-{id}"),
                    source,
                    Some(engine),
                    *timeout_ms,
                ))?;
            }
            Probe::Malformed(line) => {
                malformed += 1;
                client.send(line)?;
            }
        }
    }
    say(&format!("submitted {} jobs + {malformed} malformed lines", expected_ids.len()));

    // Collect until every id answered and every malformed line rejected.
    let mut responses: BTreeMap<i64, Json> = BTreeMap::new();
    let mut protocol_errors = 0u64;
    let deadline = Instant::now() + Duration::from_secs(240);
    while responses.len() < expected_ids.len() || protocol_errors < malformed {
        if Instant::now() > deadline {
            return Err(format!(
                "timed out: {} of {} jobs answered, {protocol_errors} of {malformed} malformed \
                 lines rejected",
                responses.len(),
                expected_ids.len()
            ));
        }
        let response = client.recv()?;
        match response.get("id").and_then(Json::as_int) {
            Some(id) => {
                if responses.insert(id, response).is_some() {
                    return Err(format!("id {id} answered more than once"));
                }
            }
            None => {
                if response.get("status").and_then(Json::as_str) != Some("error") {
                    return Err(format!("unexpected id-less response: {response:?}"));
                }
                protocol_errors += 1;
            }
        }
    }

    // 1. The daemon is still alive after the whole workload.
    if let Some(status) = daemon.child.try_wait().map_err(|e| format!("daemon wait: {e}"))? {
        return Err(format!("the daemon died under chaos: {status:?}"));
    }

    // 2 + 3. Exactly-once accounting and verdict correctness.
    let mut stats = ChaosStats {
        submitted: expected_ids.len() as u64,
        answered: 0,
        quarantined: 0,
        overloaded: 0,
        faulted: 0,
    };
    let id_of = |probe: &Probe| match probe {
        Probe::Corpus(id, _, _) | Probe::Hostile(id, _, _, _) => Some(*id),
        Probe::Malformed(_) => None,
    };
    for probe in &deck {
        let Some(id) = id_of(probe) else { continue };
        let response =
            responses.get(&(id as i64)).ok_or_else(|| format!("id {id} was never answered"))?;
        let status = response.get("status").and_then(Json::as_str).unwrap_or("?");
        match status {
            "done" => {}
            "quarantined" => {
                stats.answered += 1;
                stats.quarantined += 1;
                continue;
            }
            "overloaded" => {
                stats.answered += 1;
                stats.overloaded += 1;
                continue;
            }
            other => return Err(format!("id {id}: unexpected status `{other}`")),
        }
        stats.answered += 1;
        let task = response.get("task").ok_or_else(|| format!("id {id}: done without task"))?;
        let verdict = task.get("verdict").and_then(Json::as_str).unwrap_or("?");
        if verdict == "error" {
            stats.faulted += 1;
        }
        if let Probe::Corpus(_, name, _) = probe {
            let (ref_verdict, ref_digest) =
                reference.get(name).ok_or_else(|| format!("no reference for {name}"))?;
            let digest = task.get("cert_digest").and_then(Json::as_str).unwrap_or_default();
            if verdict != ref_verdict || digest != ref_digest {
                return Err(format!(
                    "WRONG VERDICT under chaos: {name} answered {verdict}/{digest}, reference \
                     {ref_verdict}/{ref_digest}"
                ));
            }
        }
    }
    say(&format!(
        "all {} jobs answered exactly once ({} quarantined, {} overloaded, {} faults absorbed); \
         verdict parity OK",
        stats.answered, stats.quarantined, stats.overloaded, stats.faulted
    ));

    // Breaker wave: the batched deck is admitted before any breaker can
    // trip, so drive abort-shim *sequentially* until its circuit opens —
    // a `quarantined` fast-fail must arrive within a bounded number of
    // consecutive faults, whatever breaker state the deck left behind.
    let mut wave_quarantined = 0u64;
    for wave in 0..8 {
        let id = 1_000 + wave;
        stats.submitted += 1;
        client.send(&verify_request(
            id,
            &format!("breaker-wave-{wave}"),
            &corpus[0].1,
            Some("abort-shim"),
            None,
        ))?;
        let response = client.recv()?;
        if response.get("id").and_then(Json::as_int) != Some(id as i64) {
            return Err(format!("breaker wave: response for the wrong id: {response:?}"));
        }
        stats.answered += 1;
        match response.get("status").and_then(Json::as_str) {
            Some("done") => {}
            Some("quarantined") => {
                stats.quarantined += 1;
                wave_quarantined += 1;
                if wave_quarantined >= 2 {
                    break;
                }
            }
            other => return Err(format!("breaker wave: unexpected status {other:?}")),
        }
    }
    if wave_quarantined == 0 {
        return Err("the abort-shim breaker never quarantined under sequential faults".to_string());
    }
    say(&format!("breaker wave: abort-shim quarantined after repeated faults ({wave_quarantined} fast-fails)"));

    // Supervision visibility: the extended stats must be served under load.
    client.send("{\"op\":\"stats\",\"id\":999999}")?;
    let daemon_stats = client.recv()?;
    if daemon_stats.get("status").and_then(Json::as_str) != Some("stats") {
        return Err(format!("expected a stats response, got {daemon_stats:?}"));
    }
    let respawned = daemon_stats
        .get("workers_respawned")
        .and_then(Json::as_int)
        .ok_or("stats response is missing workers_respawned")?;
    say(&format!("daemon stats: {respawned} workers respawned under chaos"));

    // 4. Clean protocol drain.
    client.send("{\"op\":\"shutdown\"}")?;
    let ack = client.recv()?;
    if ack.get("status").and_then(Json::as_str) != Some("shutdown") {
        return Err(format!("expected a shutdown acknowledgement, got {ack:?}"));
    }
    drop(client);
    let start = Instant::now();
    let exit = loop {
        if let Some(status) =
            daemon.child.try_wait().map_err(|e| format!("daemon wait failed: {e}"))?
        {
            break status;
        }
        if start.elapsed() > Duration::from_secs(60) {
            return Err("daemon did not exit after the shutdown op".to_string());
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    if exit.code() != Some(0) {
        return Err(format!("chaos drain must exit 0, got {exit:?}"));
    }
    say("drain: acknowledged, exit 0");

    // 5. Warm restart, chaos off, over the (possibly torn) journal.
    let socket2 = temp_path("sock2");
    let daemon2 = spawn_daemon(&socket2, &cache, &["--workers", &workers])?;
    let mut client2 = Client::connect(&socket2)?;
    for (i, (name, source)) in corpus.iter().enumerate() {
        client2.send(&verify_request(i, name, source, None, None))?;
    }
    let mut seen = 0;
    while seen < corpus.len() {
        let response = client2.recv()?;
        if response.get("status").and_then(Json::as_str) != Some("done") {
            return Err(format!("restart pass: unexpected response {response:?}"));
        }
        let task = response.get("task").ok_or("restart pass: done without task")?;
        let name = task.get("program").and_then(Json::as_str).unwrap_or_default();
        let verdict = task.get("verdict").and_then(Json::as_str).unwrap_or("?");
        let digest = task.get("cert_digest").and_then(Json::as_str).unwrap_or_default();
        let (ref_verdict, ref_digest) =
            reference.get(name).ok_or_else(|| format!("restart pass: no reference for {name}"))?;
        if verdict != ref_verdict || digest != ref_digest {
            return Err(format!(
                "restart pass: {name} answered {verdict}/{digest}, reference \
                 {ref_verdict}/{ref_digest}"
            ));
        }
        seen += 1;
    }
    drop(daemon2);
    say(&format!("warm restart over the surviving journal: all {seen} verdicts match"));

    if let Some(path) = &opts.json_path {
        let report = Json::object(vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("mode", Json::Str("chaos-smoke".to_string())),
            ("seed", Json::Int(opts.seed as i64)),
            ("submitted", Json::Int(stats.submitted as i64)),
            ("answered", Json::Int(stats.answered as i64)),
            ("quarantined", Json::Int(stats.quarantined as i64)),
            ("overloaded", Json::Int(stats.overloaded as i64)),
            ("faults_absorbed", Json::Int(stats.faulted as i64)),
            ("workers_respawned", Json::Int(respawned)),
            ("availability", Json::Float((stats.availability() * 1e4).round() / 1e4)),
        ]);
        let text = report.pretty();
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            say(&format!("availability artifact written to {path}"));
        }
    }

    std::fs::remove_file(&cache).ok();
    Ok(stats)
}
