//! `pathinv-cli serve-smoke` — the end-to-end service smoke harness.
//!
//! Spawns the *real* `pathinv-cli serve` binary on a Unix socket and drives
//! the whole robustness story from the outside, exactly as the `serve-smoke`
//! CI job does:
//!
//! 1. **Cold pass** — submits the 16-program source corpus
//!    ([`crate::corpus_sources`]) and requires every response uncached, with
//!    a malformed protocol line and a panicking (`panic-shim`) job injected
//!    mid-stream to prove one hostile client request cannot derail the rest.
//! 2. **Warm pass** — resubmits the corpus on a new connection and requires
//!    every verdict served from the persistent cache (`cached: true`) with
//!    byte-identical verdict and certificate digest.
//! 3. **SIGTERM drain** — terminates the daemon and requires a clean exit 0.
//! 4. **Warm restart** — starts a *fresh* daemon over the same journal and
//!    requires the cache to have survived the restart, then shuts it down
//!    over the protocol and checks the drain acknowledgement.
//!
//! Any deviation is a hard error (exit 1).  With `--json`, a small benchmark
//! artifact records the warm-vs-cold throughput for the trajectory record.
//!
//! This is the *gentle* end-to-end harness: every injected fault here is one
//! the in-thread isolation mode can absorb.  Its hostile sibling is
//! [`crate::chaos`] (`pathinv-cli chaos-smoke`), which spawns the daemon
//! under `--isolate process` with a seeded `--chaos` fault schedule and adds
//! aborting/memory-hogging engines, breaker quarantine, and torn cache
//! writes to the story.

use crate::json::{self, Json};
use crate::SCHEMA_VERSION;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Options for one smoke run.
#[derive(Clone, Debug)]
pub struct SmokeOptions {
    /// Where to write the benchmark artifact (`-` = stdout).
    pub json_path: Option<String>,
    /// Worker threads for the spawned daemon.
    pub workers: usize,
    /// Print per-phase progress.
    pub verbose: bool,
}

impl Default for SmokeOptions {
    fn default() -> SmokeOptions {
        SmokeOptions { json_path: None, workers: 4, verbose: true }
    }
}

/// A spawned daemon plus the temp paths it owns; the `Drop` impl kills the
/// process so a failing smoke run never leaks daemons.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("pathinv-smoke-{}-{n}-{tag}", std::process::id()))
}

/// Spawns `pathinv-cli serve` (this same binary) and waits for the socket.
fn spawn_daemon(socket: &Path, cache: &Path, workers: usize) -> Result<Daemon, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let child = Command::new(exe)
        .args([
            "serve",
            "--socket",
            &socket.display().to_string(),
            "--cache",
            &cache.display().to_string(),
            "--workers",
            &workers.to_string(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn daemon: {e}"))?;
    let daemon = Daemon { child, socket: socket.to_path_buf() };
    let start = Instant::now();
    while !daemon.socket.exists() {
        if start.elapsed() > Duration::from_secs(30) {
            return Err("daemon did not create its socket within 30 s".to_string());
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(daemon)
}

/// One protocol connection with line-based request/response plumbing.
struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| format!("cannot clone stream: {e}"))?);
        Ok(Client { writer: stream, reader })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send failed: {e}"))
    }

    fn recv(&mut self) -> Result<Json, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".to_string()),
            Ok(_) => json::parse(line.trim()).map_err(|e| format!("bad response `{line}`: {e}")),
            Err(e) => Err(format!("recv failed: {e}")),
        }
    }

    /// Receives until `count` responses with `status: "done"` arrived
    /// (results complete in worker order, not submission order); returns
    /// them and any non-done responses seen along the way.
    fn recv_done(&mut self, count: usize) -> Result<(Vec<Json>, Vec<Json>), String> {
        let mut done = Vec::with_capacity(count);
        let mut other = Vec::new();
        while done.len() < count {
            let response = self.recv()?;
            if response.get("status").and_then(Json::as_str) == Some("done") {
                done.push(response);
            } else {
                other.push(response);
            }
        }
        Ok((done, other))
    }
}

fn verify_request(id: usize, name: &str, source: &str) -> String {
    Json::object(vec![
        ("op", Json::Str("verify".to_string())),
        ("id", Json::Int(id as i64)),
        ("name", Json::Str(name.to_string())),
        ("program", Json::Str(source.to_string())),
    ])
    .compact()
}

/// One corpus submission pass; returns `(wall_ms, tasks by program name)`.
fn run_pass(
    client: &mut Client,
    corpus: &[(String, String)],
    expect_cached: bool,
    label: &str,
) -> Result<(f64, Vec<(String, Json)>), String> {
    let start = Instant::now();
    for (i, (name, source)) in corpus.iter().enumerate() {
        client.send(&verify_request(i, name, source))?;
    }
    let (done, other) = client.recv_done(corpus.len())?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    if !other.is_empty() {
        return Err(format!("{label}: unexpected non-result responses: {other:?}"));
    }
    let mut tasks = Vec::with_capacity(done.len());
    for response in &done {
        let cached = response.get("cached") == Some(&Json::Bool(true));
        let task = response.get("task").ok_or_else(|| format!("{label}: result without task"))?;
        let name = task
            .get("program")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{label}: task without program name"))?;
        if cached != expect_cached {
            return Err(format!(
                "{label}: {name} came back cached={cached}, expected cached={expect_cached}"
            ));
        }
        tasks.push((name.to_string(), task.clone()));
    }
    tasks.sort_by(|a, b| a.0.cmp(&b.0));
    Ok((wall_ms, tasks))
}

/// Verdict-parity hard check between two passes: verdict and certificate
/// digest must be byte-identical per program.
fn check_parity(cold: &[(String, Json)], warm: &[(String, Json)], label: &str) -> Vec<String> {
    let mut failures = Vec::new();
    for ((name_a, task_a), (name_b, task_b)) in cold.iter().zip(warm) {
        if name_a != name_b {
            failures.push(format!("{label}: program sets differ: {name_a} vs {name_b}"));
            continue;
        }
        for field in ["verdict", "cert_digest", "cert_kind"] {
            let a = task_a.get(field).and_then(Json::as_str).unwrap_or_default();
            let b = task_b.get(field).and_then(Json::as_str).unwrap_or_default();
            if a != b {
                failures.push(format!("{label}: {name_a}.{field}: `{a}` vs `{b}`"));
            }
        }
    }
    failures
}

/// Runs the whole smoke scenario.
///
/// # Errors
///
/// Returns a human-readable message on the first contract violation; the
/// caller exits 1.
pub fn run_serve_smoke(opts: &SmokeOptions) -> Result<(), String> {
    let corpus = crate::corpus_sources();
    let socket = temp_path("sock");
    let cache = temp_path("cache.journal");
    let say = |msg: &str| {
        if opts.verbose {
            eprintln!("serve-smoke: {msg}");
        }
    };

    say(&format!("spawning daemon ({} workers, cache {})", opts.workers, cache.display()));
    let mut daemon = spawn_daemon(&socket, &cache, opts.workers)?;
    let mut client = Client::connect(&socket)?;

    // --- Cold pass, with hostile requests injected mid-stream. -----------
    say(&format!("cold pass: {} programs", corpus.len()));
    let (mid, rest) = corpus.split_at(corpus.len() / 2);
    let cold_start = Instant::now();
    for (i, (name, source)) in mid.iter().enumerate() {
        client.send(&verify_request(i, name, source))?;
    }
    // A malformed line mid-stream must produce exactly one error response...
    client.send("this is not json {")?;
    // ...and a panicking engine job must come back as an errored *task*.
    client.send(
        &Json::object(vec![
            ("op", Json::Str("verify".to_string())),
            ("id", Json::Str("panic-probe".to_string())),
            ("name", Json::Str("panic-probe".to_string())),
            ("program", Json::Str(corpus[0].1.clone())),
            ("engine", Json::Str("panic-shim".to_string())),
        ])
        .compact(),
    )?;
    for (i, (name, source)) in rest.iter().enumerate() {
        client.send(&verify_request(mid.len() + i, name, source))?;
    }
    let (done, other) = client.recv_done(corpus.len() + 1)?;
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;
    let malformed_errors =
        other.iter().filter(|r| r.get("status").and_then(Json::as_str) == Some("error")).count();
    if malformed_errors != 1 {
        return Err(format!(
            "cold pass: expected exactly 1 protocol error for the malformed line, got \
             {malformed_errors} ({other:?})"
        ));
    }
    let mut cold_tasks = Vec::new();
    let mut panic_ok = false;
    for response in &done {
        let task = response.get("task").ok_or("cold pass: result without task")?;
        let name = task.get("program").and_then(Json::as_str).unwrap_or_default().to_string();
        if name == "panic-probe" {
            let verdict = task.get("verdict").and_then(Json::as_str).unwrap_or_default();
            let detail = task.get("detail").and_then(Json::as_str).unwrap_or_default();
            if verdict != "error" || !detail.contains("panicked") {
                return Err(format!(
                    "panic-shim job must yield an errored task, got {verdict}: {detail}"
                ));
            }
            panic_ok = true;
            continue;
        }
        if response.get("cached") == Some(&Json::Bool(true)) {
            return Err(format!("cold pass: {name} unexpectedly served from cache"));
        }
        cold_tasks.push((name, task.clone()));
    }
    if !panic_ok {
        return Err("cold pass: the panic-shim probe never came back".to_string());
    }
    cold_tasks.sort_by(|a, b| a.0.cmp(&b.0));
    say(&format!("cold pass done in {cold_ms:.0} ms; panic + malformed probes absorbed"));

    // --- Warm pass on a fresh connection. ---------------------------------
    let mut client2 = Client::connect(&socket)?;
    let (warm_ms, warm_tasks) = run_pass(&mut client2, &corpus, true, "warm pass")?;
    let parity = check_parity(&cold_tasks, &warm_tasks, "warm parity");
    if !parity.is_empty() {
        return Err(format!("verdict parity violated:\n  {}", parity.join("\n  ")));
    }
    say(&format!("warm pass done in {warm_ms:.0} ms, all {} hits, parity OK", corpus.len()));

    // --- Clean SIGTERM drain. ---------------------------------------------
    let pid = daemon.child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .map_err(|e| format!("cannot send SIGTERM: {e}"))?;
    if !status.success() {
        return Err("kill -TERM failed".to_string());
    }
    let exit = daemon.child.wait().map_err(|e| format!("daemon wait failed: {e}"))?;
    if exit.code() != Some(0) {
        return Err(format!("SIGTERM drain must exit 0, got {exit:?}"));
    }
    say("SIGTERM drain: exit 0");

    // --- Warm restart over the surviving journal. -------------------------
    let socket2 = temp_path("sock2");
    let mut daemon2 = spawn_daemon(&socket2, &cache, opts.workers)?;
    let mut client3 = Client::connect(&socket2)?;
    let (restart_ms, restart_tasks) = run_pass(&mut client3, &corpus, true, "restart pass")?;
    let parity = check_parity(&cold_tasks, &restart_tasks, "restart parity");
    if !parity.is_empty() {
        return Err(format!("restart parity violated:\n  {}", parity.join("\n  ")));
    }
    say(&format!("restart pass done in {restart_ms:.0} ms from the recovered journal"));

    // --- Protocol shutdown with drain acknowledgement. --------------------
    client3.send("{\"op\":\"shutdown\"}")?;
    let ack = client3.recv()?;
    if ack.get("status").and_then(Json::as_str) != Some("shutdown") {
        return Err(format!("expected a shutdown acknowledgement, got {ack:?}"));
    }
    drop(client3);
    // The Drop impl would kill -9; reap the clean exit explicitly.
    let start = Instant::now();
    let exit = loop {
        if let Some(status) =
            daemon2.child.try_wait().map_err(|e| format!("daemon wait failed: {e}"))?
        {
            break status;
        }
        if start.elapsed() > Duration::from_secs(30) {
            return Err("daemon did not exit after the shutdown op".to_string());
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    if exit.code() != Some(0) {
        return Err(format!("protocol shutdown must exit 0, got {exit:?}"));
    }
    say("protocol shutdown: acknowledged, exit 0");

    if let Some(path) = &opts.json_path {
        let report = Json::object(vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("mode", Json::Str("serve-smoke".to_string())),
            ("programs", Json::Int(corpus.len() as i64)),
            ("cold_ms", Json::Float(round1(cold_ms))),
            ("warm_ms", Json::Float(round1(warm_ms))),
            ("warm_restart_ms", Json::Float(round1(restart_ms))),
            ("warm_speedup", Json::Float(round1(cold_ms / warm_ms.max(0.001)))),
            ("parity_ok", Json::Bool(true)),
        ]);
        let text = report.pretty();
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            say(&format!("benchmark artifact written to {path}"));
        }
    }

    std::fs::remove_file(&cache).ok();
    Ok(())
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}
