//! Regenerates every figure and experiment of the paper and prints a
//! paper-vs-measured report.  See EXPERIMENTS.md for the recorded results.
//!
//! ```text
//! cargo run --release -p pathinv-cli --bin experiments            # everything
//! cargo run --release -p pathinv-cli --bin experiments -- f1 t5   # a subset
//!
//! # The deterministic benchmark trajectory (CI's bench-smoke job):
//! cargo run --release -p pathinv-cli --bin experiments -- bench \
//!     --bench-json BENCH_pr7.json --check tests/golden/bench.json \
//!     --compare-previous BENCH_pr6.json
//! ```
//!
//! The `bench` experiment exits nonzero when a task errors, when the
//! emitted report drifts from the golden passed to `--check`, or when any
//! per-task `solver_calls`/`simplex_calls` counter regresses against the
//! previous trajectory point passed to `--compare-previous`.

use pathinv_bench::{
    forward_with_cex, initcheck_with_cex, partition_with_ge_cex, partition_with_lt_cex,
};
use pathinv_cli::experiments::{run_bench, BenchConfig};
use pathinv_core::{path_program, PathInvariantRefiner, Verdict, Verifier};
use pathinv_invgen::PathInvariantGenerator;
use pathinv_ir::{corpus, parse_program, Path, Program};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Split flag/value pairs (for the bench experiment) from experiment ids.
    let mut ids: Vec<String> = Vec::new();
    let mut bench_config = BenchConfig::default();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value_for =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        let parsed = match arg.as_str() {
            "--bench-json" => value_for("--bench-json").map(|v| bench_config.bench_json = Some(v)),
            "--bench-golden" => {
                value_for("--bench-golden").map(|v| bench_config.bench_golden = Some(v))
            }
            "--check" => value_for("--check").map(|v| bench_config.check = Some(v)),
            "--compare-previous" => {
                value_for("--compare-previous").map(|v| bench_config.compare_previous = Some(v))
            }
            "--jobs" => value_for("--jobs").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| bench_config.jobs = Some(n.max(1)))
                    .map_err(|_| format!("bad --jobs `{v}`"))
            }),
            // Reject unknown flags loudly: a typo like `--chck` must not be
            // swallowed as an experiment id, silently skipping the drift
            // check while exiting 0.
            other if other.starts_with('-') => Err(format!("unknown option `{other}`")),
            other => {
                ids.push(other.to_string());
                Ok(())
            }
        };
        if let Err(msg) = parsed {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    }
    let bench_flagged = bench_config.bench_json.is_some()
        || bench_config.bench_golden.is_some()
        || bench_config.check.is_some()
        || bench_config.compare_previous.is_some()
        || bench_config.jobs.is_some();
    if ids.is_empty() && bench_flagged {
        ids.push("bench".to_string());
    }
    let want = |id: &str| ids.is_empty() || ids.iter().any(|a| a == id || a == "all");
    println!("Path Invariants (PLDI 2007) — experiment reproduction harness\n");
    if want("f1") {
        experiment_f1();
    }
    if want("f2") {
        experiment_f2();
    }
    if want("f3") {
        experiment_f3();
    }
    if want("f4") {
        experiment_f4();
    }
    if want("t5") {
        experiment_t5();
    }
    if want("d6") {
        experiment_d6();
    }
    if want("s1") {
        experiment_s1();
    }
    // The trajectory verifies the corpus twice, so it is opt-in (by id,
    // `all`, or any bench flag) rather than part of the bare default run.
    if ids.iter().any(|a| a == "bench" || a == "all") {
        banner("BENCH", "benchmark trajectory — corpus solver-call counters, cached vs uncached");
        if let Err(msg) = run_bench(&bench_config) {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("[{id}] {title}");
    println!("================================================================");
}

/// Figure 1: FORWARD — divergence of finite-path refinement vs. convergence
/// of path-invariant refinement.
fn experiment_f1() {
    banner("F1", "Figure 1 — FORWARD: loop unrolling vs. path invariants");
    let (program, cex) = forward_with_cex();
    println!("counterexample of Figure 1(b):\n{}", cex.render(&program));
    let pp = path_program(&program, &cex).expect("path program construction");
    println!(
        "path program of Figure 1(c): {} locations, {} transitions, hatted block at position {}",
        pp.program.num_locs(),
        pp.program.transitions().len(),
        pp.hatted_blocks[0].0
    );
    run_both_verifiers("FORWARD", &program, 4);
    println!();
}

/// Figure 2: INITCHECK — universally quantified path invariants.
fn experiment_f2() {
    banner("F2", "Figure 2 — INITCHECK: universally quantified invariants");
    let (program, cex) = initcheck_with_cex();
    let pp = path_program(&program, &cex).expect("path program construction");
    println!(
        "path program of Figure 2(c): {} locations, {} transitions, {} hatted blocks",
        pp.program.num_locs(),
        pp.program.transitions().len(),
        pp.hatted_blocks.len()
    );
    let start = Instant::now();
    match PathInvariantGenerator::new().generate(&pp.program) {
        Ok(generated) => {
            println!("quantified path invariants (synthesised in {:?}):", start.elapsed());
            for (loc, inv) in &generated.cutpoint_invariants {
                println!("  {}: {}", pp.program.loc_label(*loc), inv);
            }
            println!("paper (§5): forall k: 0 <= k <= n-1 -> a[k] = 0  and  forall k: i <= k <= n-1 -> a[k] = 0");
        }
        Err(e) => println!("synthesis failed: {e}"),
    }
    run_both_verifiers("INITCHECK", &program, 3);
    println!();
}

/// Figure 3: PARTITION — lazy disjunctive reasoning, one conjunct per
/// counterexample.
fn experiment_f3() {
    banner("F3", "Figure 3 — PARTITION: one quantified conjunct per counterexample");
    for (label, (program, cex), paper) in [
        ("then-branch", partition_with_ge_cex(), "forall k: 0 <= k < gelen -> ge[k] >= 0"),
        ("else-branch", partition_with_lt_cex(), "forall k: 0 <= k < ltlen -> lt[k] < 0"),
    ] {
        let pp = path_program(&program, &cex).expect("path program construction");
        let start = Instant::now();
        match PathInvariantGenerator::new().generate(&pp.program) {
            Ok(generated) => {
                println!("{label} path program ({:?}):", start.elapsed());
                for (loc, inv) in &generated.cutpoint_invariants {
                    println!("  {}: {}", pp.program.loc_label(*loc), inv);
                }
                println!("  paper (Eq. 1/2): {paper}");
            }
            Err(e) => println!("{label}: synthesis failed: {e}"),
        }
    }
    println!();
}

/// Figure 4 / §3 worked example: the path-program transition set.
fn experiment_f4() {
    banner("F4", "Figure 4 — path-program construction for the §3 worked example");
    let program = corpus::figure4_program();
    let path = Path::new(&program, corpus::figure4_path(&program)).expect("figure-4 path");
    let pp = path_program(&program, &path).expect("path program construction");
    println!("{}", pp.program);
    println!(
        "paper: 17 transitions including two identity (skip) transitions per hatted block;\n\
         here:  {} transitions (the hatted copies of the two exit locations are collapsed,\n\
         as drawn in Figures 1(c) and 2(c)), hatted blocks at positions {:?}",
        pp.program.transitions().len(),
        pp.hatted_blocks.iter().map(|(i, _)| *i).collect::<Vec<_>>()
    );
    println!();
}

/// §5 measurements: template attempts and synthesis times.
fn experiment_t5() {
    banner("T5", "§5 — template instantiation measurements");
    // FORWARD: equality template fails, refined template succeeds.
    let (program, cex) = forward_with_cex();
    let pp = path_program(&program, &cex).expect("path program construction");
    match PathInvariantGenerator::new().generate(&pp.program) {
        Ok(generated) => {
            println!("FORWARD path program (paper: 40 ms failure, then 130 ms success):");
            for a in &generated.attempts {
                println!(
                    "  {:<45} {:>9.1?}  {}",
                    a.description,
                    a.duration,
                    if a.succeeded { "success" } else { "failure" }
                );
            }
            for (loc, inv) in &generated.cutpoint_invariants {
                println!(
                    "  invariant at {}: {}   (paper: a+b = 3i and a+b <= 3n)",
                    pp.program.loc_label(*loc),
                    inv
                );
            }
        }
        Err(e) => println!("FORWARD synthesis failed: {e}"),
    }
    // INITCHECK: quantified template, no refinement needed (paper: 3 s).
    let (program, cex) = initcheck_with_cex();
    let pp = path_program(&program, &cex).expect("path program construction");
    match PathInvariantGenerator::new().generate(&pp.program) {
        Ok(generated) => {
            println!("INITCHECK path program (paper: 3 s, no template refinement):");
            for a in &generated.attempts {
                println!(
                    "  {:<45} {:>9.1?}  {}",
                    a.description,
                    a.duration,
                    if a.succeeded { "success" } else { "failure" }
                );
            }
        }
        Err(e) => println!("INITCHECK synthesis failed: {e}"),
    }
    // PARTITION: same behaviour as INITCHECK (paper: "similar, no refinement").
    let (program, cex) = partition_with_ge_cex();
    let pp = path_program(&program, &cex).expect("path program construction");
    match PathInvariantGenerator::new().generate(&pp.program) {
        Ok(generated) => {
            println!("PARTITION path program (paper: similar to INITCHECK, no refinement):");
            for a in &generated.attempts {
                println!(
                    "  {:<45} {:>9.1?}  {}",
                    a.description,
                    a.duration,
                    if a.succeeded { "success" } else { "failure" }
                );
            }
        }
        Err(e) => println!("PARTITION synthesis failed: {e}"),
    }
    println!();
}

/// §6: the buggy INITCHECK variant is falsified.
fn experiment_d6() {
    banner("D6", "§6 — falsification of the buggy INITCHECK variant");
    let program = parse_program(
        "proc buggy_init(a: int[]) {
            var i: int;
            for (i = 0; i < 3; i++) { a[i] = 1; }
            assert(a[0] == 0);
        }",
    )
    .expect("buggy program parses");
    let start = Instant::now();
    let result = Verifier::path_invariants().verify(&program).expect("verification runs");
    println!(
        "verdict after {} refinements in {:?}: {}",
        result.refinements,
        start.elapsed(),
        match &result.verdict {
            Verdict::Unsafe { .. } =>
                "bug confirmed (as the paper predicts: no safe path-invariant map exists)",
            Verdict::Safe => "UNEXPECTED proof",
            Verdict::Unknown { reason } => reason,
            Verdict::Cancelled => "UNEXPECTED cancellation (no token was installed)",
        }
    );
    println!("(the paper uses a loop bound of 100; the bound here is 3 so the concrete\n counterexample, which must unroll the loop, stays short)");
    println!();
}

/// §6: the suite "none of which could be proved by BLAST".
fn experiment_s1() {
    banner("S1", "§6 — benchmark suite: path invariants vs. the finite-path baseline");
    println!(
        "{:<26} {:>6} {:>12} {:>22} {:>22}",
        "program", "safe?", "quantified?", "path-invariants", "baseline (bound 4)"
    );
    for (entry, program) in corpus::suite_programs() {
        let start = Instant::now();
        let pi = Verifier::path_invariants().verify(&program);
        let pi_str = verdict_summary(&pi, start.elapsed());
        let start = Instant::now();
        let base = Verifier::path_predicates(4).verify(&program);
        let base_str = verdict_summary(&base, start.elapsed());
        println!(
            "{:<26} {:>6} {:>12} {:>22} {:>22}",
            entry.name, entry.safe, entry.needs_quantifiers, pi_str, base_str
        );
    }
    println!();
}

fn verdict_summary(
    r: &Result<pathinv_core::VerificationResult, pathinv_core::CoreError>,
    elapsed: std::time::Duration,
) -> String {
    match r {
        Ok(res) => match &res.verdict {
            Verdict::Safe => format!("safe ({} ref, {:.1?})", res.refinements, elapsed),
            Verdict::Unsafe { .. } => format!("bug ({} ref, {:.1?})", res.refinements, elapsed),
            Verdict::Unknown { .. } => format!("unknown ({} ref)", res.refinements),
            Verdict::Cancelled => "cancelled".to_string(),
        },
        Err(e) => format!("error: {e}"),
    }
}

fn run_both_verifiers(name: &str, program: &Program, baseline_bound: usize) {
    let start = Instant::now();
    match Verifier::path_invariants().verify(program) {
        Ok(res) => println!(
            "{name} with path invariants: {:?} after {} refinements in {:?}",
            res.verdict,
            res.refinements,
            start.elapsed()
        ),
        Err(e) => println!("{name} with path invariants: error: {e}"),
    }
    let start = Instant::now();
    match Verifier::path_predicates(baseline_bound).verify(program) {
        Ok(res) => println!(
            "{name} with the finite-path baseline (bound {baseline_bound}): {:?} after {} refinements in {:?}",
            res.verdict,
            res.refinements,
            start.elapsed()
        ),
        Err(e) => println!("{name} with the finite-path baseline: error: {e}"),
    }
    // One refinement step in isolation, for the per-step comparison.
    let _ = PathInvariantRefiner::new();
}
