//! `pathinv-cli serve` — the verification service daemon.
//!
//! A long-running process accepting line-delimited JSON jobs on a Unix
//! socket (`--socket PATH`) or on stdin, scheduling them on a worker pool,
//! and streaming one result line per job.  Robustness is the design driver
//! (DESIGN.md §14): every job is treated as hostile.
//!
//! * **Fault isolation.**  Jobs execute through [`pathinv_core::run_job`],
//!   so a panicking engine yields an `"error"` task — never a dead worker,
//!   never a dead daemon.
//! * **Deadlines.**  Each job's [`CancellationToken`] is registered with
//!   the watchdog *at admission* (queue wait counts), so an overdue job —
//!   including the deliberately divergent `spin-shim` — comes back as an
//!   honest `cancelled` verdict.
//! * **Bounded admission.**  The queue holds at most `--queue` jobs;
//!   beyond that, submissions are rejected immediately with
//!   `status: "overloaded"` instead of growing memory without bound.
//! * **Graceful shutdown.**  SIGTERM or `{"op":"shutdown"}` stops
//!   admission, lets in-flight jobs finish within `--drain-grace-ms`,
//!   cancels whatever is still queued or running after the grace, flushes
//!   the verdict cache, and exits 0.
//! * **Persistent memoization.**  Deterministic verdicts are cached in the
//!   crash-safe journal of [`crate::cache`], keyed on
//!   [`pathinv_core::job_fingerprint`]; a warm resubmission is served in
//!   `O(1)` with `cached: true`, across daemon restarts.
//! * **Supervision** (DESIGN.md §15).  `--isolate process` re-execs each
//!   job in a child of this binary ([`crate::isolate`]), so aborts, stack
//!   overflows, and OOM kills become `error` tasks instead of daemon death.
//!   A supervisor thread respawns crashed workers and re-enqueues
//!   transiently-failed jobs with bounded exponential backoff plus
//!   deterministic jitter.  A per-engine circuit breaker (keyed on
//!   [`EngineSpec::engine_name`]) trips open after `--breaker-threshold`
//!   consecutive faults, fast-fails submissions with
//!   `status: "quarantined"` while open, and half-opens after
//!   `--breaker-cooldown-ms` to admit a single probe.
//! * **Chaos mode.**  `--chaos seed=N` arms seeded fault injection — torn,
//!   failed, and slow cache writes plus random worker exits — so the
//!   `chaos-smoke` harness ([`crate::chaos`]) can prove the daemon survives
//!   a hostile environment without dying or serving a wrong verdict.
//!
//! # Protocol
//!
//! One compact JSON value per `\n`-terminated line, both directions.
//! Requests:
//!
//! ```text
//! {"op":"verify","id":1,"program":"proc p(x: int) { ... }",
//!  "engine":"cegar","refiner":"path-invariants","timeout_ms":5000,
//!  "name":"demo"}
//! {"op":"ping"}        {"op":"stats"}        {"op":"shutdown"}
//! ```
//!
//! Responses carry `status`: `"done"` (with the task record under `task`
//! and the cache disposition under `cached`), `"overloaded"`,
//! `"shutting-down"`, `"error"` (with `error`), `"pong"`, `"stats"`, or the
//! final `"shutdown"` acknowledgement.  A malformed line produces one
//! `status: "error"` response and the stream continues — a client bug
//! cannot take the service down.

use crate::cache::{CacheChaos, VerdictCache};
use crate::isolate::{run_job_in_child, ChildRun};
use crate::json::{self, Json};
use pathinv_core::{
    job_fingerprint, run_job, CancellationToken, CegarConfig, EngineSpec, JobOutcome, JobSpec,
    VerifierStats,
};
use pathinv_ir::{parse_program, Program};
use pathinv_report::{round3, TaskReport, SCHEMA_VERSION};
use pathinv_smt::{enforce_deadline, DeadlineGuard};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where a job executes: on the worker thread itself, or in a re-exec'd
/// child process the worker supervises (see [`crate::isolate`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IsolationMode {
    /// In-thread execution behind `catch_unwind`: cheap, absorbs panics,
    /// but an abort or OOM kills the daemon.
    Thread,
    /// One child process per job, hard-killed on deadline: aborts, stack
    /// overflows, and OOM kills become `error` tasks.
    Process,
}

impl IsolationMode {
    /// The flag spelling (`"thread"` / `"process"`).
    pub fn name(self) -> &'static str {
        match self {
            IsolationMode::Thread => "thread",
            IsolationMode::Process => "process",
        }
    }
}

/// Seeded chaos injection for one `serve` run (`--chaos seed=N`): worker
/// exits plus the cache-write faults of [`CacheChaos`].
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for every chaos decision stream; a run is reproducible from it.
    pub seed: u64,
    /// Per-mille probability that a worker thread exits after completing a
    /// job (the supervisor must respawn it).
    pub worker_exit_per_mille: u16,
}

impl ChaosConfig {
    /// The default chaos mix behind `--chaos seed=N`.
    pub fn from_seed(seed: u64) -> ChaosConfig {
        ChaosConfig { seed, worker_exit_per_mille: 60 }
    }
}

/// Configuration of one `serve` run (defaults match the CLI flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix socket path to listen on; `None` serves stdin/stdout.
    pub socket: Option<PathBuf>,
    /// Verdict-cache journal path; `None` keeps the cache in memory only.
    pub cache_path: Option<PathBuf>,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it are rejected with
    /// `status: "overloaded"`.
    pub queue_capacity: usize,
    /// Deadline applied to jobs that do not carry their own `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// How long a shutdown drain waits for in-flight jobs before cancelling
    /// them.
    pub drain_grace_ms: u64,
    /// Job execution isolation (`--isolate thread|process`).
    pub isolation: IsolationMode,
    /// Retries for faulted (`error`) jobs before the fault is reported
    /// (`--retries`); `0` reports the first fault.
    pub max_retries: u32,
    /// Base delay of the exponential retry backoff (`--retry-backoff-ms`).
    pub retry_backoff_ms: u64,
    /// Consecutive faults that trip an engine's circuit breaker open
    /// (`--breaker-threshold`); `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-opening for a
    /// probe (`--breaker-cooldown-ms`).
    pub breaker_cooldown_ms: u64,
    /// Verdict-journal size threshold for automatic compaction
    /// (`--cache-compact-bytes`); `None` keeps the library default.
    pub cache_compact_bytes: Option<u64>,
    /// Seeded fault injection (`--chaos seed=N`); `None` runs clean.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            socket: None,
            cache_path: None,
            workers: 2,
            queue_capacity: 64,
            default_timeout_ms: None,
            drain_grace_ms: 5_000,
            isolation: IsolationMode::Thread,
            max_retries: 1,
            retry_backoff_ms: 50,
            breaker_threshold: 5,
            breaker_cooldown_ms: 10_000,
            cache_compact_bytes: None,
            chaos: None,
        }
    }
}

/// SIGTERM latch: the handler only stores a flag (async-signal-safe); the
/// accept/input loops poll it.
static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler (via the libc already linked into every
/// Rust binary on this platform; no crate dependency).
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM_NUM: i32 = 15;
    unsafe {
        signal(SIGTERM_NUM, on_sigterm as *const () as usize);
    }
}

/// A sink result lines are written to: connections share one writer between
/// the reader thread (immediate responses) and the workers (job results).
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Writes one response line; errors (client hung up) are reported to stderr
/// and otherwise ignored — a dead client must not kill the daemon.
fn write_line(out: &SharedWriter, value: &Json) {
    let mut w = out.lock().expect("writer lock poisoned");
    if let Err(e) = writeln!(w, "{}", value.compact()).and_then(|()| w.flush()) {
        eprintln!("serve: dropping response for a disconnected client: {e}");
    }
}

/// One admitted job waiting for (or holding) a worker.
struct Job {
    /// Echoed request id (any JSON value; `Null` when absent).
    id: Json,
    /// Report name for the task record.
    name: String,
    program: Program,
    /// Source text of the program; the process-isolation child re-parses
    /// it on its side of the pipe.
    source: String,
    engine: EngineSpec,
    /// The deadline this job was admitted under, for the detail message.
    timeout_ms: Option<u64>,
    /// Cache key (computed at admission, where the program is in hand).
    fingerprint: String,
    /// Admission sequence number; identifies the job in the active set.
    seq: u64,
    /// Faulted attempts so far; bounded by `max_retries`.
    attempt: u32,
    token: CancellationToken,
    /// Watchdog registration; held so the deadline spans queue wait plus
    /// execution (and retries), and dropped (deregistered) when the job
    /// completes.
    guard: Option<DeadlineGuard>,
    out: SharedWriter,
}

/// Circuit-breaker state for one engine name (DESIGN.md §15): `Closed`
/// admits, `Open` fast-fails until the cooldown instant, `HalfOpen` admits
/// exactly one probe whose outcome closes or re-opens the breaker.
enum BreakerState {
    Closed,
    Open(Instant),
    HalfOpen,
}

impl BreakerState {
    fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open(_) => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// One engine's circuit breaker.
struct Breaker {
    state: BreakerState,
    consecutive_faults: u32,
    trips: u64,
}

impl Default for Breaker {
    fn default() -> Breaker {
        Breaker { state: BreakerState::Closed, consecutive_faults: 0, trips: 0 }
    }
}

/// Per-status / per-verdict response tallies for `{"op":"stats"}`.
#[derive(Default)]
struct ResponseCounts {
    statuses: HashMap<String, u64>,
    verdicts: HashMap<String, u64>,
}

/// The worker-exit half of chaos mode: a seeded LCG rolled after every
/// completed job.
struct ChaosRng {
    state: Mutex<u64>,
    worker_exit_per_mille: u16,
}

impl ChaosRng {
    fn roll_worker_exit(&self) -> bool {
        let mut state = self.state.lock().expect("chaos rng poisoned");
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (((*state >> 33) % 1000) as u16) < self.worker_exit_per_mille
    }
}

/// Shared daemon state.
struct Service {
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    capacity: usize,
    /// Set once: admission stops, workers exit when the queue is empty.
    shutdown: AtomicBool,
    cache: Mutex<VerdictCache>,
    /// Jobs currently executing (admission seq → token), so a drain can
    /// cancel stragglers.
    active: Mutex<Vec<(u64, CancellationToken)>>,
    /// Faulted jobs parked for a backoff delay; the supervisor re-enqueues
    /// them when due.
    delayed: Mutex<Vec<(Instant, Job)>>,
    /// Worker pool handles; the supervisor replaces finished slots, the
    /// drain joins whatever is left.
    worker_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Supervisor thread handle, joined first during the drain.
    supervisor: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Per-engine circuit breakers, keyed on [`EngineSpec::engine_name`].
    breakers: Mutex<HashMap<String, Breaker>>,
    counts: Mutex<ResponseCounts>,
    isolation: IsolationMode,
    max_retries: u32,
    retry_backoff_ms: u64,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    chaos: Option<ChaosRng>,
    workers: usize,
    workers_respawned: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_retried: AtomicU64,
    seq: AtomicU64,
}

impl Service {
    /// Tallies one response line for the stats op.
    fn note_response(&self, status: &str, verdict: Option<&str>) {
        let mut counts = self.counts.lock().expect("counts poisoned");
        *counts.statuses.entry(status.to_string()).or_insert(0) += 1;
        if let Some(verdict) = verdict {
            *counts.verdicts.entry(verdict.to_string()).or_insert(0) += 1;
        }
    }

    /// Feeds one attempt outcome to the engine's breaker: faults accumulate
    /// (or re-open a half-open breaker), conclusive outcomes reset it.
    fn record_engine_outcome(&self, engine: &str, fault: bool) {
        if self.breaker_threshold == 0 {
            return;
        }
        let mut breakers = self.breakers.lock().expect("breakers poisoned");
        let breaker = breakers.entry(engine.to_string()).or_default();
        if fault {
            breaker.consecutive_faults += 1;
            if matches!(breaker.state, BreakerState::HalfOpen)
                || breaker.consecutive_faults >= self.breaker_threshold
            {
                breaker.state = BreakerState::Open(Instant::now() + self.breaker_cooldown);
                breaker.consecutive_faults = 0;
                breaker.trips += 1;
            }
        } else {
            breaker.consecutive_faults = 0;
            breaker.state = BreakerState::Closed;
        }
    }
}

/// Whether the connection should keep reading after a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Keep serving this connection.
    Continue,
    /// A shutdown was requested on this connection.
    Shutdown,
}

/// A running service: shared state plus the worker pool.  `run_serve` wraps
/// it in the socket/stdin front ends; unit and integration tests drive it
/// directly.
pub struct ServiceHandle {
    service: Arc<Service>,
    default_timeout_ms: Option<u64>,
    drain_grace: Duration,
}

impl ServiceHandle {
    /// Opens the cache and starts the worker pool plus the supervisor.
    pub fn start(config: &ServeConfig) -> ServiceHandle {
        let mut cache = match &config.cache_path {
            Some(path) => VerdictCache::open(path),
            None => VerdictCache::in_memory(),
        };
        for warning in &cache.warnings {
            eprintln!("serve: {warning}");
        }
        if let Some(bytes) = config.cache_compact_bytes {
            cache.set_compact_threshold(bytes);
        }
        if let Some(chaos) = &config.chaos {
            cache.set_chaos(CacheChaos::from_seed(chaos.seed));
        }
        let service = Arc::new(Service {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(cache),
            active: Mutex::new(Vec::new()),
            delayed: Mutex::new(Vec::new()),
            worker_threads: Mutex::new(Vec::new()),
            supervisor: Mutex::new(None),
            breakers: Mutex::new(HashMap::new()),
            counts: Mutex::new(ResponseCounts::default()),
            isolation: config.isolation,
            max_retries: config.max_retries,
            retry_backoff_ms: config.retry_backoff_ms.max(1),
            breaker_threshold: config.breaker_threshold,
            breaker_cooldown: Duration::from_millis(config.breaker_cooldown_ms.max(1)),
            chaos: config.chaos.as_ref().map(|c| ChaosRng {
                // Offset the seed so the worker-exit stream differs from
                // the cache-fault stream derived from the same seed.
                state: Mutex::new(c.seed ^ 0x5bd1_e995_7b93_d3b3),
                worker_exit_per_mille: c.worker_exit_per_mille,
            }),
            workers: config.workers.max(1),
            workers_respawned: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_retried: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        });
        {
            let mut workers = service.worker_threads.lock().expect("workers poisoned");
            for i in 0..service.workers {
                workers.push(spawn_worker(&service, format!("pathinv-serve-worker-{i}")));
            }
        }
        let supervisor = {
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("pathinv-serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&service))
                .expect("spawning the service supervisor")
        };
        *service.supervisor.lock().expect("supervisor slot poisoned") = Some(supervisor);
        ServiceHandle {
            service,
            default_timeout_ms: config.default_timeout_ms,
            drain_grace: Duration::from_millis(config.drain_grace_ms),
        }
    }

    /// Handles one protocol line, writing any immediate response to `out`
    /// (job results arrive later from the worker pool).
    pub fn handle_line(&self, line: &str, out: &SharedWriter) -> Flow {
        let line = line.trim();
        if line.is_empty() {
            return Flow::Continue;
        }
        let request = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                write_line(out, &error_response(&Json::Null, &format!("malformed line: {e}")));
                return Flow::Continue;
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        match request.get("op").and_then(Json::as_str) {
            Some("ping") => {
                write_line(
                    out,
                    &Json::object(vec![("id", id), ("status", Json::Str("pong".to_string()))]),
                );
                Flow::Continue
            }
            Some("stats") => {
                write_line(out, &self.stats_response(&id));
                Flow::Continue
            }
            Some("shutdown") => Flow::Shutdown,
            Some("verify") => {
                self.submit(&request, id, out);
                Flow::Continue
            }
            Some(op) => {
                write_line(out, &error_response(&id, &format!("unknown op `{op}`")));
                Flow::Continue
            }
            None => {
                write_line(out, &error_response(&id, "missing `op` field"));
                Flow::Continue
            }
        }
    }

    /// Admits (or rejects) one verify request.
    fn submit(&self, request: &Json, id: Json, out: &SharedWriter) {
        let service = &self.service;
        if service.shutdown.load(Ordering::SeqCst) {
            write_line(out, &status_response(&id, "shutting-down"));
            service.note_response("shutting-down", None);
            return;
        }
        let (name, source, program, engine, timeout_ms) =
            match parse_verify_request(request, self.default_timeout_ms) {
                Ok(parts) => parts,
                Err(msg) => {
                    write_line(out, &error_response(&id, &msg));
                    service.note_response("error", None);
                    return;
                }
            };
        let seq = service.seq.fetch_add(1, Ordering::Relaxed);
        let name = name.unwrap_or_else(|| format!("job-{seq}"));
        let fingerprint = job_fingerprint(&program, &engine);
        // Warm path: a cached deterministic verdict is replayed without
        // touching the queue, the workers, the breaker, or any solver.
        if !engine.is_shim() {
            let cached = service.cache.lock().expect("cache lock poisoned").lookup(&fingerprint);
            if let Some(task) = cached {
                let task = restamp_task(task, &name);
                let verdict = task.get("verdict").and_then(Json::as_str).map(str::to_string);
                write_line(out, &result_response(&id, true, &fingerprint, task));
                service.note_response("done", verdict.as_deref());
                service.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                service.jobs_completed.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // Breaker gate: while an engine is quarantined, fast-fail instead
        // of burning a worker on a fault that just keeps happening.
        if service.breaker_threshold > 0 {
            let mut breakers = service.breakers.lock().expect("breakers poisoned");
            let breaker = breakers.entry(engine.engine_name().to_string()).or_default();
            let now = Instant::now();
            let quarantined = match breaker.state {
                BreakerState::Closed => None,
                BreakerState::HalfOpen => Some(service.breaker_cooldown),
                BreakerState::Open(until) if now < until => Some(until - now),
                BreakerState::Open(_) => {
                    // Cooldown elapsed: this submission is the probe.
                    breaker.state = BreakerState::HalfOpen;
                    None
                }
            };
            drop(breakers);
            if let Some(retry_after) = quarantined {
                write_line(
                    out,
                    &quarantined_response(&id, engine.engine_name(), retry_after.as_millis()),
                );
                service.note_response("quarantined", None);
                return;
            }
        }
        let token = CancellationToken::new();
        let guard = timeout_ms.map(|ms| enforce_deadline(&token, Duration::from_millis(ms)));
        let job = Job {
            id,
            name,
            program,
            source,
            engine,
            timeout_ms,
            fingerprint,
            seq,
            attempt: 0,
            token,
            guard,
            out: Arc::clone(out),
        };
        let mut queue = service.queue.lock().expect("job queue poisoned");
        if queue.len() >= service.capacity {
            drop(queue);
            write_line(&job.out, &status_response(&job.id, "overloaded"));
            service.note_response("overloaded", None);
            return;
        }
        queue.push_back(job);
        drop(queue);
        service.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        service.queue_cv.notify_one();
    }

    fn stats_response(&self, id: &Json) -> Json {
        let service = &self.service;
        let queue_depth = service.queue.lock().expect("job queue poisoned").len();
        let delayed = service.delayed.lock().expect("delayed set poisoned").len();
        let active = service.active.lock().expect("active set poisoned").len();
        let cache = service.cache.lock().expect("cache lock poisoned");
        let cache_stats = Json::object(vec![
            ("entries", Json::Int(cache.len() as i64)),
            ("journal_bytes", Json::Int(cache.journal_bytes() as i64)),
            ("compactions", Json::Int(cache.compactions as i64)),
            ("degraded", Json::Bool(cache.is_degraded())),
        ]);
        let sorted_counts = |map: &HashMap<String, u64>| {
            let mut pairs: Vec<(String, Json)> =
                map.iter().map(|(k, v)| (k.clone(), Json::Int(*v as i64))).collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Object(pairs)
        };
        let (statuses, verdicts) = {
            let counts = service.counts.lock().expect("counts poisoned");
            (sorted_counts(&counts.statuses), sorted_counts(&counts.verdicts))
        };
        let jobs = Json::object(vec![
            ("submitted", Json::Int(service.jobs_submitted.load(Ordering::Relaxed) as i64)),
            ("completed", Json::Int(service.jobs_completed.load(Ordering::Relaxed) as i64)),
            ("retried", Json::Int(service.jobs_retried.load(Ordering::Relaxed) as i64)),
            ("statuses", statuses),
            ("verdicts", verdicts),
        ]);
        let breakers = {
            let breakers = service.breakers.lock().expect("breakers poisoned");
            let mut pairs: Vec<(String, Json)> = breakers
                .iter()
                .map(|(name, b)| {
                    (
                        name.clone(),
                        Json::object(vec![
                            ("state", Json::Str(b.state.name().to_string())),
                            ("consecutive_faults", Json::Int(b.consecutive_faults as i64)),
                            ("trips", Json::Int(b.trips as i64)),
                        ]),
                    )
                })
                .collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Object(pairs)
        };
        Json::object(vec![
            ("id", id.clone()),
            ("status", Json::Str("stats".to_string())),
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("workers", Json::Int(service.workers as i64)),
            (
                "workers_respawned",
                Json::Int(service.workers_respawned.load(Ordering::Relaxed) as i64),
            ),
            ("isolation", Json::Str(service.isolation.name().to_string())),
            ("queue_depth", Json::Int(queue_depth as i64)),
            ("delayed", Json::Int(delayed as i64)),
            ("active", Json::Int(active as i64)),
            ("cache_size", Json::Int(cache.len() as i64)),
            ("cache_hits", Json::Int(cache.hits as i64)),
            ("cache_misses", Json::Int(cache.misses as i64)),
            ("cache", cache_stats),
            ("jobs_submitted", Json::Int(service.jobs_submitted.load(Ordering::Relaxed) as i64)),
            ("jobs_completed", Json::Int(service.jobs_completed.load(Ordering::Relaxed) as i64)),
            ("jobs", jobs),
            ("breakers", breakers),
        ])
    }

    /// Jobs completed so far (for the shutdown acknowledgement).
    pub fn jobs_completed(&self) -> u64 {
        self.service.jobs_completed.load(Ordering::Relaxed)
    }

    /// Drains the service: stops admission, joins the supervisor, reports
    /// still-queued and backoff-parked jobs as `cancelled`, waits up to the
    /// grace period for in-flight jobs, cancels the stragglers, joins the
    /// workers, and flushes the cache journal.  Returns the total number of
    /// jobs completed.  Idempotent: a second call finds no queue, no active
    /// jobs, and no workers left to join.
    pub fn drain(&self) -> u64 {
        let service = &self.service;
        service.shutdown.store(true, Ordering::SeqCst);
        service.queue_cv.notify_all();
        // The supervisor goes first so nothing re-enqueues or respawns
        // behind the drain's back.
        if let Some(supervisor) =
            service.supervisor.lock().expect("supervisor slot poisoned").take()
        {
            let _ = supervisor.join();
        }
        // Queued-but-not-started jobs (including retries parked for
        // backoff) are cancelled, not silently dropped: every admitted job
        // gets exactly one result line.
        drain_pending(service);
        // Give in-flight jobs the grace period, then cancel them too; the
        // workers report each with an honest `cancelled` line.
        let deadline = Instant::now() + self.drain_grace;
        while Instant::now() < deadline {
            if service.active.lock().expect("active set poisoned").is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for (_, token) in service.active.lock().expect("active set poisoned").iter() {
            token.cancel();
        }
        let workers =
            std::mem::take(&mut *service.worker_threads.lock().expect("workers poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
        // A worker may have parked one last retry between the first sweep
        // and its own shutdown check; sweep again now that all are joined.
        drain_pending(service);
        service.cache.lock().expect("cache lock poisoned").sync();
        service.jobs_completed.load(Ordering::Relaxed)
    }
}

/// Cancels and reports every job sitting in the queue or the backoff pen.
fn drain_pending(service: &Service) {
    let queued: Vec<Job> = {
        let mut queue = service.queue.lock().expect("job queue poisoned");
        queue.drain(..).collect()
    };
    let delayed: Vec<Job> = {
        let mut delayed = service.delayed.lock().expect("delayed set poisoned");
        delayed.drain(..).map(|(_, job)| job).collect()
    };
    for job in queued.into_iter().chain(delayed) {
        job.token.cancel();
        let outcome = cancelled_outcome("cancelled by shutdown");
        let task = TaskReport::from_outcome(job.name.clone(), &job.engine, &outcome).to_json();
        write_line(&job.out, &result_response(&job.id, false, &job.fingerprint, task));
        service.note_response("done", Some("cancelled"));
        service.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Spawns one worker thread over the shared service state.
fn spawn_worker(service: &Arc<Service>, label: String) -> std::thread::JoinHandle<()> {
    let service = Arc::clone(service);
    std::thread::Builder::new()
        .name(label)
        .spawn(move || worker_loop(&service))
        .expect("spawning a service worker")
}

/// The supervisor body (DESIGN.md §15): re-enqueues backoff-parked retries
/// when due and respawns workers that exited outside a drain — whether a
/// real crash or an injected chaos exit.  Exits as soon as the shutdown
/// flag is up; the drain joins it before sweeping the queues.
fn supervisor_loop(service: &Arc<Service>) {
    let mut respawns = 0u64;
    while !service.shutdown.load(Ordering::SeqCst) {
        // Move due retries back onto the queue.  Capacity is not
        // re-checked: these jobs were admitted once already.
        let now = Instant::now();
        let due: Vec<Job> = {
            let mut delayed = service.delayed.lock().expect("delayed set poisoned");
            let mut due = Vec::new();
            let mut i = 0;
            while i < delayed.len() {
                if delayed[i].0 <= now {
                    due.push(delayed.remove(i).1);
                } else {
                    i += 1;
                }
            }
            due
        };
        if !due.is_empty() {
            let mut queue = service.queue.lock().expect("job queue poisoned");
            for job in due {
                queue.push_back(job);
            }
            drop(queue);
            service.queue_cv.notify_all();
        }
        // Respawn dead workers in place.
        {
            let mut workers = service.worker_threads.lock().expect("workers poisoned");
            for slot in workers.iter_mut() {
                if slot.is_finished() && !service.shutdown.load(Ordering::SeqCst) {
                    respawns += 1;
                    let fresh = spawn_worker(service, format!("pathinv-serve-worker-r{respawns}"));
                    let old = std::mem::replace(slot, fresh);
                    let _ = old.join();
                    service.workers_respawned.fetch_add(1, Ordering::Relaxed);
                    eprintln!("serve: worker exited unexpectedly; respawned");
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// What one execution attempt produced, isolation-mode independent.
struct ExecOutcome {
    task: Json,
    verdict: String,
    cacheable: bool,
}

/// Rewrites cancellation details against the job's admission-time deadline:
/// an expired guard means "deadline exceeded", anything else cancelled from
/// outside means the shutdown drain.
fn apply_deadline_restamp(job: &Job, outcome: &mut JobOutcome) {
    if job.guard.as_ref().is_some_and(|g| g.expired()) {
        outcome.deadline_expired = true;
        if outcome.verdict == "cancelled" {
            outcome.detail =
                format!("deadline of {} ms exceeded", job.timeout_ms.unwrap_or_default());
        }
    } else if outcome.verdict == "cancelled" {
        outcome.detail = "cancelled by shutdown".to_string();
    }
}

/// Runs one attempt in the configured isolation mode.
fn execute_attempt(service: &Service, job: &Job) -> ExecOutcome {
    match service.isolation {
        IsolationMode::Thread => {
            // The deadline guard was registered at admission and travels
            // with the job, so run_job gets a spec without its own timeout.
            let mut outcome = run_job(&JobSpec::new(job.engine.clone()), &job.program, &job.token);
            apply_deadline_restamp(job, &mut outcome);
            let task = TaskReport::from_outcome(job.name.clone(), &job.engine, &outcome).to_json();
            ExecOutcome {
                task,
                verdict: outcome.verdict.clone(),
                cacheable: outcome.is_cacheable(),
            }
        }
        IsolationMode::Process => {
            match run_job_in_child(&job.name, &job.source, &job.engine, &job.token) {
                ChildRun::Done { task, verdict, cacheable } => {
                    ExecOutcome { task, verdict, cacheable }
                }
                ChildRun::Killed => {
                    let mut outcome = cancelled_outcome("cancelled by shutdown");
                    apply_deadline_restamp(job, &mut outcome);
                    let task =
                        TaskReport::from_outcome(job.name.clone(), &job.engine, &outcome).to_json();
                    ExecOutcome { task, verdict: "cancelled".to_string(), cacheable: false }
                }
                ChildRun::Crashed { detail } => {
                    let outcome = error_outcome(&detail);
                    let task =
                        TaskReport::from_outcome(job.name.clone(), &job.engine, &outcome).to_json();
                    ExecOutcome { task, verdict: "error".to_string(), cacheable: false }
                }
            }
        }
    }
}

/// Deterministic backoff for retry `attempt` of the job with admission
/// sequence `seq`: exponential in the attempt, jittered by a hash of the
/// sequence number (no clocks, no OS randomness — a chaos run replays
/// byte-identically from its seed).
fn retry_delay(base_ms: u64, attempt: u32, seq: u64) -> Duration {
    let backoff = base_ms.saturating_mul(1 << attempt.saturating_sub(1).min(6));
    let jitter = seq.wrapping_mul(0x9e37_79b9) % (base_ms / 2 + 1);
    Duration::from_millis(backoff + jitter)
}

/// The worker body: pop a job, run it fault-isolated in the configured
/// isolation mode, feed the breaker, retry transient faults with backoff,
/// report one line, memoize deterministic verdicts.
fn worker_loop(service: &Arc<Service>) {
    loop {
        let job = {
            let mut queue = service.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if service.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = service
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("job queue poisoned")
                    .0;
            }
        };
        let Some(mut job) = job else { return };
        service.active.lock().expect("active set poisoned").push((job.seq, job.token.clone()));
        let exec = execute_attempt(service, &job);
        service.active.lock().expect("active set poisoned").retain(|(seq, _)| *seq != job.seq);
        let fault = exec.verdict == "error";
        if fault {
            service.record_engine_outcome(job.engine.engine_name(), true);
        } else if exec.verdict != "cancelled" {
            service.record_engine_outcome(job.engine.engine_name(), false);
        }
        // Transient-fault retry: park the job for a backoff delay instead
        // of answering; the supervisor re-enqueues it.  The deadline guard
        // stays armed across attempts — retries never extend a deadline.
        if fault
            && job.attempt < service.max_retries
            && !job.token.is_cancelled()
            && !service.shutdown.load(Ordering::SeqCst)
        {
            job.attempt += 1;
            let delay = retry_delay(service.retry_backoff_ms, job.attempt, job.seq);
            service.jobs_retried.fetch_add(1, Ordering::Relaxed);
            service
                .delayed
                .lock()
                .expect("delayed set poisoned")
                .push((Instant::now() + delay, job));
            continue;
        }
        drop(job.guard.take());
        if exec.cacheable && !job.engine.is_shim() {
            service
                .cache
                .lock()
                .expect("cache lock poisoned")
                .insert(&job.fingerprint, exec.task.clone());
        }
        write_line(&job.out, &result_response(&job.id, false, &job.fingerprint, exec.task));
        service.note_response("done", Some(&exec.verdict));
        service.jobs_completed.fetch_add(1, Ordering::Relaxed);
        // Chaos: simulate a worker crash after a completed job; the
        // supervisor must respawn this thread without losing anything.
        if let Some(chaos) = &service.chaos {
            if chaos.roll_worker_exit() {
                return;
            }
        }
    }
}

/// A synthetic `cancelled` outcome for jobs that never reached a worker.
fn cancelled_outcome(detail: &str) -> JobOutcome {
    JobOutcome {
        verdict: "cancelled".to_string(),
        detail: detail.to_string(),
        refinements: 0,
        predicates: 0,
        art_nodes: 0,
        certificate: None,
        stats: VerifierStats::default(),
        deadline_expired: false,
        wall_ms: 0.0,
    }
}

/// A synthetic `error` outcome for jobs whose isolated process died.
fn error_outcome(detail: &str) -> JobOutcome {
    JobOutcome { verdict: "error".to_string(), ..cancelled_outcome(detail) }
}

/// Parses the verify-specific fields of a request.
#[allow(clippy::type_complexity)]
fn parse_verify_request(
    request: &Json,
    default_timeout_ms: Option<u64>,
) -> Result<(Option<String>, String, Program, EngineSpec, Option<u64>), String> {
    let source = request
        .get("program")
        .and_then(Json::as_str)
        .ok_or("missing `program` field (the program source text)")?;
    let program = parse_program(source).map_err(|e| format!("program parse error: {e}"))?;
    let engine_name = request.get("engine").and_then(Json::as_str).unwrap_or("cegar");
    let refiner = request.get("refiner").and_then(Json::as_str);
    let engine = engine_spec_named(engine_name, refiner)?;
    let timeout_ms = match request.get("timeout_ms") {
        Some(Json::Int(ms)) if *ms > 0 => Some(*ms as u64),
        Some(Json::Int(_)) => return Err("`timeout_ms` must be positive".to_string()),
        Some(_) => return Err("`timeout_ms` must be an integer".to_string()),
        None => default_timeout_ms,
    };
    let name = request.get("name").and_then(Json::as_str).map(str::to_string);
    Ok((name, source.to_string(), program, engine, timeout_ms))
}

/// Resolves the protocol's engine/refiner naming to an [`EngineSpec`] with
/// default configurations (the same ones batch mode runs).
pub fn engine_spec_named(engine: &str, refiner: Option<&str>) -> Result<EngineSpec, String> {
    match (engine, refiner) {
        ("cegar", None | Some("path-invariants")) => {
            Ok(EngineSpec::Cegar(CegarConfig::path_invariants()))
        }
        ("cegar", Some("path-predicates")) => {
            Ok(EngineSpec::Cegar(CegarConfig::path_predicates(crate::DEFAULT_BASELINE_REFINEMENTS)))
        }
        ("cegar", Some(other)) => Err(format!("unknown refiner `{other}`")),
        ("bmc", _) => Ok(EngineSpec::Bmc(Default::default())),
        ("pdr", _) => Ok(EngineSpec::Pdr(Default::default())),
        ("panic-shim", _) => Ok(EngineSpec::PanicShim),
        ("spin-shim", _) => Ok(EngineSpec::SpinShim),
        ("abort-shim", _) => Ok(EngineSpec::AbortShim),
        ("memhog-shim", _) => Ok(EngineSpec::MemHogShim),
        ("flaky-shim", _) => Ok(EngineSpec::FlakyShim),
        (other, _) => Err(format!("unknown engine `{other}`")),
    }
}

/// The fast-fail response for submissions against a quarantined engine.
fn quarantined_response(id: &Json, engine: &str, retry_after_ms: u128) -> Json {
    Json::object(vec![
        ("id", id.clone()),
        ("status", Json::Str("quarantined".to_string())),
        ("engine", Json::Str(engine.to_string())),
        ("retry_after_ms", Json::Int(retry_after_ms as i64)),
    ])
}

fn error_response(id: &Json, message: &str) -> Json {
    Json::object(vec![
        ("id", id.clone()),
        ("status", Json::Str("error".to_string())),
        ("error", Json::Str(message.to_string())),
    ])
}

fn status_response(id: &Json, status: &str) -> Json {
    Json::object(vec![("id", id.clone()), ("status", Json::Str(status.to_string()))])
}

fn result_response(id: &Json, cached: bool, fingerprint: &str, task: Json) -> Json {
    Json::object(vec![
        ("id", id.clone()),
        ("status", Json::Str("done".to_string())),
        ("cached", Json::Bool(cached)),
        ("fingerprint", Json::Str(fingerprint.to_string())),
        ("schema_version", Json::Int(SCHEMA_VERSION)),
        ("task", task),
    ])
}

/// Re-stamps a cached task record for replay: the submission's program name
/// (the cache key deliberately ignores names) and a zero wall-clock (the
/// replay did no engine work; the original run's time would be a lie).
fn restamp_task(task: Json, name: &str) -> Json {
    match task {
        Json::Object(pairs) => Json::Object(
            pairs
                .into_iter()
                .map(|(k, v)| match k.as_str() {
                    "program" => (k, Json::Str(name.to_string())),
                    "wall_ms" => (k, Json::Float(round3(0.0))),
                    _ => (k, v),
                })
                .collect(),
        ),
        other => other,
    }
}

/// Runs the daemon per `config`; returns the process exit code.
///
/// # Errors
///
/// Only setup failures (socket bind) error out; per-job and per-connection
/// failures are absorbed by design.
pub fn run_serve(config: &ServeConfig) -> Result<i32, String> {
    install_sigterm_handler();
    let handle = ServiceHandle::start(config);
    match &config.socket {
        Some(path) => serve_socket(config, path.clone(), handle),
        None => Ok(serve_stdin(handle)),
    }
}

/// Socket front end: nonblocking accept loop polling the shutdown latches,
/// one reader thread per connection.
fn serve_socket(config: &ServeConfig, path: PathBuf, handle: ServiceHandle) -> Result<i32, String> {
    // A stale socket file from a crashed daemon would fail the bind.
    if path.exists() {
        std::fs::remove_file(&path)
            .map_err(|e| format!("cannot remove stale socket {}: {e}", path.display()))?;
    }
    let listener = UnixListener::bind(&path)
        .map_err(|e| format!("cannot bind socket {}: {e}", path.display()))?;
    listener.set_nonblocking(true).map_err(|e| format!("cannot set nonblocking: {e}"))?;
    eprintln!(
        "serve: listening on {} (workers={}, queue={}, cache={})",
        path.display(),
        config.workers,
        config.queue_capacity,
        config.cache_path.as_ref().map_or("memory".to_string(), |p| p.display().to_string()),
    );
    // `handle_line` returns Shutdown on the reader thread; this latch (plus
    // the writer to acknowledge on) carries it back to the accept loop.
    let shutdown_requested: Arc<Mutex<Option<SharedWriter>>> = Arc::new(Mutex::new(None));
    let handle = Arc::new(handle);
    loop {
        if SIGTERM.load(Ordering::SeqCst) {
            eprintln!("serve: SIGTERM, draining");
            break;
        }
        if shutdown_requested.lock().expect("latch poisoned").is_some() {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let handle = Arc::clone(&handle);
                let latch = Arc::clone(&shutdown_requested);
                std::thread::spawn(move || handle_connection(&handle, stream, &latch));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    let ack = shutdown_requested.lock().expect("latch poisoned").take();
    drop(listener);
    std::fs::remove_file(&path).ok();
    let completed = handle.drain();
    if let Some(ack) = ack {
        write_line(
            &ack,
            &Json::object(vec![
                ("status", Json::Str("shutdown".to_string())),
                ("jobs_completed", Json::Int(completed as i64)),
            ]),
        );
    }
    eprintln!("serve: drained, {completed} job(s) completed");
    Ok(0)
}

/// One connection: read lines, dispatch, until EOF or shutdown.
fn handle_connection(
    handle: &Arc<ServiceHandle>,
    stream: UnixStream,
    shutdown_latch: &Arc<Mutex<Option<SharedWriter>>>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if handle.handle_line(&line, &out) == Flow::Shutdown {
            *shutdown_latch.lock().expect("latch poisoned") = Some(Arc::clone(&out));
            break;
        }
    }
}

/// Stdin front end: a reader thread feeds lines over a channel so the main
/// loop can keep polling the SIGTERM latch (glibc restarts the blocking
/// read, so the flag alone would never be observed mid-read).
fn serve_stdin(handle: ServiceHandle) -> i32 {
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    let mut acked = false;
    loop {
        if SIGTERM.load(Ordering::SeqCst) {
            eprintln!("serve: SIGTERM, draining");
            break;
        }
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(line) => {
                if handle.handle_line(&line, &out) == Flow::Shutdown {
                    acked = true;
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break, // EOF drains
        }
    }
    let completed = handle.drain();
    if acked {
        write_line(
            &out,
            &Json::object(vec![
                ("status", Json::Str("shutdown".to_string())),
                ("jobs_completed", Json::Int(completed as i64)),
            ]),
        );
    }
    eprintln!("serve: drained, {completed} job(s) completed");
    0
}

/// In-process warm-vs-cold daemon benchmark over the source corpus, used
/// by `--bless` to stamp the `serve` section of the bench point.
///
/// Two passes run against the same persistent journal.  The cold pass
/// verifies every corpus program into an empty cache and is then drained
/// (journal synced, workers joined).  A second service recovers the
/// journal from disk — the same path a restarted daemon takes — so the
/// warm pass measures submissions answered from the recovered cache.
/// Verdict and certificate-digest parity between the passes is recorded in
/// [`crate::trajectory::ServeBench::parity_failures`].
pub fn bench_serve(workers: usize) -> crate::trajectory::ServeBench {
    struct VecWriter(Arc<Mutex<Vec<u8>>>);
    impl Write for VecWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("bench buffer poisoned").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let corpus = crate::corpus_sources();
    let cache_path =
        std::env::temp_dir().join(format!("pathinv-bench-serve-{}.journal", std::process::id()));
    std::fs::remove_file(&cache_path).ok();
    let config = ServeConfig {
        cache_path: Some(cache_path.clone()),
        workers,
        queue_capacity: corpus.len().max(16),
        drain_grace_ms: 120_000,
        ..ServeConfig::default()
    };

    // One pass: start a service over the journal, submit the whole corpus,
    // wait for every response, drain.  Returns (wall_ms, hits, rows) with
    // rows = (program, verdict, cert_digest) sorted by program.
    let pass = |label: &str| -> (f64, u64, Vec<(String, String, String)>) {
        let handle = ServiceHandle::start(&config);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(VecWriter(Arc::clone(&buf)))));
        let start = Instant::now();
        for (i, (name, src)) in corpus.iter().enumerate() {
            let line = Json::object(vec![
                ("op", Json::Str("verify".to_string())),
                ("id", Json::Int(i as i64 + 1)),
                ("name", Json::Str(name.clone())),
                ("program", Json::Str(src.clone())),
            ])
            .compact();
            handle.handle_line(&line, &out);
        }
        let responses = loop {
            let text = String::from_utf8(buf.lock().expect("bench buffer poisoned").clone())
                .expect("responses are UTF-8");
            let got: Vec<Json> =
                text.lines().map(|l| json::parse(l).expect("response parses")).collect();
            if got.len() >= corpus.len() {
                break got;
            }
            assert!(
                start.elapsed() < Duration::from_secs(600),
                "bench serve {label} pass timed out with {} of {} responses",
                got.len(),
                corpus.len()
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        handle.drain();
        let mut hits = 0u64;
        let mut rows = Vec::new();
        for r in &responses {
            assert_eq!(r.get("status").and_then(Json::as_str), Some("done"), "{label}: {r:?}");
            if r.get("cached") == Some(&Json::Bool(true)) {
                hits += 1;
            }
            let task = r.get("task").expect("done response carries a task");
            let field =
                |k: &str| task.get(k).and_then(Json::as_str).unwrap_or_default().to_string();
            rows.push((field("program"), field("verdict"), field("cert_digest")));
        }
        rows.sort();
        (wall_ms, hits, rows)
    };

    let (cold_ms, cold_hits, cold_rows) = pass("cold");
    assert_eq!(cold_hits, 0, "cold pass ran against a non-empty cache");
    let (warm_ms, warm_hits, warm_rows) = pass("warm");
    std::fs::remove_file(&cache_path).ok();

    let mut parity_failures = Vec::new();
    for (c, w) in cold_rows.iter().zip(warm_rows.iter()) {
        if c != w {
            parity_failures.push(format!("cold {c:?} vs warm {w:?}"));
        }
    }
    crate::trajectory::ServeBench {
        programs: corpus.len(),
        cold_ms,
        warm_ms,
        warm_hits,
        parity_failures,
    }
}

/// Measures the cost of process isolation for `--bless`: one cold pass of
/// the source corpus per isolation mode, each against a fresh in-memory
/// cache (so neither pass gets warm hits).  Only meaningful from inside
/// the real `pathinv-cli` binary — the process pass re-execs
/// `current_exe() run-one-job`.  The chaos-availability numbers of the
/// returned [`crate::trajectory::SupervisionBench`] are left zeroed; the
/// caller fills them from a chaos run.
pub fn bench_supervision(workers: usize) -> crate::trajectory::SupervisionBench {
    let corpus = crate::corpus_sources();
    let pass = |isolation: IsolationMode| -> f64 {
        let config = ServeConfig {
            workers,
            queue_capacity: corpus.len().max(16),
            drain_grace_ms: 120_000,
            isolation,
            ..ServeConfig::default()
        };
        let handle = ServiceHandle::start(&config);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(BufWriterShim(Arc::clone(&buf)))));
        let start = Instant::now();
        for (i, (name, src)) in corpus.iter().enumerate() {
            let line = Json::object(vec![
                ("op", Json::Str("verify".to_string())),
                ("id", Json::Int(i as i64 + 1)),
                ("name", Json::Str(name.clone())),
                ("program", Json::Str(src.clone())),
            ])
            .compact();
            handle.handle_line(&line, &out);
        }
        loop {
            let text = String::from_utf8(buf.lock().expect("bench buffer poisoned").clone())
                .expect("responses are UTF-8");
            if text.lines().count() >= corpus.len() {
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(600),
                "supervision bench ({}) timed out",
                isolation.name()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        handle.drain();
        wall_ms
    };
    let in_thread_ms = pass(IsolationMode::Thread);
    let process_ms = pass(IsolationMode::Process);
    crate::trajectory::SupervisionBench {
        programs: corpus.len(),
        in_thread_ms,
        process_ms,
        chaos_submitted: 0,
        chaos_answered: 0,
        chaos_quarantined: 0,
        availability: 0.0,
    }
}

/// A `Write` sink into a shared buffer for in-process benches.
struct BufWriterShim(Arc<Mutex<Vec<u8>>>);

impl Write for BufWriterShim {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("bench buffer poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer unit tests can inspect: every response line lands in the
    /// shared buffer.
    #[derive(Clone)]
    struct Sink(Arc<Mutex<Vec<u8>>>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sink() -> (SharedWriter, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(Sink(Arc::clone(&buf)))));
        (writer, buf)
    }

    fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<Json> {
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        text.lines().map(|l| json::parse(l).expect(l)).collect()
    }

    /// Polls until `buf` holds `n` lines (workers respond asynchronously).
    fn wait_for_lines(buf: &Arc<Mutex<Vec<u8>>>, n: usize) -> Vec<Json> {
        let start = Instant::now();
        loop {
            let got = lines(buf);
            if got.len() >= n {
                return got;
            }
            assert!(start.elapsed() < Duration::from_secs(60), "only {} lines", got.len());
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn verify_line(id: i64, program: &str, extra: &str) -> String {
        format!(
            "{{\"op\":\"verify\",\"id\":{id},\"program\":{},{extra}\"name\":\"t{id}\"}}",
            Json::Str(program.to_string()).compact()
        )
    }

    const BUG: &str = "proc bug(x: int) { x = 1; assert(x == 2); }";

    #[test]
    fn malformed_lines_error_and_the_stream_continues() {
        let handle = ServiceHandle::start(&ServeConfig::default());
        let (out, buf) = sink();
        assert_eq!(handle.handle_line("{not json", &out), Flow::Continue);
        assert_eq!(handle.handle_line("{\"op\":\"frobnicate\"}", &out), Flow::Continue);
        assert_eq!(handle.handle_line("{\"id\":7}", &out), Flow::Continue);
        assert_eq!(handle.handle_line("{\"op\":\"verify\",\"id\":8}", &out), Flow::Continue);
        assert_eq!(
            handle.handle_line("{\"op\":\"verify\",\"id\":9,\"program\":\"proc x| {\"}", &out),
            Flow::Continue
        );
        assert_eq!(handle.handle_line("{\"op\":\"ping\",\"id\":10}", &out), Flow::Continue);
        let got = wait_for_lines(&buf, 6);
        for response in &got[..5] {
            assert_eq!(response.get("status").and_then(Json::as_str), Some("error"));
        }
        assert_eq!(got[5].get("status").and_then(Json::as_str), Some("pong"));
        assert_eq!(got[5].get("id").and_then(Json::as_int), Some(10));
        handle.drain();
    }

    #[test]
    fn verify_runs_and_caches_deterministic_verdicts() {
        let handle = ServiceHandle::start(&ServeConfig::default());
        let (out, buf) = sink();
        handle.handle_line(&verify_line(1, BUG, ""), &out);
        let first = &wait_for_lines(&buf, 1)[0];
        assert_eq!(first.get("status").and_then(Json::as_str), Some("done"));
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        let task = first.get("task").unwrap();
        assert_eq!(task.get("verdict").and_then(Json::as_str), Some("unsafe"));
        assert_eq!(task.get("program").and_then(Json::as_str), Some("t1"));
        // Resubmission under a *different name* replays from the cache.
        handle.handle_line(&verify_line(2, BUG, ""), &out);
        let second = &wait_for_lines(&buf, 2)[1];
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        let replay = second.get("task").unwrap();
        assert_eq!(replay.get("verdict").and_then(Json::as_str), Some("unsafe"));
        assert_eq!(replay.get("program").and_then(Json::as_str), Some("t2"));
        assert_eq!(
            replay.get("cert_digest"),
            task.get("cert_digest"),
            "replayed verdicts must be byte-identical up to the re-stamped name"
        );
        assert_eq!(first.get("fingerprint"), second.get("fingerprint"));
        handle.drain();
    }

    #[test]
    fn panic_shim_errors_and_the_daemon_keeps_serving() {
        let handle = ServiceHandle::start(&ServeConfig::default());
        let (out, buf) = sink();
        handle.handle_line(&verify_line(1, BUG, "\"engine\":\"panic-shim\","), &out);
        handle.handle_line(&verify_line(2, BUG, "\"engine\":\"bmc\","), &out);
        let got = wait_for_lines(&buf, 2);
        let by_id =
            |id: i64| got.iter().find(|r| r.get("id").and_then(Json::as_int) == Some(id)).unwrap();
        let panicked = by_id(1).get("task").unwrap();
        assert_eq!(panicked.get("verdict").and_then(Json::as_str), Some("error"));
        assert!(panicked.get("detail").and_then(Json::as_str).unwrap().contains("panicked"));
        let next = by_id(2).get("task").unwrap();
        assert_eq!(next.get("verdict").and_then(Json::as_str), Some("unsafe"));
        handle.drain();
    }

    #[test]
    fn spin_shim_deadline_cancels_within_twice_the_deadline() {
        let handle = ServiceHandle::start(&ServeConfig::default());
        let (out, buf) = sink();
        let start = Instant::now();
        handle.handle_line(
            &verify_line(1, BUG, "\"engine\":\"spin-shim\",\"timeout_ms\":200,"),
            &out,
        );
        let got = wait_for_lines(&buf, 1);
        // Cooperative cancellation latency: watchdog wakeup + one poll; the
        // acceptance envelope is 2× the deadline.
        assert!(start.elapsed() < Duration::from_millis(400), "{:?}", start.elapsed());
        let task = got[0].get("task").unwrap();
        assert_eq!(task.get("verdict").and_then(Json::as_str), Some("cancelled"));
        assert!(task.get("detail").and_then(Json::as_str).unwrap().contains("deadline of 200 ms"));
        handle.drain();
    }

    #[test]
    fn overload_rejects_beyond_queue_capacity() {
        let config = ServeConfig { workers: 1, queue_capacity: 1, ..ServeConfig::default() };
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        // One spinning job occupies the worker; the next fills the queue;
        // the third must be rejected, not buffered.
        handle.handle_line(
            &verify_line(1, BUG, "\"engine\":\"spin-shim\",\"timeout_ms\":2000,"),
            &out,
        );
        // Wait until the spin job is actually *active* so the queue is free.
        let start = Instant::now();
        while handle.service.active.lock().unwrap().is_empty() {
            assert!(start.elapsed() < Duration::from_secs(10));
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.handle_line(
            &verify_line(2, BUG, "\"engine\":\"spin-shim\",\"timeout_ms\":2000,"),
            &out,
        );
        handle.handle_line(&verify_line(3, BUG, ""), &out);
        let got = wait_for_lines(&buf, 1);
        let overloaded = got
            .iter()
            .find(|r| r.get("status").and_then(Json::as_str) == Some("overloaded"))
            .expect("the third submission is rejected immediately");
        assert_eq!(overloaded.get("id").and_then(Json::as_int), Some(3));
        handle.drain();
    }

    #[test]
    fn drain_reports_queued_jobs_cancelled_and_joins_workers() {
        let config = ServeConfig { workers: 1, queue_capacity: 8, ..ServeConfig::default() };
        let mut config = config;
        config.drain_grace_ms = 100;
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        // An in-flight divergent job plus two queued ones.
        for id in 1..=3 {
            handle.handle_line(&verify_line(id, BUG, "\"engine\":\"spin-shim\","), &out);
        }
        let start = Instant::now();
        while handle.service.active.lock().unwrap().is_empty() {
            assert!(start.elapsed() < Duration::from_secs(10));
            std::thread::sleep(Duration::from_millis(2));
        }
        let completed = handle.drain();
        assert_eq!(completed, 3, "every admitted job gets exactly one result line");
        let got = wait_for_lines(&buf, 3);
        for response in &got {
            let task = response.get("task").unwrap();
            assert_eq!(task.get("verdict").and_then(Json::as_str), Some("cancelled"));
        }
    }

    #[test]
    fn cache_persists_across_service_restarts() {
        let path = std::env::temp_dir()
            .join(format!("pathinv-serve-test-{}-restart.journal", std::process::id()));
        std::fs::remove_file(&path).ok();
        let config = ServeConfig { cache_path: Some(path.clone()), ..ServeConfig::default() };
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        handle.handle_line(&verify_line(1, BUG, ""), &out);
        wait_for_lines(&buf, 1);
        handle.drain();
        // A fresh service over the same journal serves the verdict warm.
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        handle.handle_line(&verify_line(2, BUG, ""), &out);
        let got = wait_for_lines(&buf, 1);
        assert_eq!(got[0].get("cached"), Some(&Json::Bool(true)));
        assert_eq!(
            got[0].get("task").unwrap().get("verdict").and_then(Json::as_str),
            Some("unsafe")
        );
        handle.drain();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_spec_named_covers_the_protocol_vocabulary() {
        assert!(engine_spec_named("cegar", None).is_ok());
        assert!(engine_spec_named("cegar", Some("path-predicates")).is_ok());
        assert!(engine_spec_named("cegar", Some("mystery")).is_err());
        assert!(engine_spec_named("bmc", None).is_ok());
        assert!(engine_spec_named("pdr", None).is_ok());
        assert!(engine_spec_named("panic-shim", None).is_ok());
        assert!(engine_spec_named("spin-shim", None).is_ok());
        assert!(engine_spec_named("abort-shim", None).is_ok());
        assert!(engine_spec_named("memhog-shim", None).is_ok());
        assert!(engine_spec_named("flaky-shim", None).is_ok());
        assert!(engine_spec_named("z3", None).is_err());
    }

    /// `flaky-shim` faults on multi-variable programs and succeeds on
    /// single-variable ones, so one engine name can be driven through the
    /// whole breaker cycle.
    const TWO_VAR: &str = "proc f(x: int, y: int) { x = 1; assert(x == 1); }";
    const ONE_VAR: &str = "proc f(x: int) { x = 1; assert(x == 1); }";

    fn status_of(response: &Json) -> &str {
        response.get("status").and_then(Json::as_str).unwrap_or("?")
    }

    #[test]
    fn breaker_trips_quarantines_half_opens_and_recovers() {
        let config = ServeConfig {
            workers: 1,
            max_retries: 0,
            breaker_threshold: 2,
            breaker_cooldown_ms: 150,
            ..ServeConfig::default()
        };
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        // Two consecutive faults trip the flaky-shim breaker open.
        handle.handle_line(&verify_line(1, TWO_VAR, "\"engine\":\"flaky-shim\","), &out);
        handle.handle_line(&verify_line(2, TWO_VAR, "\"engine\":\"flaky-shim\","), &out);
        let got = wait_for_lines(&buf, 2);
        for r in &got {
            assert_eq!(status_of(r), "done");
            assert_eq!(r.get("task").unwrap().get("verdict").and_then(Json::as_str), Some("error"));
        }
        // While open: fast-fail with `quarantined`, naming the engine.
        handle.handle_line(&verify_line(3, ONE_VAR, "\"engine\":\"flaky-shim\","), &out);
        let got = wait_for_lines(&buf, 3);
        assert_eq!(status_of(&got[2]), "quarantined");
        assert_eq!(got[2].get("engine").and_then(Json::as_str), Some("flaky-shim"));
        assert!(got[2].get("retry_after_ms").and_then(Json::as_int).is_some());
        // Other engines are unaffected by flaky-shim's quarantine.
        handle.handle_line(&verify_line(4, BUG, "\"engine\":\"bmc\","), &out);
        let got = wait_for_lines(&buf, 4);
        let bmc = got.iter().find(|r| r.get("id").and_then(Json::as_int) == Some(4)).unwrap();
        assert_eq!(status_of(bmc), "done");
        // After the cooldown, a half-open probe is admitted; its success
        // closes the breaker for good.
        std::thread::sleep(Duration::from_millis(200));
        handle.handle_line(&verify_line(5, ONE_VAR, "\"engine\":\"flaky-shim\","), &out);
        let got = wait_for_lines(&buf, 5);
        let probe = got.iter().find(|r| r.get("id").and_then(Json::as_int) == Some(5)).unwrap();
        assert_eq!(status_of(probe), "done", "the probe must be admitted: {probe:?}");
        assert_eq!(
            probe.get("task").unwrap().get("verdict").and_then(Json::as_str),
            Some("unknown")
        );
        // Closed again: the next flaky submission is admitted (and faults).
        handle.handle_line(&verify_line(6, TWO_VAR, "\"engine\":\"flaky-shim\","), &out);
        let got = wait_for_lines(&buf, 6);
        let after = got.iter().find(|r| r.get("id").and_then(Json::as_int) == Some(6)).unwrap();
        assert_eq!(status_of(after), "done", "a closed breaker admits: {after:?}");
        handle.drain();
    }

    #[test]
    fn faulted_jobs_retry_with_backoff_before_reporting() {
        let config = ServeConfig {
            workers: 1,
            max_retries: 2,
            retry_backoff_ms: 10,
            breaker_threshold: 0,
            ..ServeConfig::default()
        };
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        handle.handle_line(&verify_line(1, BUG, "\"engine\":\"panic-shim\","), &out);
        let got = wait_for_lines(&buf, 1);
        assert_eq!(got.len(), 1, "retries must not duplicate the response");
        assert_eq!(
            got[0].get("task").unwrap().get("verdict").and_then(Json::as_str),
            Some("error"),
            "a deterministic fault still reports after the retry budget"
        );
        assert_eq!(handle.service.jobs_retried.load(Ordering::Relaxed), 2);
        handle.drain();
    }

    #[test]
    fn chaos_worker_exits_are_respawned_without_losing_jobs() {
        let config = ServeConfig {
            workers: 1,
            chaos: Some(ChaosConfig { seed: 7, worker_exit_per_mille: 1000 }),
            ..ServeConfig::default()
        };
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        for id in 1..=5 {
            handle.handle_line(&verify_line(id, BUG, "\"engine\":\"bmc\","), &out);
        }
        let got = wait_for_lines(&buf, 5);
        // Ids 2..=5 are warm cache hits (same fingerprint), so only the
        // first reply proves a worker survived — submit distinct engines
        // to force real runs through the dying workers.
        handle.handle_line(&verify_line(6, BUG, "\"engine\":\"pdr\","), &out);
        handle.handle_line(&verify_line(7, ONE_VAR, "\"engine\":\"bmc\","), &out);
        let got2 = wait_for_lines(&buf, 7);
        for r in got.iter().chain(got2[5..].iter()) {
            assert_eq!(status_of(r), "done", "{r:?}");
        }
        assert!(
            handle.service.workers_respawned.load(Ordering::Relaxed) >= 1,
            "every completed job kills the worker at per-mille 1000; the supervisor must respawn"
        );
        handle.drain();
    }

    #[test]
    fn stats_report_supervision_state() {
        let config = ServeConfig {
            workers: 1,
            max_retries: 0,
            breaker_threshold: 1,
            breaker_cooldown_ms: 60_000,
            ..ServeConfig::default()
        };
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        handle.handle_line(&verify_line(1, BUG, ""), &out);
        handle.handle_line(&verify_line(2, BUG, "\"engine\":\"panic-shim\","), &out);
        wait_for_lines(&buf, 2);
        handle.handle_line("{\"op\":\"stats\",\"id\":99}", &out);
        let got = wait_for_lines(&buf, 3);
        let stats = got.iter().find(|r| status_of(r) == "stats").unwrap();
        assert_eq!(stats.get("isolation").and_then(Json::as_str), Some("thread"));
        assert!(stats.get("queue_depth").and_then(Json::as_int).is_some());
        assert!(stats.get("delayed").and_then(Json::as_int).is_some());
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("entries").and_then(Json::as_int), Some(1));
        assert!(cache.get("journal_bytes").and_then(Json::as_int).is_some());
        assert_eq!(cache.get("degraded"), Some(&Json::Bool(false)));
        let jobs = stats.get("jobs").unwrap();
        assert_eq!(jobs.get("submitted").and_then(Json::as_int), Some(2));
        let verdicts = jobs.get("verdicts").unwrap();
        assert_eq!(verdicts.get("unsafe").and_then(Json::as_int), Some(1));
        assert_eq!(verdicts.get("error").and_then(Json::as_int), Some(1));
        let statuses = jobs.get("statuses").unwrap();
        assert_eq!(statuses.get("done").and_then(Json::as_int), Some(2));
        let breakers = stats.get("breakers").unwrap();
        let panic_breaker = breakers.get("panic-shim").expect("panic-shim breaker is tracked");
        assert_eq!(panic_breaker.get("state").and_then(Json::as_str), Some("open"));
        assert_eq!(panic_breaker.get("trips").and_then(Json::as_int), Some(1));
        let cegar_breaker = breakers.get("cegar").expect("cegar breaker is tracked");
        assert_eq!(cegar_breaker.get("state").and_then(Json::as_str), Some("closed"));
        handle.drain();
    }
}
