//! `pathinv-cli serve` — the verification service daemon.
//!
//! A long-running process accepting line-delimited JSON jobs on a Unix
//! socket (`--socket PATH`) or on stdin, scheduling them on a worker pool,
//! and streaming one result line per job.  Robustness is the design driver
//! (DESIGN.md §14): every job is treated as hostile.
//!
//! * **Fault isolation.**  Jobs execute through [`pathinv_core::run_job`],
//!   so a panicking engine yields an `"error"` task — never a dead worker,
//!   never a dead daemon.
//! * **Deadlines.**  Each job's [`CancellationToken`] is registered with
//!   the watchdog *at admission* (queue wait counts), so an overdue job —
//!   including the deliberately divergent `spin-shim` — comes back as an
//!   honest `cancelled` verdict.
//! * **Bounded admission.**  The queue holds at most `--queue` jobs;
//!   beyond that, submissions are rejected immediately with
//!   `status: "overloaded"` instead of growing memory without bound.
//! * **Graceful shutdown.**  SIGTERM or `{"op":"shutdown"}` stops
//!   admission, lets in-flight jobs finish within `--drain-grace-ms`,
//!   cancels whatever is still queued or running after the grace, flushes
//!   the verdict cache, and exits 0.
//! * **Persistent memoization.**  Deterministic verdicts are cached in the
//!   crash-safe journal of [`crate::cache`], keyed on
//!   [`pathinv_core::job_fingerprint`]; a warm resubmission is served in
//!   `O(1)` with `cached: true`, across daemon restarts.
//!
//! # Protocol
//!
//! One compact JSON value per `\n`-terminated line, both directions.
//! Requests:
//!
//! ```text
//! {"op":"verify","id":1,"program":"proc p(x: int) { ... }",
//!  "engine":"cegar","refiner":"path-invariants","timeout_ms":5000,
//!  "name":"demo"}
//! {"op":"ping"}        {"op":"stats"}        {"op":"shutdown"}
//! ```
//!
//! Responses carry `status`: `"done"` (with the task record under `task`
//! and the cache disposition under `cached`), `"overloaded"`,
//! `"shutting-down"`, `"error"` (with `error`), `"pong"`, `"stats"`, or the
//! final `"shutdown"` acknowledgement.  A malformed line produces one
//! `status: "error"` response and the stream continues — a client bug
//! cannot take the service down.

use crate::cache::VerdictCache;
use crate::json::{self, Json};
use pathinv_core::{
    job_fingerprint, run_job, CancellationToken, CegarConfig, EngineSpec, JobOutcome, JobSpec,
    VerifierStats,
};
use pathinv_ir::{parse_program, Program};
use pathinv_report::{round3, TaskReport, SCHEMA_VERSION};
use pathinv_smt::{enforce_deadline, DeadlineGuard};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of one `serve` run (defaults match the CLI flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix socket path to listen on; `None` serves stdin/stdout.
    pub socket: Option<PathBuf>,
    /// Verdict-cache journal path; `None` keeps the cache in memory only.
    pub cache_path: Option<PathBuf>,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it are rejected with
    /// `status: "overloaded"`.
    pub queue_capacity: usize,
    /// Deadline applied to jobs that do not carry their own `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// How long a shutdown drain waits for in-flight jobs before cancelling
    /// them.
    pub drain_grace_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            socket: None,
            cache_path: None,
            workers: 2,
            queue_capacity: 64,
            default_timeout_ms: None,
            drain_grace_ms: 5_000,
        }
    }
}

/// SIGTERM latch: the handler only stores a flag (async-signal-safe); the
/// accept/input loops poll it.
static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler (via the libc already linked into every
/// Rust binary on this platform; no crate dependency).
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM_NUM: i32 = 15;
    unsafe {
        signal(SIGTERM_NUM, on_sigterm as *const () as usize);
    }
}

/// A sink result lines are written to: connections share one writer between
/// the reader thread (immediate responses) and the workers (job results).
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Writes one response line; errors (client hung up) are reported to stderr
/// and otherwise ignored — a dead client must not kill the daemon.
fn write_line(out: &SharedWriter, value: &Json) {
    let mut w = out.lock().expect("writer lock poisoned");
    if let Err(e) = writeln!(w, "{}", value.compact()).and_then(|()| w.flush()) {
        eprintln!("serve: dropping response for a disconnected client: {e}");
    }
}

/// One admitted job waiting for (or holding) a worker.
struct Job {
    /// Echoed request id (any JSON value; `Null` when absent).
    id: Json,
    /// Report name for the task record.
    name: String,
    program: Program,
    engine: EngineSpec,
    /// The deadline this job was admitted under, for the detail message.
    timeout_ms: Option<u64>,
    /// Cache key (computed at admission, where the program is in hand).
    fingerprint: String,
    /// Admission sequence number; identifies the job in the active set.
    seq: u64,
    token: CancellationToken,
    /// Watchdog registration; held so the deadline spans queue wait plus
    /// execution, and dropped (deregistered) when the job completes.
    guard: Option<DeadlineGuard>,
    out: SharedWriter,
}

/// Shared daemon state.
struct Service {
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    capacity: usize,
    /// Set once: admission stops, workers exit when the queue is empty.
    shutdown: AtomicBool,
    cache: Mutex<VerdictCache>,
    /// Jobs currently executing (admission seq → token), so a drain can
    /// cancel stragglers.
    active: Mutex<Vec<(u64, CancellationToken)>>,
    workers: usize,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    seq: AtomicU64,
}

/// Whether the connection should keep reading after a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Keep serving this connection.
    Continue,
    /// A shutdown was requested on this connection.
    Shutdown,
}

/// A running service: shared state plus the worker pool.  `run_serve` wraps
/// it in the socket/stdin front ends; unit and integration tests drive it
/// directly.
pub struct ServiceHandle {
    service: Arc<Service>,
    /// Behind a mutex so [`ServiceHandle::drain`] can take them through a
    /// shared reference (connection threads hold `Arc<ServiceHandle>`).
    worker_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    default_timeout_ms: Option<u64>,
    drain_grace: Duration,
}

impl ServiceHandle {
    /// Opens the cache and starts the worker pool.
    pub fn start(config: &ServeConfig) -> ServiceHandle {
        let cache = match &config.cache_path {
            Some(path) => VerdictCache::open(path),
            None => VerdictCache::in_memory(),
        };
        for warning in &cache.warnings {
            eprintln!("serve: {warning}");
        }
        let service = Arc::new(Service {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(cache),
            active: Mutex::new(Vec::new()),
            workers: config.workers.max(1),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        });
        let worker_threads = (0..service.workers)
            .map(|i| {
                let service = Arc::clone(&service);
                std::thread::Builder::new()
                    .name(format!("pathinv-serve-worker-{i}"))
                    .spawn(move || worker_loop(&service))
                    .expect("spawning a service worker")
            })
            .collect();
        ServiceHandle {
            service,
            worker_threads: Mutex::new(worker_threads),
            default_timeout_ms: config.default_timeout_ms,
            drain_grace: Duration::from_millis(config.drain_grace_ms),
        }
    }

    /// Handles one protocol line, writing any immediate response to `out`
    /// (job results arrive later from the worker pool).
    pub fn handle_line(&self, line: &str, out: &SharedWriter) -> Flow {
        let line = line.trim();
        if line.is_empty() {
            return Flow::Continue;
        }
        let request = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                write_line(out, &error_response(&Json::Null, &format!("malformed line: {e}")));
                return Flow::Continue;
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        match request.get("op").and_then(Json::as_str) {
            Some("ping") => {
                write_line(
                    out,
                    &Json::object(vec![("id", id), ("status", Json::Str("pong".to_string()))]),
                );
                Flow::Continue
            }
            Some("stats") => {
                write_line(out, &self.stats_response(&id));
                Flow::Continue
            }
            Some("shutdown") => Flow::Shutdown,
            Some("verify") => {
                self.submit(&request, id, out);
                Flow::Continue
            }
            Some(op) => {
                write_line(out, &error_response(&id, &format!("unknown op `{op}`")));
                Flow::Continue
            }
            None => {
                write_line(out, &error_response(&id, "missing `op` field"));
                Flow::Continue
            }
        }
    }

    /// Admits (or rejects) one verify request.
    fn submit(&self, request: &Json, id: Json, out: &SharedWriter) {
        let service = &self.service;
        if service.shutdown.load(Ordering::SeqCst) {
            write_line(out, &status_response(&id, "shutting-down"));
            return;
        }
        let (name, program, engine, timeout_ms) =
            match parse_verify_request(request, self.default_timeout_ms) {
                Ok(parts) => parts,
                Err(msg) => {
                    write_line(out, &error_response(&id, &msg));
                    return;
                }
            };
        let seq = service.seq.fetch_add(1, Ordering::Relaxed);
        let name = name.unwrap_or_else(|| format!("job-{seq}"));
        let fingerprint = job_fingerprint(&program, &engine);
        // Warm path: a cached deterministic verdict is replayed without
        // touching the queue, the workers, or any solver.
        if !engine.is_shim() {
            let cached = service.cache.lock().expect("cache lock poisoned").lookup(&fingerprint);
            if let Some(task) = cached {
                let task = restamp_task(task, &name);
                write_line(out, &result_response(&id, true, &fingerprint, task));
                service.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                service.jobs_completed.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let token = CancellationToken::new();
        let guard = timeout_ms.map(|ms| enforce_deadline(&token, Duration::from_millis(ms)));
        let job = Job {
            id,
            name,
            program,
            engine,
            timeout_ms,
            fingerprint,
            seq,
            token,
            guard,
            out: Arc::clone(out),
        };
        let mut queue = service.queue.lock().expect("job queue poisoned");
        if queue.len() >= service.capacity {
            drop(queue);
            write_line(&job.out, &status_response(&job.id, "overloaded"));
            return;
        }
        queue.push_back(job);
        drop(queue);
        service.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        service.queue_cv.notify_one();
    }

    fn stats_response(&self, id: &Json) -> Json {
        let service = &self.service;
        let queue_depth = service.queue.lock().expect("job queue poisoned").len();
        let active = service.active.lock().expect("active set poisoned").len();
        let cache = service.cache.lock().expect("cache lock poisoned");
        Json::object(vec![
            ("id", id.clone()),
            ("status", Json::Str("stats".to_string())),
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("workers", Json::Int(service.workers as i64)),
            ("queue_depth", Json::Int(queue_depth as i64)),
            ("active", Json::Int(active as i64)),
            ("cache_size", Json::Int(cache.len() as i64)),
            ("cache_hits", Json::Int(cache.hits as i64)),
            ("cache_misses", Json::Int(cache.misses as i64)),
            ("jobs_submitted", Json::Int(service.jobs_submitted.load(Ordering::Relaxed) as i64)),
            ("jobs_completed", Json::Int(service.jobs_completed.load(Ordering::Relaxed) as i64)),
        ])
    }

    /// Jobs completed so far (for the shutdown acknowledgement).
    pub fn jobs_completed(&self) -> u64 {
        self.service.jobs_completed.load(Ordering::Relaxed)
    }

    /// Drains the service: stops admission, reports still-queued jobs as
    /// `cancelled`, waits up to the grace period for in-flight jobs, cancels
    /// the stragglers, joins the workers, and flushes the cache journal.
    /// Returns the total number of jobs completed.  Idempotent: a second
    /// call finds no queue, no active jobs, and no workers left to join.
    pub fn drain(&self) -> u64 {
        let service = &self.service;
        service.shutdown.store(true, Ordering::SeqCst);
        service.queue_cv.notify_all();
        // Queued-but-not-started jobs are cancelled, not silently dropped:
        // every admitted job gets exactly one result line.
        let queued: Vec<Job> = {
            let mut queue = service.queue.lock().expect("job queue poisoned");
            queue.drain(..).collect()
        };
        for job in queued {
            job.token.cancel();
            let outcome = cancelled_outcome("cancelled by shutdown");
            let task = TaskReport::from_outcome(job.name.clone(), &job.engine, &outcome).to_json();
            write_line(&job.out, &result_response(&job.id, false, &job.fingerprint, task));
            service.jobs_completed.fetch_add(1, Ordering::Relaxed);
        }
        // Give in-flight jobs the grace period, then cancel them too; the
        // workers report each with an honest `cancelled` line.
        let deadline = Instant::now() + self.drain_grace;
        while Instant::now() < deadline {
            if service.active.lock().expect("active set poisoned").is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for (_, token) in service.active.lock().expect("active set poisoned").iter() {
            token.cancel();
        }
        let workers = std::mem::take(&mut *self.worker_threads.lock().expect("workers poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
        service.cache.lock().expect("cache lock poisoned").sync();
        service.jobs_completed.load(Ordering::Relaxed)
    }
}

/// The worker body: pop a job, run it fault-isolated, report one line,
/// memoize deterministic verdicts.
fn worker_loop(service: &Service) {
    loop {
        let job = {
            let mut queue = service.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if service.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = service
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("job queue poisoned")
                    .0;
            }
        };
        let Some(job) = job else { return };
        service.active.lock().expect("active set poisoned").push((job.seq, job.token.clone()));
        // The deadline guard was registered at admission and travels with
        // the job, so run_job gets a spec without its own timeout.
        let mut outcome = run_job(&JobSpec::new(job.engine.clone()), &job.program, &job.token);
        if job.guard.as_ref().is_some_and(|g| g.expired()) {
            outcome.deadline_expired = true;
            if outcome.verdict == "cancelled" {
                outcome.detail =
                    format!("deadline of {} ms exceeded", job.timeout_ms.unwrap_or_default());
            }
        } else if outcome.verdict == "cancelled" {
            outcome.detail = "cancelled by shutdown".to_string();
        }
        drop(job.guard);
        let task = TaskReport::from_outcome(job.name.clone(), &job.engine, &outcome).to_json();
        if outcome.is_cacheable() && !job.engine.is_shim() {
            service
                .cache
                .lock()
                .expect("cache lock poisoned")
                .insert(&job.fingerprint, task.clone());
        }
        write_line(&job.out, &result_response(&job.id, false, &job.fingerprint, task));
        service.jobs_completed.fetch_add(1, Ordering::Relaxed);
        service.active.lock().expect("active set poisoned").retain(|(seq, _)| *seq != job.seq);
    }
}

/// A synthetic `cancelled` outcome for jobs that never reached a worker.
fn cancelled_outcome(detail: &str) -> JobOutcome {
    JobOutcome {
        verdict: "cancelled".to_string(),
        detail: detail.to_string(),
        refinements: 0,
        predicates: 0,
        art_nodes: 0,
        certificate: None,
        stats: VerifierStats::default(),
        deadline_expired: false,
        wall_ms: 0.0,
    }
}

/// Parses the verify-specific fields of a request.
#[allow(clippy::type_complexity)]
fn parse_verify_request(
    request: &Json,
    default_timeout_ms: Option<u64>,
) -> Result<(Option<String>, Program, EngineSpec, Option<u64>), String> {
    let source = request
        .get("program")
        .and_then(Json::as_str)
        .ok_or("missing `program` field (the program source text)")?;
    let program = parse_program(source).map_err(|e| format!("program parse error: {e}"))?;
    let engine_name = request.get("engine").and_then(Json::as_str).unwrap_or("cegar");
    let refiner = request.get("refiner").and_then(Json::as_str);
    let engine = engine_spec_named(engine_name, refiner)?;
    let timeout_ms = match request.get("timeout_ms") {
        Some(Json::Int(ms)) if *ms > 0 => Some(*ms as u64),
        Some(Json::Int(_)) => return Err("`timeout_ms` must be positive".to_string()),
        Some(_) => return Err("`timeout_ms` must be an integer".to_string()),
        None => default_timeout_ms,
    };
    let name = request.get("name").and_then(Json::as_str).map(str::to_string);
    Ok((name, program, engine, timeout_ms))
}

/// Resolves the protocol's engine/refiner naming to an [`EngineSpec`] with
/// default configurations (the same ones batch mode runs).
pub fn engine_spec_named(engine: &str, refiner: Option<&str>) -> Result<EngineSpec, String> {
    match (engine, refiner) {
        ("cegar", None | Some("path-invariants")) => {
            Ok(EngineSpec::Cegar(CegarConfig::path_invariants()))
        }
        ("cegar", Some("path-predicates")) => {
            Ok(EngineSpec::Cegar(CegarConfig::path_predicates(crate::DEFAULT_BASELINE_REFINEMENTS)))
        }
        ("cegar", Some(other)) => Err(format!("unknown refiner `{other}`")),
        ("bmc", _) => Ok(EngineSpec::Bmc(Default::default())),
        ("pdr", _) => Ok(EngineSpec::Pdr(Default::default())),
        ("panic-shim", _) => Ok(EngineSpec::PanicShim),
        ("spin-shim", _) => Ok(EngineSpec::SpinShim),
        (other, _) => Err(format!("unknown engine `{other}`")),
    }
}

fn error_response(id: &Json, message: &str) -> Json {
    Json::object(vec![
        ("id", id.clone()),
        ("status", Json::Str("error".to_string())),
        ("error", Json::Str(message.to_string())),
    ])
}

fn status_response(id: &Json, status: &str) -> Json {
    Json::object(vec![("id", id.clone()), ("status", Json::Str(status.to_string()))])
}

fn result_response(id: &Json, cached: bool, fingerprint: &str, task: Json) -> Json {
    Json::object(vec![
        ("id", id.clone()),
        ("status", Json::Str("done".to_string())),
        ("cached", Json::Bool(cached)),
        ("fingerprint", Json::Str(fingerprint.to_string())),
        ("schema_version", Json::Int(SCHEMA_VERSION)),
        ("task", task),
    ])
}

/// Re-stamps a cached task record for replay: the submission's program name
/// (the cache key deliberately ignores names) and a zero wall-clock (the
/// replay did no engine work; the original run's time would be a lie).
fn restamp_task(task: Json, name: &str) -> Json {
    match task {
        Json::Object(pairs) => Json::Object(
            pairs
                .into_iter()
                .map(|(k, v)| match k.as_str() {
                    "program" => (k, Json::Str(name.to_string())),
                    "wall_ms" => (k, Json::Float(round3(0.0))),
                    _ => (k, v),
                })
                .collect(),
        ),
        other => other,
    }
}

/// Runs the daemon per `config`; returns the process exit code.
///
/// # Errors
///
/// Only setup failures (socket bind) error out; per-job and per-connection
/// failures are absorbed by design.
pub fn run_serve(config: &ServeConfig) -> Result<i32, String> {
    install_sigterm_handler();
    let handle = ServiceHandle::start(config);
    match &config.socket {
        Some(path) => serve_socket(config, path.clone(), handle),
        None => Ok(serve_stdin(handle)),
    }
}

/// Socket front end: nonblocking accept loop polling the shutdown latches,
/// one reader thread per connection.
fn serve_socket(config: &ServeConfig, path: PathBuf, handle: ServiceHandle) -> Result<i32, String> {
    // A stale socket file from a crashed daemon would fail the bind.
    if path.exists() {
        std::fs::remove_file(&path)
            .map_err(|e| format!("cannot remove stale socket {}: {e}", path.display()))?;
    }
    let listener = UnixListener::bind(&path)
        .map_err(|e| format!("cannot bind socket {}: {e}", path.display()))?;
    listener.set_nonblocking(true).map_err(|e| format!("cannot set nonblocking: {e}"))?;
    eprintln!(
        "serve: listening on {} (workers={}, queue={}, cache={})",
        path.display(),
        config.workers,
        config.queue_capacity,
        config.cache_path.as_ref().map_or("memory".to_string(), |p| p.display().to_string()),
    );
    // `handle_line` returns Shutdown on the reader thread; this latch (plus
    // the writer to acknowledge on) carries it back to the accept loop.
    let shutdown_requested: Arc<Mutex<Option<SharedWriter>>> = Arc::new(Mutex::new(None));
    let handle = Arc::new(handle);
    loop {
        if SIGTERM.load(Ordering::SeqCst) {
            eprintln!("serve: SIGTERM, draining");
            break;
        }
        if shutdown_requested.lock().expect("latch poisoned").is_some() {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let handle = Arc::clone(&handle);
                let latch = Arc::clone(&shutdown_requested);
                std::thread::spawn(move || handle_connection(&handle, stream, &latch));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    let ack = shutdown_requested.lock().expect("latch poisoned").take();
    drop(listener);
    std::fs::remove_file(&path).ok();
    let completed = handle.drain();
    if let Some(ack) = ack {
        write_line(
            &ack,
            &Json::object(vec![
                ("status", Json::Str("shutdown".to_string())),
                ("jobs_completed", Json::Int(completed as i64)),
            ]),
        );
    }
    eprintln!("serve: drained, {completed} job(s) completed");
    Ok(0)
}

/// One connection: read lines, dispatch, until EOF or shutdown.
fn handle_connection(
    handle: &Arc<ServiceHandle>,
    stream: UnixStream,
    shutdown_latch: &Arc<Mutex<Option<SharedWriter>>>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if handle.handle_line(&line, &out) == Flow::Shutdown {
            *shutdown_latch.lock().expect("latch poisoned") = Some(Arc::clone(&out));
            break;
        }
    }
}

/// Stdin front end: a reader thread feeds lines over a channel so the main
/// loop can keep polling the SIGTERM latch (glibc restarts the blocking
/// read, so the flag alone would never be observed mid-read).
fn serve_stdin(handle: ServiceHandle) -> i32 {
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    let mut acked = false;
    loop {
        if SIGTERM.load(Ordering::SeqCst) {
            eprintln!("serve: SIGTERM, draining");
            break;
        }
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(line) => {
                if handle.handle_line(&line, &out) == Flow::Shutdown {
                    acked = true;
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break, // EOF drains
        }
    }
    let completed = handle.drain();
    if acked {
        write_line(
            &out,
            &Json::object(vec![
                ("status", Json::Str("shutdown".to_string())),
                ("jobs_completed", Json::Int(completed as i64)),
            ]),
        );
    }
    eprintln!("serve: drained, {completed} job(s) completed");
    0
}

/// In-process warm-vs-cold daemon benchmark over the source corpus, used
/// by `--bless` to stamp the `serve` section of the bench point.
///
/// Two passes run against the same persistent journal.  The cold pass
/// verifies every corpus program into an empty cache and is then drained
/// (journal synced, workers joined).  A second service recovers the
/// journal from disk — the same path a restarted daemon takes — so the
/// warm pass measures submissions answered from the recovered cache.
/// Verdict and certificate-digest parity between the passes is recorded in
/// [`crate::trajectory::ServeBench::parity_failures`].
pub fn bench_serve(workers: usize) -> crate::trajectory::ServeBench {
    struct VecWriter(Arc<Mutex<Vec<u8>>>);
    impl Write for VecWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("bench buffer poisoned").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let corpus = crate::corpus_sources();
    let cache_path =
        std::env::temp_dir().join(format!("pathinv-bench-serve-{}.journal", std::process::id()));
    std::fs::remove_file(&cache_path).ok();
    let config = ServeConfig {
        socket: None,
        cache_path: Some(cache_path.clone()),
        workers,
        queue_capacity: corpus.len().max(16),
        default_timeout_ms: None,
        drain_grace_ms: 120_000,
    };

    // One pass: start a service over the journal, submit the whole corpus,
    // wait for every response, drain.  Returns (wall_ms, hits, rows) with
    // rows = (program, verdict, cert_digest) sorted by program.
    let pass = |label: &str| -> (f64, u64, Vec<(String, String, String)>) {
        let handle = ServiceHandle::start(&config);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(VecWriter(Arc::clone(&buf)))));
        let start = Instant::now();
        for (i, (name, src)) in corpus.iter().enumerate() {
            let line = Json::object(vec![
                ("op", Json::Str("verify".to_string())),
                ("id", Json::Int(i as i64 + 1)),
                ("name", Json::Str(name.clone())),
                ("program", Json::Str(src.clone())),
            ])
            .compact();
            handle.handle_line(&line, &out);
        }
        let responses = loop {
            let text = String::from_utf8(buf.lock().expect("bench buffer poisoned").clone())
                .expect("responses are UTF-8");
            let got: Vec<Json> =
                text.lines().map(|l| json::parse(l).expect("response parses")).collect();
            if got.len() >= corpus.len() {
                break got;
            }
            assert!(
                start.elapsed() < Duration::from_secs(600),
                "bench serve {label} pass timed out with {} of {} responses",
                got.len(),
                corpus.len()
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        handle.drain();
        let mut hits = 0u64;
        let mut rows = Vec::new();
        for r in &responses {
            assert_eq!(r.get("status").and_then(Json::as_str), Some("done"), "{label}: {r:?}");
            if r.get("cached") == Some(&Json::Bool(true)) {
                hits += 1;
            }
            let task = r.get("task").expect("done response carries a task");
            let field =
                |k: &str| task.get(k).and_then(Json::as_str).unwrap_or_default().to_string();
            rows.push((field("program"), field("verdict"), field("cert_digest")));
        }
        rows.sort();
        (wall_ms, hits, rows)
    };

    let (cold_ms, cold_hits, cold_rows) = pass("cold");
    assert_eq!(cold_hits, 0, "cold pass ran against a non-empty cache");
    let (warm_ms, warm_hits, warm_rows) = pass("warm");
    std::fs::remove_file(&cache_path).ok();

    let mut parity_failures = Vec::new();
    for (c, w) in cold_rows.iter().zip(warm_rows.iter()) {
        if c != w {
            parity_failures.push(format!("cold {c:?} vs warm {w:?}"));
        }
    }
    crate::trajectory::ServeBench {
        programs: corpus.len(),
        cold_ms,
        warm_ms,
        warm_hits,
        parity_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer unit tests can inspect: every response line lands in the
    /// shared buffer.
    #[derive(Clone)]
    struct Sink(Arc<Mutex<Vec<u8>>>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sink() -> (SharedWriter, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(Sink(Arc::clone(&buf)))));
        (writer, buf)
    }

    fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<Json> {
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        text.lines().map(|l| json::parse(l).expect(l)).collect()
    }

    /// Polls until `buf` holds `n` lines (workers respond asynchronously).
    fn wait_for_lines(buf: &Arc<Mutex<Vec<u8>>>, n: usize) -> Vec<Json> {
        let start = Instant::now();
        loop {
            let got = lines(buf);
            if got.len() >= n {
                return got;
            }
            assert!(start.elapsed() < Duration::from_secs(60), "only {} lines", got.len());
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn verify_line(id: i64, program: &str, extra: &str) -> String {
        format!(
            "{{\"op\":\"verify\",\"id\":{id},\"program\":{},{extra}\"name\":\"t{id}\"}}",
            Json::Str(program.to_string()).compact()
        )
    }

    const BUG: &str = "proc bug(x: int) { x = 1; assert(x == 2); }";

    #[test]
    fn malformed_lines_error_and_the_stream_continues() {
        let handle = ServiceHandle::start(&ServeConfig::default());
        let (out, buf) = sink();
        assert_eq!(handle.handle_line("{not json", &out), Flow::Continue);
        assert_eq!(handle.handle_line("{\"op\":\"frobnicate\"}", &out), Flow::Continue);
        assert_eq!(handle.handle_line("{\"id\":7}", &out), Flow::Continue);
        assert_eq!(handle.handle_line("{\"op\":\"verify\",\"id\":8}", &out), Flow::Continue);
        assert_eq!(
            handle.handle_line("{\"op\":\"verify\",\"id\":9,\"program\":\"proc x| {\"}", &out),
            Flow::Continue
        );
        assert_eq!(handle.handle_line("{\"op\":\"ping\",\"id\":10}", &out), Flow::Continue);
        let got = wait_for_lines(&buf, 6);
        for response in &got[..5] {
            assert_eq!(response.get("status").and_then(Json::as_str), Some("error"));
        }
        assert_eq!(got[5].get("status").and_then(Json::as_str), Some("pong"));
        assert_eq!(got[5].get("id").and_then(Json::as_int), Some(10));
        handle.drain();
    }

    #[test]
    fn verify_runs_and_caches_deterministic_verdicts() {
        let handle = ServiceHandle::start(&ServeConfig::default());
        let (out, buf) = sink();
        handle.handle_line(&verify_line(1, BUG, ""), &out);
        let first = &wait_for_lines(&buf, 1)[0];
        assert_eq!(first.get("status").and_then(Json::as_str), Some("done"));
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        let task = first.get("task").unwrap();
        assert_eq!(task.get("verdict").and_then(Json::as_str), Some("unsafe"));
        assert_eq!(task.get("program").and_then(Json::as_str), Some("t1"));
        // Resubmission under a *different name* replays from the cache.
        handle.handle_line(&verify_line(2, BUG, ""), &out);
        let second = &wait_for_lines(&buf, 2)[1];
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        let replay = second.get("task").unwrap();
        assert_eq!(replay.get("verdict").and_then(Json::as_str), Some("unsafe"));
        assert_eq!(replay.get("program").and_then(Json::as_str), Some("t2"));
        assert_eq!(
            replay.get("cert_digest"),
            task.get("cert_digest"),
            "replayed verdicts must be byte-identical up to the re-stamped name"
        );
        assert_eq!(first.get("fingerprint"), second.get("fingerprint"));
        handle.drain();
    }

    #[test]
    fn panic_shim_errors_and_the_daemon_keeps_serving() {
        let handle = ServiceHandle::start(&ServeConfig::default());
        let (out, buf) = sink();
        handle.handle_line(&verify_line(1, BUG, "\"engine\":\"panic-shim\","), &out);
        handle.handle_line(&verify_line(2, BUG, "\"engine\":\"bmc\","), &out);
        let got = wait_for_lines(&buf, 2);
        let by_id =
            |id: i64| got.iter().find(|r| r.get("id").and_then(Json::as_int) == Some(id)).unwrap();
        let panicked = by_id(1).get("task").unwrap();
        assert_eq!(panicked.get("verdict").and_then(Json::as_str), Some("error"));
        assert!(panicked.get("detail").and_then(Json::as_str).unwrap().contains("panicked"));
        let next = by_id(2).get("task").unwrap();
        assert_eq!(next.get("verdict").and_then(Json::as_str), Some("unsafe"));
        handle.drain();
    }

    #[test]
    fn spin_shim_deadline_cancels_within_twice_the_deadline() {
        let handle = ServiceHandle::start(&ServeConfig::default());
        let (out, buf) = sink();
        let start = Instant::now();
        handle.handle_line(
            &verify_line(1, BUG, "\"engine\":\"spin-shim\",\"timeout_ms\":200,"),
            &out,
        );
        let got = wait_for_lines(&buf, 1);
        // Cooperative cancellation latency: watchdog wakeup + one poll; the
        // acceptance envelope is 2× the deadline.
        assert!(start.elapsed() < Duration::from_millis(400), "{:?}", start.elapsed());
        let task = got[0].get("task").unwrap();
        assert_eq!(task.get("verdict").and_then(Json::as_str), Some("cancelled"));
        assert!(task.get("detail").and_then(Json::as_str).unwrap().contains("deadline of 200 ms"));
        handle.drain();
    }

    #[test]
    fn overload_rejects_beyond_queue_capacity() {
        let config = ServeConfig { workers: 1, queue_capacity: 1, ..ServeConfig::default() };
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        // One spinning job occupies the worker; the next fills the queue;
        // the third must be rejected, not buffered.
        handle.handle_line(
            &verify_line(1, BUG, "\"engine\":\"spin-shim\",\"timeout_ms\":2000,"),
            &out,
        );
        // Wait until the spin job is actually *active* so the queue is free.
        let start = Instant::now();
        while handle.service.active.lock().unwrap().is_empty() {
            assert!(start.elapsed() < Duration::from_secs(10));
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.handle_line(
            &verify_line(2, BUG, "\"engine\":\"spin-shim\",\"timeout_ms\":2000,"),
            &out,
        );
        handle.handle_line(&verify_line(3, BUG, ""), &out);
        let got = wait_for_lines(&buf, 1);
        let overloaded = got
            .iter()
            .find(|r| r.get("status").and_then(Json::as_str) == Some("overloaded"))
            .expect("the third submission is rejected immediately");
        assert_eq!(overloaded.get("id").and_then(Json::as_int), Some(3));
        handle.drain();
    }

    #[test]
    fn drain_reports_queued_jobs_cancelled_and_joins_workers() {
        let config = ServeConfig { workers: 1, queue_capacity: 8, ..ServeConfig::default() };
        let mut config = config;
        config.drain_grace_ms = 100;
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        // An in-flight divergent job plus two queued ones.
        for id in 1..=3 {
            handle.handle_line(&verify_line(id, BUG, "\"engine\":\"spin-shim\","), &out);
        }
        let start = Instant::now();
        while handle.service.active.lock().unwrap().is_empty() {
            assert!(start.elapsed() < Duration::from_secs(10));
            std::thread::sleep(Duration::from_millis(2));
        }
        let completed = handle.drain();
        assert_eq!(completed, 3, "every admitted job gets exactly one result line");
        let got = wait_for_lines(&buf, 3);
        for response in &got {
            let task = response.get("task").unwrap();
            assert_eq!(task.get("verdict").and_then(Json::as_str), Some("cancelled"));
        }
    }

    #[test]
    fn cache_persists_across_service_restarts() {
        let path = std::env::temp_dir()
            .join(format!("pathinv-serve-test-{}-restart.journal", std::process::id()));
        std::fs::remove_file(&path).ok();
        let config = ServeConfig { cache_path: Some(path.clone()), ..ServeConfig::default() };
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        handle.handle_line(&verify_line(1, BUG, ""), &out);
        wait_for_lines(&buf, 1);
        handle.drain();
        // A fresh service over the same journal serves the verdict warm.
        let handle = ServiceHandle::start(&config);
        let (out, buf) = sink();
        handle.handle_line(&verify_line(2, BUG, ""), &out);
        let got = wait_for_lines(&buf, 1);
        assert_eq!(got[0].get("cached"), Some(&Json::Bool(true)));
        assert_eq!(
            got[0].get("task").unwrap().get("verdict").and_then(Json::as_str),
            Some("unsafe")
        );
        handle.drain();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_spec_named_covers_the_protocol_vocabulary() {
        assert!(engine_spec_named("cegar", None).is_ok());
        assert!(engine_spec_named("cegar", Some("path-predicates")).is_ok());
        assert!(engine_spec_named("cegar", Some("mystery")).is_err());
        assert!(engine_spec_named("bmc", None).is_ok());
        assert!(engine_spec_named("pdr", None).is_ok());
        assert!(engine_spec_named("panic-shim", None).is_ok());
        assert!(engine_spec_named("spin-shim", None).is_ok());
        assert!(engine_spec_named("z3", None).is_err());
    }
}
