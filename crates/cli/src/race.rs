//! The racing portfolio harness (`--race`).
//!
//! A portfolio run executes every engine to completion and cross-checks the
//! verdicts; a *race* runs the same four lanes — CEGAR with each refiner,
//! BMC, and PDR-lite — but stops paying for losers: the first lane to reach
//! a conclusive (`safe`/`unsafe`) verdict cancels the other lanes'
//! [`CancellationToken`]s, and the cancelled engines return the honest
//! `cancelled` verdict within one poll step (the cooperative-cancellation
//! contract of DESIGN.md §12).  The program's wall-clock cost is the
//! *winner's* time instead of the sum of all four.
//!
//! Race reports are inherently timing-dependent — which lane wins, and how
//! far a loser gets before it observes its token, varies run to run — so
//! they are never part of a golden projection.  What *is* checked, hard:
//!
//! * every conclusive lane in a race must agree with every other
//!   ([`RaceReport::mismatches`]; the CLI exits 1 otherwise, and the
//!   `race-smoke` CI job runs exactly that over the corpus), and
//! * racing verdicts must match the non-racing portfolio's combined
//!   verdicts ([`RaceReport::mismatches_against_portfolio`], exercised by
//!   the corpus agreement test) — `cancelled`, like `unknown`, is "no
//!   opinion" and can never contradict anything.
//!
//! Ties are broken deterministically by engine priority: when two lanes
//! conclude in the same instant, the winner is the one with the lower
//! [`engine_rank`] (CEGAR/path-invariants first, PDR-lite last).

use crate::differential::DifferentialReport;
use crate::json::Json;
use crate::{
    engine_rank, make_tasks, run_task_with_cancel, EngineChoice, RefinerChoice, TaskReport,
    SCHEMA_VERSION,
};
use pathinv_core::CancellationToken;
use pathinv_ir::Program;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// The outcome of racing the four portfolio lanes on one program.
#[derive(Clone, Debug)]
pub struct RaceProgram {
    /// Report name of the program.
    pub program: String,
    /// Engine label of the winning lane (`"cegar/path-invariants"`, ...),
    /// or `"-"` when no lane concluded.
    pub winner: String,
    /// The race verdict: the winner's verdict, or `"unknown"` when no lane
    /// concluded (`"error"` if a lane errored and none concluded).
    pub verdict: String,
    /// Wall-clock from race start to the first conclusive verdict (or to
    /// the last lane finishing when none concluded), in milliseconds.
    pub wall_ms: f64,
    /// Every lane's result, in deterministic engine order.  Each lane's
    /// `wall_ms` is its time-to-first-verdict: how long after race start it
    /// returned, whether with a real verdict or with `cancelled`.
    pub lanes: Vec<TaskReport>,
}

impl RaceProgram {
    /// The lanes that reached a conclusive verdict, in engine order.
    fn conclusive(&self) -> impl Iterator<Item = &TaskReport> {
        self.lanes.iter().filter(|l| l.verdict == "safe" || l.verdict == "unsafe")
    }
}

/// The outcome of racing the portfolio over a whole program set.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Worker threads racing each program's lanes.
    pub jobs: usize,
    /// Per-program races, in input order.
    pub programs: Vec<RaceProgram>,
    /// End-to-end wall clock for the whole run, in milliseconds.
    pub wall_ms_total: f64,
}

/// Races the four portfolio lanes over every program, one program at a time,
/// with up to `jobs` lanes running concurrently.
///
/// Lanes are queued in engine-priority order; the first conclusive verdict
/// cancels every other lane's token, so with `jobs < 4` a not-yet-started
/// lane begins pre-cancelled and returns immediately.
///
/// With `certify`, every lane's certificate is audited by the independent
/// checker after the race: conclusive lanes must carry a valid certificate,
/// cancelled and unknown lanes pass vacuously
/// ([`RaceReport::certificate_failures`]; the CLI exits 1 on any entry).
///
/// With `timeout_ms` (`--timeout-ms`), every lane additionally runs under a
/// watchdog deadline on its own token: a lane that neither wins nor gets
/// cancelled by a winner is still reined in, returning the honest
/// `cancelled` — no-opinion, so it can never create or mask a mismatch.
pub fn run_race(
    programs: Vec<(String, Program)>,
    jobs: usize,
    certify: bool,
    timeout_ms: Option<u64>,
) -> RaceReport {
    let jobs = jobs.max(1);
    let start = Instant::now();
    let mut results = Vec::with_capacity(programs.len());
    for (name, program) in programs {
        results.push(race_one(name, program, jobs, certify, timeout_ms));
    }
    RaceReport { jobs, programs: results, wall_ms_total: start.elapsed().as_secs_f64() * 1e3 }
}

fn race_one(
    name: String,
    program: Program,
    jobs: usize,
    certify: bool,
    timeout_ms: Option<u64>,
) -> RaceProgram {
    let mut tasks = make_tasks(
        vec![(name.clone(), program)],
        EngineChoice::Portfolio,
        RefinerChoice::Both,
        None,
    );
    for t in &mut tasks {
        t.certify = certify;
        t.timeout_ms = timeout_ms;
    }
    let tokens: Vec<CancellationToken> =
        (0..tasks.len()).map(|_| CancellationToken::new()).collect();
    let start = Instant::now();
    let (tx, rx) = mpsc::channel::<(usize, TaskReport)>();
    let queue: Mutex<Vec<usize>> = Mutex::new((0..tasks.len()).rev().collect());
    let mut lanes: Vec<Option<TaskReport>> = vec![None; tasks.len()];
    let mut decision_ms: Option<f64> = None;
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(tasks.len()) {
            let tx = tx.clone();
            let tasks = &tasks;
            let tokens = &tokens;
            let queue = &queue;
            scope.spawn(move || loop {
                let Some(i) = queue.lock().expect("lane queue poisoned").pop() else {
                    break;
                };
                let mut report = run_task_with_cancel(&tasks[i], &tokens[i]);
                // A lane's wall clock is its time-to-first-verdict: from
                // *race* start, so queueing delay at jobs < 4 is included.
                report.wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let _ = tx.send((i, report));
            });
        }
        drop(tx);
        // The coordinator: collect lane results in arrival order, and on
        // the first conclusive verdict cancel every other lane.
        while let Ok((i, report)) = rx.recv() {
            let conclusive = report.verdict == "safe" || report.verdict == "unsafe";
            if conclusive && decision_ms.is_none() {
                decision_ms = Some(report.wall_ms);
                for (j, token) in tokens.iter().enumerate() {
                    if j != i {
                        token.cancel();
                    }
                }
            }
            lanes[i] = Some(report);
        }
    });
    let lanes: Vec<TaskReport> = lanes.into_iter().map(|l| l.expect("lane lost")).collect();
    // Winner: earliest conclusive lane, ties broken by engine priority.
    let winner =
        lanes.iter().filter(|l| l.verdict == "safe" || l.verdict == "unsafe").min_by(|a, b| {
            (a.wall_ms, engine_rank(&a.engine, &a.refiner))
                .partial_cmp(&(b.wall_ms, engine_rank(&b.engine, &b.refiner)))
                .expect("lane times are finite")
        });
    let (winner_label, verdict, wall_ms) = match winner {
        Some(w) => (w.engine_label(), w.verdict.clone(), decision_ms.unwrap_or(w.wall_ms)),
        None => {
            let errored = lanes.iter().any(|l| l.verdict == "error");
            let last = lanes.iter().map(|l| l.wall_ms).fold(0.0, f64::max);
            ("-".to_string(), if errored { "error" } else { "unknown" }.to_string(), last)
        }
    };
    RaceProgram { program: name, winner: winner_label, verdict, wall_ms, lanes }
}

impl RaceReport {
    /// Conclusive lanes that contradict each other within one race (empty =
    /// every race is internally consistent).  The soundness contract makes
    /// any entry here a bug in an engine, exactly as in the non-racing
    /// differential harness; the CLI hard-fails on it.
    pub fn mismatches(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.programs {
            let safe: Vec<&TaskReport> = p.conclusive().filter(|l| l.verdict == "safe").collect();
            let unsafe_: Vec<&TaskReport> =
                p.conclusive().filter(|l| l.verdict == "unsafe").collect();
            if !safe.is_empty() && !unsafe_.is_empty() {
                let spell = |ls: &[&TaskReport]| {
                    ls.iter()
                        .map(|l| format!("{} says {}", l.engine_label(), l.verdict))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                out.push(format!("{}: {}, {}", p.program, spell(&safe), spell(&unsafe_)));
            }
        }
        out
    }

    /// Race verdicts that contradict a (non-racing) portfolio run's combined
    /// verdicts on the same programs.  `cancelled` and `unknown` are "no
    /// opinion" on both sides: a race that decided a program the portfolio
    /// left unknown (or vice versa) is *not* a mismatch — only `safe` vs
    /// `unsafe` is.
    pub fn mismatches_against_portfolio(&self, portfolio: &DifferentialReport) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.programs {
            if p.verdict != "safe" && p.verdict != "unsafe" {
                continue;
            }
            let Some(diff) = portfolio.programs.iter().find(|d| d.program == p.program) else {
                continue;
            };
            let combined = diff.combined.as_str();
            if (combined == "safe" || combined == "unsafe") && combined != p.verdict {
                out.push(format!(
                    "{}: race says {} ({}), portfolio says {}",
                    p.program, p.verdict, p.winner, combined
                ));
            }
        }
        out
    }

    /// Certificate audits that failed, rendered per lane.  Only populated
    /// when the race ran with `certify`: a conclusive lane whose certificate
    /// the independent checker rejected (`invalid`), that emitted none
    /// (`missing`), or whose certificate the checker could not decide
    /// (`unsupported`).  Vacuous passes — cancelled/unknown lanes with
    /// nothing to certify — never appear here.
    pub fn certificate_failures(&self) -> Vec<String> {
        self.programs
            .iter()
            .flat_map(|p| {
                p.lanes
                    .iter()
                    .filter(|l| {
                        matches!(l.cert_verdict.as_str(), "invalid" | "missing" | "unsupported")
                    })
                    .map(move |l| {
                        format!(
                            "{}: {} verdict {} has certificate audit {}: {}",
                            p.program,
                            l.engine_label(),
                            l.verdict,
                            l.cert_verdict,
                            l.cert_reason
                        )
                    })
            })
            .collect()
    }

    /// Races whose lanes errored, rendered per program.
    pub fn errors(&self) -> Vec<String> {
        self.programs
            .iter()
            .flat_map(|p| {
                p.lanes.iter().filter(|l| l.verdict == "error").map(move |l| {
                    format!("{}: {} errored: {}", p.program, l.engine_label(), l.detail)
                })
            })
            .collect()
    }

    /// The full JSON rendering of a race run.  Per program: the winner, the
    /// race verdict, the time to decision, and every lane's verdict with its
    /// time-to-first-verdict.  Never used as a golden projection.
    pub fn to_json(&self) -> Json {
        let decided =
            self.programs.iter().filter(|p| p.verdict == "safe" || p.verdict == "unsafe").count();
        Json::object(vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("mode", Json::Str("race".to_string())),
            ("jobs", Json::Int(self.jobs as i64)),
            (
                "programs",
                Json::Array(
                    self.programs
                        .iter()
                        .map(|p| {
                            Json::object(vec![
                                ("program", Json::Str(p.program.clone())),
                                ("winner", Json::Str(p.winner.clone())),
                                ("verdict", Json::Str(p.verdict.clone())),
                                ("wall_ms", Json::Float(round3(p.wall_ms))),
                                (
                                    "lanes",
                                    Json::Array(
                                        p.lanes
                                            .iter()
                                            .map(|l| {
                                                Json::object(vec![
                                                    ("engine", Json::Str(l.engine.clone())),
                                                    ("refiner", Json::Str(l.refiner.clone())),
                                                    ("verdict", Json::Str(l.verdict.clone())),
                                                    ("detail", Json::Str(l.detail.clone())),
                                                    (
                                                        "time_to_first_verdict_ms",
                                                        Json::Float(round3(l.wall_ms)),
                                                    ),
                                                    ("cert_kind", Json::Str(l.cert_kind.clone())),
                                                    (
                                                        "cert_digest",
                                                        Json::Str(l.cert_digest.clone()),
                                                    ),
                                                    (
                                                        "cert_verdict",
                                                        Json::Str(l.cert_verdict.clone()),
                                                    ),
                                                    (
                                                        "cert_reason",
                                                        Json::Str(l.cert_reason.clone()),
                                                    ),
                                                    (
                                                        "cert_check_ms",
                                                        Json::Float(round3(l.cert_check_ms)),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary",
                Json::object(vec![
                    ("programs", Json::Int(self.programs.len() as i64)),
                    ("decided", Json::Int(decided as i64)),
                    ("mismatches", Json::Int(self.mismatches().len() as i64)),
                    ("lane_errors", Json::Int(self.errors().len() as i64)),
                    ("cert_failures", Json::Int(self.certificate_failures().len() as i64)),
                    ("wall_ms_total", Json::Float(round3(self.wall_ms_total))),
                ]),
            ),
        ])
    }

    /// A human-readable fixed-width summary table of the race.
    pub fn render_table(&self) -> String {
        let name_width = self
            .programs
            .iter()
            .map(|p| p.program.len())
            .chain(std::iter::once("program".len()))
            .max()
            .unwrap_or(8);
        let winner_width = self
            .programs
            .iter()
            .map(|p| p.winner.len())
            .chain(std::iter::once("winner".len()))
            .max()
            .unwrap_or(6);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_width$}  {:<winner_width$}  {:<8}  {:>10}  lanes (verdict@ms)\n",
            "program", "winner", "verdict", "decision",
        ));
        let rule = name_width + winner_width + 52;
        out.push_str(&format!("{}\n", "-".repeat(rule)));
        for p in &self.programs {
            let lanes = p
                .lanes
                .iter()
                .map(|l| format!("{}={}@{:.0}", l.engine_label(), l.verdict, l.wall_ms))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "{:<name_width$}  {:<winner_width$}  {:<8}  {:>8.1}ms  {}\n",
                p.program, p.winner, p.verdict, p.wall_ms, lanes,
            ));
        }
        out.push_str(&format!("{}\n", "-".repeat(rule)));
        let decided =
            self.programs.iter().filter(|p| p.verdict == "safe" || p.verdict == "unsafe").count();
        out.push_str(&format!(
            "{} programs raced on {} workers in {:.1} ms: {} decided, {} mismatches, {} lane errors\n",
            self.programs.len(),
            self.jobs,
            self.wall_ms_total,
            decided,
            self.mismatches().len(),
            self.errors().len(),
        ));
        out
    }
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus_programs;
    use crate::run_batch;

    fn slice(names: &[&str]) -> Vec<(String, Program)> {
        corpus_programs().into_iter().filter(|(n, _)| names.contains(&n.as_str())).collect()
    }

    #[test]
    fn race_decides_figure4_and_cancels_losers() {
        let report = run_race(slice(&["FIGURE4"]), 4, false, None);
        let p = &report.programs[0];
        assert_eq!(p.verdict, "unsafe", "{p:?}");
        assert_ne!(p.winner, "-");
        assert_eq!(p.lanes.len(), 4);
        // Every lane either reached a real verdict or reports the honest
        // `cancelled` — never an `unknown` it did not earn.
        for l in &p.lanes {
            assert!(
                ["safe", "unsafe", "unknown", "cancelled"].contains(&l.verdict.as_str()),
                "{}: {}",
                l.engine_label(),
                l.verdict
            );
        }
        assert!(report.mismatches().is_empty());
        assert!(report.errors().is_empty());
    }

    #[test]
    fn race_with_one_worker_still_completes() {
        // With jobs = 1 the lanes run serially; a conclusive early lane
        // pre-cancels the queued ones, which then return immediately.
        let report = run_race(slice(&["FIGURE4"]), 1, false, None);
        let p = &report.programs[0];
        assert_eq!(p.verdict, "unsafe");
        assert!(report.mismatches().is_empty());
    }

    #[test]
    fn certified_race_audits_every_lane() {
        let report = run_race(slice(&["FIGURE4"]), 4, true, None);
        assert_eq!(report.certificate_failures(), Vec::<String>::new());
        for l in &report.programs[0].lanes {
            match l.verdict.as_str() {
                // Conclusive lanes carry a checker-validated certificate.
                "safe" | "unsafe" => assert_eq!(l.cert_verdict, "valid", "{}", l.engine_label()),
                // Cancelled/unknown lanes claim nothing: vacuous pass.
                _ => assert_eq!(l.cert_verdict, "vacuous", "{}", l.engine_label()),
            }
        }
    }

    #[test]
    fn race_agrees_with_the_portfolio_on_the_corpus_slice() {
        // The race-vs-portfolio differential on a representative slice
        // (safe, unsafe, and unknown-heavy programs); the full-corpus
        // agreement runs in the race-smoke CI job and the regression suite.
        let names = ["FORWARD", "FIGURE4", "BUGGY_INITCHECK", "pinv/half_integer_bug"];
        let race = run_race(slice(&names), 4, false, None);
        let portfolio = run_batch(
            make_tasks(slice(&names), EngineChoice::Portfolio, RefinerChoice::Both, None),
            4,
        );
        let diff = DifferentialReport::from_batch(&portfolio);
        assert_eq!(race.mismatches(), Vec::<String>::new());
        assert_eq!(race.mismatches_against_portfolio(&diff), Vec::<String>::new());
    }

    #[test]
    fn race_json_carries_winner_and_lane_times() {
        let report = run_race(slice(&["FIGURE4"]), 4, false, None);
        let doc = crate::json::parse(&report.to_json().pretty()).unwrap();
        assert_eq!(doc.get("mode").and_then(Json::as_str), Some("race"));
        assert_eq!(doc.get("schema_version").and_then(Json::as_int), Some(SCHEMA_VERSION));
        let programs = doc.get("programs").and_then(Json::as_array).unwrap();
        let lanes = programs[0].get("lanes").and_then(Json::as_array).unwrap();
        assert_eq!(lanes.len(), 4);
        for lane in lanes {
            assert!(lane.get("time_to_first_verdict_ms").is_some());
        }
    }

    #[test]
    fn mismatch_detection_pairs_contradictory_lanes() {
        // Hand-assemble an (impossible under the soundness contract) race
        // where two lanes contradict each other.
        let lane = |engine: &str, refiner: &str, verdict: &str| TaskReport {
            program_name: "P".to_string(),
            engine: engine.to_string(),
            refiner: refiner.to_string(),
            verdict: verdict.to_string(),
            detail: String::new(),
            refinements: 0,
            predicates: 0,
            art_nodes: 0,
            wall_ms: 1.0,
            cert_kind: String::new(),
            cert_size: 0,
            cert_digest: String::new(),
            cert_verdict: String::new(),
            cert_reason: String::new(),
            cert_check_ms: 0.0,
            stats: Default::default(),
        };
        let report = RaceReport {
            jobs: 4,
            wall_ms_total: 1.0,
            programs: vec![RaceProgram {
                program: "P".to_string(),
                winner: "bmc".to_string(),
                verdict: "unsafe".to_string(),
                wall_ms: 1.0,
                lanes: vec![
                    lane("cegar", "path-invariants", "safe"),
                    lane("bmc", crate::NO_REFINER, "unsafe"),
                ],
            }],
        };
        let ms = report.mismatches();
        assert_eq!(ms.len(), 1);
        assert!(ms[0].contains("cegar/path-invariants says safe"), "{ms:?}");
        assert!(ms[0].contains("bmc says unsafe"), "{ms:?}");
    }
}
