//! Process isolation for service jobs: the `run-one-job` re-exec protocol.
//!
//! Thread-level fault isolation (`catch_unwind` in [`pathinv_core::run_job`])
//! absorbs panics, but an abort, a stack overflow, or the OOM killer takes
//! the whole daemon down with the job.  Under `serve --isolate process`
//! each job instead runs in a re-exec'd child of the `pathinv-cli` binary:
//!
//! * The worker spawns `current_exe() run-one-job` with piped
//!   stdin/stdout and writes **one** request line — the job's source text,
//!   engine, refiner, and report name as compact JSON.
//! * The child (the hidden [`run_one_job_main`] entrypoint, dispatched in
//!   `main` before normal argument parsing) parses the program, runs the
//!   job to completion with *no* deadline of its own, and answers one line:
//!   `{"task": <task record>, "verdict": ..., "cacheable": ...}`.
//! * The parent polls child exit against the job's [`CancellationToken`]
//!   (which the admission-time watchdog cancels on deadline and the drain
//!   cancels on shutdown) and **hard-kills** the child the moment the token
//!   fires — a hung or hogging child cannot outlive its deadline.
//! * A child that dies any other way (SIGABRT, SIGSEGV, SIGKILL from the
//!   OOM killer, a garbled reply) is reported as a [`ChildRun::Crashed`]
//!   fault, which the supervisor turns into an `"error"` task — the daemon
//!   keeps serving.
//!
//! The certificate carried by a conclusive verdict never crosses the pipe
//! as a structured object; the task record already embeds its kind, size,
//! and digest, which is all the protocol (and the verdict cache) persists.

use crate::json::{self, Json};
use crate::serve::engine_spec_named;
use pathinv_core::{run_job, CancellationToken, EngineSpec, JobSpec};
use pathinv_ir::parse_program;
use pathinv_report::TaskReport;
use std::io::{Read, Write};
use std::process::{Command, Stdio};
use std::time::Duration;

/// How one process-isolated job ended, from the parent's point of view.
pub enum ChildRun {
    /// The child ran the job and answered; the task record is its verbatim
    /// report.
    Done {
        /// The task record produced in the child.
        task: Json,
        /// The child's verdict (`"safe"`, …, `"error"`).
        verdict: String,
        /// Whether the child judged the outcome cache-admissible.
        cacheable: bool,
    },
    /// The parent killed the child because the job's token fired (deadline
    /// or shutdown drain); the supervisor reports an honest `cancelled`.
    Killed,
    /// The child died on its own — signal, nonzero exit, or an unparseable
    /// reply.  A fault: the supervisor reports an `error` task and feeds
    /// the circuit breaker.
    Crashed {
        /// Human-readable cause for the task's `detail` field.
        detail: String,
    },
}

/// Runs one job in a re-exec'd child, hard-killing it if `token` fires.
pub fn run_job_in_child(
    name: &str,
    source: &str,
    engine: &EngineSpec,
    token: &CancellationToken,
) -> ChildRun {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => return ChildRun::Crashed { detail: format!("cannot locate own binary: {e}") },
    };
    let mut child = match Command::new(exe)
        .arg("run-one-job")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
    {
        Ok(child) => child,
        Err(e) => return ChildRun::Crashed { detail: format!("cannot spawn job process: {e}") },
    };
    let request = Json::object(vec![
        ("program", Json::Str(source.to_string())),
        ("engine", Json::Str(engine.engine_name().to_string())),
        ("refiner", Json::Str(engine.refiner_name().to_string())),
        ("name", Json::Str(name.to_string())),
    ]);
    if let Some(mut stdin) = child.stdin.take() {
        // A child that aborts before reading closes the pipe; the write
        // error is subsumed by the exit-status handling below.
        let _ = writeln!(stdin, "{}", request.compact());
    }
    // Drain stdout on a side thread so a long reply can never deadlock
    // against a full pipe while the parent only polls for exit.
    let stdout = child.stdout.take();
    let reader = std::thread::spawn(move || {
        let mut text = String::new();
        if let Some(mut stdout) = stdout {
            let _ = stdout.read_to_string(&mut text);
        }
        text
    });
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                let text = reader.join().unwrap_or_default();
                if status.success() {
                    return parse_child_reply(&text);
                }
                use std::os::unix::process::ExitStatusExt;
                let detail = match status.signal() {
                    Some(sig) => format!("engine process died on signal {sig}"),
                    None => {
                        format!("engine process exited with status {}", status.code().unwrap_or(-1))
                    }
                };
                return ChildRun::Crashed { detail };
            }
            Ok(None) => {
                if token.is_cancelled() {
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = reader.join();
                    return ChildRun::Killed;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                let _ = reader.join();
                return ChildRun::Crashed { detail: format!("cannot wait for job process: {e}") };
            }
        }
    }
}

/// Decodes the child's single reply line; anything short of a well-formed
/// task record counts as a crash.
fn parse_child_reply(text: &str) -> ChildRun {
    let Some(reply) = text.lines().next().and_then(|l| json::parse(l).ok()) else {
        return ChildRun::Crashed {
            detail: "engine process exited without a parseable result".to_string(),
        };
    };
    let (Some(task), Some(verdict)) =
        (reply.get("task").cloned(), reply.get("verdict").and_then(Json::as_str))
    else {
        return ChildRun::Crashed {
            detail: "engine process reply is missing task/verdict".to_string(),
        };
    };
    ChildRun::Done {
        task,
        verdict: verdict.to_string(),
        cacheable: reply.get("cacheable") == Some(&Json::Bool(true)),
    }
}

/// The hidden `run-one-job` entrypoint: reads one request line from stdin,
/// runs the job to completion, answers one reply line on stdout.  Returns
/// the process exit code — `0` for any job that *ran* (including `error`
/// verdicts), `2` for a malformed request.  Fault-injection shims may of
/// course never return at all; that is the point of the re-exec.
pub fn run_one_job_main() -> i32 {
    let mut line = String::new();
    if std::io::stdin().read_line(&mut line).is_err() {
        eprintln!("run-one-job: cannot read the request line");
        return 2;
    }
    let request = match json::parse(line.trim()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("run-one-job: malformed request: {e}");
            return 2;
        }
    };
    let Some(source) = request.get("program").and_then(Json::as_str) else {
        eprintln!("run-one-job: missing `program`");
        return 2;
    };
    let program = match parse_program(source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("run-one-job: program parse error: {e}");
            return 2;
        }
    };
    let engine_name = request.get("engine").and_then(Json::as_str).unwrap_or("cegar");
    let refiner =
        request.get("refiner").and_then(Json::as_str).filter(|r| *r != pathinv_core::NO_REFINER);
    let engine = match engine_spec_named(engine_name, refiner) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("run-one-job: {e}");
            return 2;
        }
    };
    let name = request.get("name").and_then(Json::as_str).unwrap_or("job").to_string();
    // No deadline in the child: the parent enforces deadlines by kill, so
    // an expired job can never linger here unnoticed.
    let outcome = run_job(&JobSpec::new(engine.clone()), &program, &CancellationToken::new());
    let task = TaskReport::from_outcome(name, &engine, &outcome).to_json();
    let reply = Json::object(vec![
        ("task", task),
        ("verdict", Json::Str(outcome.verdict.clone())),
        ("cacheable", Json::Bool(outcome.is_cacheable())),
    ]);
    let mut stdout = std::io::stdout();
    if writeln!(stdout, "{}", reply.compact()).and_then(|()| stdout.flush()).is_err() {
        return 2;
    }
    0
}
