//! Batch verification driver for the Path Invariants reproduction.
//!
//! Runs corpus programs and/or `.pinv` source files through the
//! path-invariant and finite-path-predicate refiners in parallel, printing a
//! summary table and optionally writing a JSON report (or a golden snapshot
//! for the regression test).

use pathinv_cli::{corpus_programs, load_pinv_file, make_tasks, run_batch, RefinerChoice};
use std::process::ExitCode;

const USAGE: &str = "\
pathinv-cli — batch verification over the Path Invariants corpus

USAGE:
    pathinv-cli [OPTIONS] [FILE.pinv ...]

ARGS:
    FILE.pinv ...          front-end source files to verify alongside/instead
                           of the corpus

OPTIONS:
    --all                  verify every program in pathinv_ir::corpus
    --refiner <WHICH>      path-invariants | path-predicates | both
                           (default: both)
    --max-refinements <N>  override the refinement bound for all tasks
    --jobs <N>             worker threads (default: available parallelism)
    --json <PATH>          write the full JSON report to PATH (`-` = stdout)
    --golden <PATH>        write the deterministic golden snapshot to PATH
    --quiet                suppress the summary table
    --help                 show this help

EXIT STATUS:
    0  all tasks completed (verdicts may be safe/unsafe/unknown)
    1  at least one task errored or an input file failed to load
    2  usage error
";

struct Options {
    all: bool,
    files: Vec<String>,
    choice: RefinerChoice,
    max_refinements: Option<usize>,
    jobs: usize,
    json_path: Option<String>,
    golden_path: Option<String>,
    quiet: bool,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        all: false,
        files: Vec::new(),
        choice: RefinerChoice::Both,
        max_refinements: None,
        jobs: default_jobs(),
        json_path: None,
        golden_path: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--all" => opts.all = true,
            "--quiet" => opts.quiet = true,
            "--refiner" => {
                opts.choice = match value_for("--refiner")?.as_str() {
                    "path-invariants" => RefinerChoice::PathInvariants,
                    "path-predicates" => RefinerChoice::PathPredicates,
                    "both" => RefinerChoice::Both,
                    other => return Err(format!("unknown refiner `{other}`")),
                }
            }
            "--max-refinements" => {
                let v = value_for("--max-refinements")?;
                opts.max_refinements =
                    Some(v.parse().map_err(|_| format!("bad --max-refinements `{v}`"))?);
            }
            "--jobs" => {
                let v = value_for("--jobs")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = n;
            }
            "--json" => opts.json_path = Some(value_for("--json")?),
            "--golden" => opts.golden_path = Some(value_for("--golden")?),
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if !opts.all && opts.files.is_empty() {
        return Err("nothing to do: pass --all and/or .pinv files".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut programs = Vec::new();
    let mut load_failures = 0usize;
    if opts.all {
        programs.extend(corpus_programs());
    }
    for file in &opts.files {
        match load_pinv_file(file) {
            Ok(named) => programs.push(named),
            Err(msg) => {
                eprintln!("error: {msg}");
                load_failures += 1;
            }
        }
    }
    if programs.is_empty() {
        eprintln!("error: no programs to verify");
        return ExitCode::FAILURE;
    }

    let tasks = make_tasks(programs, opts.choice, opts.max_refinements);
    let report = run_batch(tasks, opts.jobs);

    if !opts.quiet {
        print!("{}", report.render_table());
    }
    if let Some(path) = &opts.json_path {
        let text = report.to_json().pretty();
        if path == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.golden_path {
        let text = report.to_golden_json().pretty();
        if path == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let errors = report.tasks.iter().filter(|t| t.verdict == "error").count();
    if errors > 0 || load_failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
