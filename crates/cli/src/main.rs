//! Batch verification driver for the Path Invariants reproduction.
//!
//! Runs corpus programs and/or `.pinv` source files through the configured
//! verification engines (CEGAR with either refiner, bounded model checking,
//! PDR-lite, or the whole portfolio) in parallel, printing a summary table
//! and optionally writing a JSON report (or a golden snapshot for the
//! regression test).  Portfolio runs cross-check verdicts between engines
//! and fail on any disagreement.

use pathinv_cli::differential::DifferentialReport;
use pathinv_cli::trajectory::trajectory_from_cached;
use pathinv_cli::{
    corpus_programs, load_pinv_file, make_tasks, run_batch, EngineChoice, RefinerChoice,
};
use std::process::ExitCode;

const USAGE: &str = "\
pathinv-cli — batch verification over the Path Invariants corpus

USAGE:
    pathinv-cli [OPTIONS] [FILE.pinv ...]
    pathinv-cli trajectory --history [DIR]
    pathinv-cli fuzz [FUZZ OPTIONS]
    pathinv-cli serve [SERVE OPTIONS]
    pathinv-cli serve-smoke [SMOKE OPTIONS]
    pathinv-cli chaos-smoke [CHAOS OPTIONS]

ARGS:
    FILE.pinv ...          front-end source files to verify alongside/instead
                           of the corpus

SUBCOMMANDS:
    trajectory --history   aggregate every committed BENCH_*.json trajectory
                           point (in DIR, default the current directory) into
                           one per-PR summary table
    fuzz                   generate a seeded differential-fuzzing campaign and
                           cross-check every program three ways (engine vs
                           engine, verifier vs concrete interpreter, cached vs
                           uncached); exits 1 on any disagreement
    serve                  run the verification service daemon: line-delimited
                           JSON jobs on a Unix socket (or stdin), fault-isolated
                           workers, per-job deadlines, a crash-safe persistent
                           verdict cache, and graceful SIGTERM/shutdown drain
                           (see DESIGN.md section 14 for the protocol)
    serve-smoke            spawn a real serve daemon and drive the end-to-end
                           robustness scenario against it: cold + warm corpus
                           passes with parity checks, injected malformed and
                           panicking jobs, SIGTERM drain, and a warm restart
                           from the surviving cache journal; exits 1 on any
                           contract violation
    chaos-smoke            spawn a real serve daemon under --isolate process
                           with seeded fault injection (--chaos) and hammer it
                           with hostile probes (aborting, panicking, hogging,
                           spinning engines, malformed lines); hard-fails if
                           the daemon dies, any submission is dropped or
                           duplicated, any verdict diverges from the
                           fresh-process reference, or the drain is unclean

SERVE OPTIONS:
    --socket <PATH>        listen on a Unix socket instead of stdin/stdout
    --cache <PATH>         persist the verdict cache journal at PATH (default:
                           in-memory only)
    --workers <N>          worker threads executing jobs (default: 2)
    --queue <N>            admission-queue capacity; beyond it submissions are
                           rejected with status \"overloaded\" (default: 64)
    --timeout-ms <N>       default per-job deadline for jobs that do not carry
                           their own timeout_ms
    --drain-grace-ms <N>   how long a shutdown drain waits for in-flight jobs
                           before cancelling them (default: 5000)
    --isolate <MODE>       thread (default) runs jobs on worker threads with
                           catch_unwind isolation; process re-execs each job
                           as a child of this binary, hard-killed on deadline,
                           so aborts/stack overflow/OOM become error tasks
                           instead of daemon death
    --retries <N>          re-run a faulted job up to N times with bounded
                           exponential backoff + jitter before reporting the
                           error (default: 1)
    --retry-backoff-ms <N> base backoff delay between retries (default: 50)
    --breaker-threshold <N> consecutive faults that trip an engine's circuit
                           breaker; while open, submissions for that engine
                           fast-fail with status \"quarantined\"; 0 disables
                           (default: 5)
    --breaker-cooldown-ms <N> how long a tripped breaker stays open before a
                           half-open probe is admitted (default: 10000)
    --cache-compact-bytes <N> journal size that triggers a crash-safe
                           compaction rewrite (default: 1048576)
    --chaos seed=<N>       seeded fault injection for chaos testing: random
                           worker exits plus failed/torn/slow cache writes,
                           all derived from the seed

SMOKE OPTIONS:
    --json <PATH>          write the warm-vs-cold benchmark artifact (`-` =
                           stdout)
    --workers <N>          worker threads for the spawned daemon (default: 4)
    --quiet                suppress per-phase progress

CHAOS OPTIONS:
    --seed <N>             seed for the probe deck and the daemon's fault
                           schedule (default: 42); a failing run replays
                           exactly under the same seed
    --json <PATH>          write the availability artifact (`-` = stdout)
    --workers <N>          worker threads for the spawned daemon (default: 2)
    --quiet                suppress per-phase progress

FUZZ OPTIONS:
    --seed <N>             campaign seed (default: 0)
    --count <N>            certified programs to generate (default: 200)
    --jobs <N>             worker threads (default: available parallelism);
                           never affects the report, only wall-clock
    --json <PATH>          write the deterministic JSON report (`-` = stdout)
    --reproducers <DIR>    write each shrunk finding as a .pinv reproducer
    --cache-sample <N>     programs also checked cached-vs-uncached (default: 10)
    --shrink-budget <N>    candidate scenarios tested per finding (default: 48)
    --timeout-ms <N>       per-engine-run deadline; an expired run reports the
                           no-opinion `cancelled` and is never a finding
    --certify              audit every engine certificate with the independent
                           checker; a conclusive verdict without a valid
                           certificate is a finding
    --quiet                suppress the campaign summary

OPTIONS:
    --all                  verify every program in pathinv_ir::corpus
    --engine <WHICH>       cegar | bmc | pdr | portfolio (default: cegar);
                           portfolio runs every engine per program across the
                           worker pool, reports the combined verdict, and
                           exits 1 on any cross-engine verdict disagreement
    --race                 race the four portfolio lanes per program instead
                           of running them all to completion: the first
                           conclusive verdict cancels the other lanes
                           cooperatively; reports the winner and every
                           lane's time-to-first-verdict, and exits 1 if two
                           conclusive lanes ever disagree
    --refiner <WHICH>      path-invariants | path-predicates | both
                           (default: both; applies to cegar tasks)
    --max-refinements <N>  override the refinement bound for cegar tasks
    --beam-workers <N>     worker threads for the invariant-synthesis beam
                           on cegar tasks (default: 1); results are
                           byte-identical at any count, only wall-clock
                           changes
    --jobs <N>             worker threads (default: available parallelism)
    --timeout-ms <N>       per-task wall-clock deadline, enforced by the
                           watchdog through each task's cancellation token;
                           an expired task reports the honest `cancelled`
                           verdict instead of running forever
    --certify              audit every verdict's certificate with the
                           independent pathinv-check crate: conclusive
                           verdicts must carry a certificate the checker
                           validates (inconclusive ones pass vacuously);
                           exits 1 on any rejected or missing certificate
    --json <PATH>          write the full JSON report to PATH (`-` = stdout)
    --golden <PATH>        write the deterministic golden snapshot to PATH
    --no-cache             disable the incremental solver caches on cegar
                           tasks (same verdicts, more solver calls)
    --bless                regenerate every committed golden snapshot
                           (tests/golden/corpus.json, tests/golden/bench.json)
                           and the BENCH_pr10.json trajectory point (including
                           its race, serve, supervision, and certificate-audit
                           sections); run from the repository root
    --quiet                suppress the summary table
    --help                 show this help

EXIT STATUS:
    0  all tasks completed (verdicts may be safe/unsafe/unknown)
    1  at least one task errored, an input file failed to load, a
       portfolio/race run found a cross-engine verdict disagreement, or a
       --certify audit rejected a certificate
    2  usage error
";

struct Options {
    all: bool,
    files: Vec<String>,
    engines: EngineChoice,
    choice: RefinerChoice,
    max_refinements: Option<usize>,
    beam_workers: Option<usize>,
    race: bool,
    certify: bool,
    timeout_ms: Option<u64>,
    jobs: usize,
    json_path: Option<String>,
    golden_path: Option<String>,
    no_cache: bool,
    bless: bool,
    quiet: bool,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        all: false,
        files: Vec::new(),
        engines: EngineChoice::Cegar,
        choice: RefinerChoice::Both,
        max_refinements: None,
        beam_workers: None,
        race: false,
        certify: false,
        timeout_ms: None,
        jobs: default_jobs(),
        json_path: None,
        golden_path: None,
        no_cache: false,
        bless: false,
        quiet: false,
    };
    let mut engine_set = false;
    let mut refiner_set = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--all" => opts.all = true,
            "--quiet" => opts.quiet = true,
            "--engine" => {
                opts.engines = match value_for("--engine")?.as_str() {
                    "cegar" => EngineChoice::Cegar,
                    "bmc" => EngineChoice::Bmc,
                    "pdr" => EngineChoice::Pdr,
                    "portfolio" => EngineChoice::Portfolio,
                    other => return Err(format!("unknown engine `{other}`")),
                };
                engine_set = true;
            }
            "--refiner" => {
                opts.choice = match value_for("--refiner")?.as_str() {
                    "path-invariants" => RefinerChoice::PathInvariants,
                    "path-predicates" => RefinerChoice::PathPredicates,
                    "both" => RefinerChoice::Both,
                    other => return Err(format!("unknown refiner `{other}`")),
                };
                refiner_set = true;
            }
            "--max-refinements" => {
                let v = value_for("--max-refinements")?;
                opts.max_refinements =
                    Some(v.parse().map_err(|_| format!("bad --max-refinements `{v}`"))?);
            }
            "--beam-workers" => {
                let v = value_for("--beam-workers")?;
                let n: usize = v.parse().map_err(|_| format!("bad --beam-workers `{v}`"))?;
                if n == 0 {
                    return Err("--beam-workers must be at least 1".to_string());
                }
                opts.beam_workers = Some(n);
            }
            "--race" => opts.race = true,
            "--certify" => opts.certify = true,
            "--timeout-ms" => {
                let v = value_for("--timeout-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --timeout-ms `{v}`"))?;
                if ms == 0 {
                    return Err("--timeout-ms must be at least 1".to_string());
                }
                opts.timeout_ms = Some(ms);
            }
            "--jobs" => {
                let v = value_for("--jobs")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = n;
            }
            "--json" => opts.json_path = Some(value_for("--json")?),
            "--golden" => opts.golden_path = Some(value_for("--golden")?),
            "--no-cache" => opts.no_cache = true,
            "--bless" => opts.bless = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if matches!(opts.engines, EngineChoice::Bmc | EngineChoice::Pdr) {
        // Refiner-related flags would be silently meaningless without CEGAR
        // tasks; reject them instead of ignoring them.
        if opts.max_refinements.is_some() {
            return Err("--max-refinements only applies to cegar tasks".to_string());
        }
        if refiner_set {
            return Err("--refiner only applies to cegar tasks".to_string());
        }
        if opts.beam_workers.is_some() {
            return Err("--beam-workers only applies to cegar tasks".to_string());
        }
    }
    if opts.race {
        // A race always runs the whole default-configured portfolio; flags
        // that would reshape the lanes are rejected, not silently ignored.
        let conflicting = engine_set
            || refiner_set
            || opts.max_refinements.is_some()
            || opts.beam_workers.is_some()
            || opts.no_cache
            || opts.golden_path.is_some()
            || opts.bless;
        if conflicting {
            return Err("--race runs the default engine portfolio per program; it only combines \
                        with --all, .pinv files, --jobs, --json, --certify, --timeout-ms, and \
                        --quiet"
                .to_string());
        }
    }
    if !opts.all && opts.files.is_empty() && !opts.bless {
        return Err("nothing to do: pass --all, --bless, and/or .pinv files".to_string());
    }
    if opts.bless {
        let conflicting = opts.all
            || !opts.files.is_empty()
            || opts.no_cache
            || opts.timeout_ms.is_some()
            || opts.max_refinements.is_some()
            || opts.choice != RefinerChoice::Both
            || engine_set
            || opts.json_path.is_some()
            || opts.golden_path.is_some();
        if conflicting {
            return Err("--bless runs the full corpus under a fixed configuration (the whole \
                        engine portfolio, plus the cached + uncached cegar trajectory); it only \
                        combines with --jobs and --quiet"
                .to_string());
        }
    }
    Ok(opts)
}

/// Regenerates every committed golden snapshot and the trajectory point.
/// Paths are relative to the current directory, which must be the
/// repository root.
fn bless(jobs: usize) -> ExitCode {
    const CORPUS_GOLDEN: &str = "tests/golden/corpus.json";
    const BENCH_GOLDEN: &str = "tests/golden/bench.json";
    const BENCH_POINT: &str = "BENCH_pr10.json";
    if !std::path::Path::new("tests/golden").is_dir() {
        eprintln!("error: tests/golden/ not found; run --bless from the repository root");
        return ExitCode::FAILURE;
    }
    eprintln!("blessing: verifying the corpus with the whole engine portfolio (certified)...");
    let mut portfolio_tasks =
        make_tasks(corpus_programs(), EngineChoice::Portfolio, RefinerChoice::Both, None);
    for t in &mut portfolio_tasks {
        t.certify = true;
    }
    let portfolio = run_batch(portfolio_tasks, jobs);
    let portfolio_errors = portfolio.tasks.iter().filter(|t| t.verdict == "error").count();
    if portfolio_errors > 0 {
        eprintln!("error: {portfolio_errors} task(s) errored; refusing to bless broken goldens");
        return ExitCode::FAILURE;
    }
    // Blessing pins certificate digests into the goldens; every conclusive
    // verdict must carry a certificate the independent checker accepts.
    let cert_failures: Vec<String> = portfolio
        .tasks
        .iter()
        .filter(|t| matches!(t.cert_verdict.as_str(), "invalid" | "missing" | "unsupported"))
        .map(|t| {
            format!(
                "{}/{}: {} verdict has certificate audit {}: {}",
                t.program_name, t.engine, t.verdict, t.cert_verdict, t.cert_reason
            )
        })
        .collect();
    if !cert_failures.is_empty() {
        eprintln!(
            "error: certificate audit failed; refusing to bless:\n  {}",
            cert_failures.join("\n  ")
        );
        return ExitCode::FAILURE;
    }
    let diff = DifferentialReport::from_batch(&portfolio);
    let disagreements = diff.disagreements();
    if !disagreements.is_empty() {
        eprintln!(
            "error: cross-engine verdict disagreements; refusing to bless:\n  {}",
            disagreements.join("\n  ")
        );
        return ExitCode::FAILURE;
    }
    eprint!("{}", diff.render_summary());
    // The portfolio already contains the cached CEGAR corpus run; reuse its
    // cegar subset as the trajectory's cached side (the counters are
    // deterministic, so this is identical to a fresh run) and only the
    // uncached baseline is verified again.  The subset's wall clock is the
    // serial-equivalent sum of its task times.
    let cegar_tasks: Vec<_> =
        portfolio.tasks.iter().filter(|t| t.engine == "cegar").cloned().collect();
    let cached = pathinv_cli::BatchReport {
        jobs: portfolio.jobs,
        wall_ms_total: cegar_tasks.iter().map(|t| t.wall_ms).sum(),
        tasks: cegar_tasks,
    };
    eprintln!("blessing: verifying the corpus again (uncached cegar baseline)...");
    let mut trajectory = trajectory_from_cached(cached, jobs);
    eprintln!("blessing: racing the portfolio over the corpus (4 lanes per program)...");
    let race = pathinv_cli::race::run_race(corpus_programs(), jobs.min(4), false, None);
    let race_mismatches = race.mismatches();
    if !race_mismatches.is_empty() {
        eprintln!(
            "error: racing lanes disagree; refusing to bless:\n  {}",
            race_mismatches.join("\n  ")
        );
        return ExitCode::FAILURE;
    }
    let race_vs_portfolio = race.mismatches_against_portfolio(&diff);
    if !race_vs_portfolio.is_empty() {
        eprintln!(
            "error: racing verdicts contradict the portfolio; refusing to bless:\n  {}",
            race_vs_portfolio.join("\n  ")
        );
        return ExitCode::FAILURE;
    }
    trajectory.race = Some(race);
    eprintln!("blessing: daemon warm-vs-cold pass over the source corpus...");
    let serve = pathinv_cli::serve::bench_serve(jobs.min(4));
    if !serve.parity_failures.is_empty() {
        eprintln!(
            "error: daemon warm pass contradicts the cold pass; refusing to bless:\n  {}",
            serve.parity_failures.join("\n  ")
        );
        return ExitCode::FAILURE;
    }
    if serve.warm_hits < serve.programs as u64 {
        eprintln!(
            "error: daemon warm pass hit the persistent cache only {} of {} times; \
             refusing to bless",
            serve.warm_hits, serve.programs
        );
        return ExitCode::FAILURE;
    }
    trajectory.serve = Some(serve);
    eprintln!("blessing: supervision pass (process-isolation overhead + seeded chaos)...");
    let mut supervision = pathinv_cli::serve::bench_supervision(jobs.min(4));
    let chaos_opts =
        pathinv_cli::chaos::ChaosOptions { seed: 42, json_path: None, workers: 2, verbose: false };
    match pathinv_cli::chaos::run_chaos(&chaos_opts) {
        Ok(stats) => {
            supervision.chaos_submitted = stats.submitted;
            supervision.chaos_answered = stats.answered;
            supervision.chaos_quarantined = stats.quarantined;
            supervision.availability = stats.availability();
        }
        Err(msg) => {
            eprintln!("error: chaos pass failed; refusing to bless: {msg}");
            return ExitCode::FAILURE;
        }
    }
    trajectory.supervision = Some(supervision);
    let errors = trajectory
        .cached
        .tasks
        .iter()
        .chain(trajectory.uncached.tasks.iter())
        .filter(|t| t.verdict == "error")
        .count();
    if errors > 0 {
        eprintln!("error: {errors} task(s) errored; refusing to bless broken goldens");
        return ExitCode::FAILURE;
    }
    let parity = trajectory.parity_failures();
    if !parity.is_empty() {
        eprintln!(
            "error: cached and uncached runs disagree on observable outcomes:\n  {}",
            parity.join("\n  ")
        );
        return ExitCode::FAILURE;
    }
    let writes = [
        (CORPUS_GOLDEN, portfolio.to_golden_json().pretty()),
        (BENCH_GOLDEN, trajectory.to_golden_json().pretty()),
        (BENCH_POINT, trajectory.to_json().pretty()),
    ];
    for (path, text) in writes {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("blessed {path}");
    }
    eprintln!(
        "solver calls: {} cached vs {} uncached ({:.1}% saved)",
        trajectory.totals.solver_calls,
        trajectory.baseline.solver_calls,
        trajectory.solver_call_reduction() * 100.0
    );
    let valid = trajectory.cached.tasks.iter().filter(|t| t.cert_verdict == "valid").count();
    let vacuous = trajectory.cached.tasks.iter().filter(|t| t.cert_verdict == "vacuous").count();
    let check_ms: f64 = trajectory.cached.tasks.iter().map(|t| t.cert_check_ms).sum();
    eprintln!(
        "certificates (cegar subset): {valid} validated, {vacuous} vacuous, \
         checker time {check_ms:.1} ms"
    );
    ExitCode::SUCCESS
}

/// The `--race` path: race the portfolio lanes per program, print the race
/// table, and hard-fail on any conclusive-lane disagreement or lane error.
fn race_main(
    programs: Vec<(String, pathinv_ir::Program)>,
    opts: &Options,
    load_failures: usize,
) -> ExitCode {
    let report = pathinv_cli::race::run_race(programs, opts.jobs, opts.certify, opts.timeout_ms);
    if !opts.quiet {
        print!("{}", report.render_table());
    }
    if let Some(path) = &opts.json_path {
        let text = report.to_json().pretty();
        if path == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mismatches = report.mismatches();
    for m in &mismatches {
        eprintln!("error: race verdict mismatch: {m}");
    }
    let errors = report.errors();
    for e in &errors {
        eprintln!("error: {e}");
    }
    let cert_failures = if opts.certify { report.certificate_failures() } else { Vec::new() };
    for c in &cert_failures {
        eprintln!("error: {c}");
    }
    if mismatches.is_empty() && errors.is_empty() && cert_failures.is_empty() && load_failures == 0
    {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `trajectory --history` subcommand: render every committed
/// `BENCH_*.json` point in the given directory as one table.
fn trajectory_history(args: &[String]) -> ExitCode {
    let mut dir: Option<String> = None;
    let mut history = false;
    for arg in args {
        match arg.as_str() {
            "--history" => history = true,
            other if other.starts_with('-') => {
                eprintln!("error: unknown trajectory option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => {
                if dir.replace(path.to_string()).is_some() {
                    eprintln!("error: trajectory takes at most one directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    if !history {
        eprintln!("error: the trajectory subcommand requires --history\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let dir = std::path::PathBuf::from(dir.unwrap_or_else(|| ".".to_string()));
    match pathinv_cli::trajectory::collect_history(&dir) {
        Ok(points) if points.is_empty() => {
            eprintln!("error: no BENCH_*.json trajectory points found in {}", dir.display());
            ExitCode::FAILURE
        }
        Ok(points) => {
            print!("{}", pathinv_cli::trajectory::render_history(&points));
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The `fuzz` subcommand: seeded generation plus three-way differential
/// cross-checking; exits 1 on any finding.
fn fuzz_main(args: &[String]) -> ExitCode {
    let mut opts = pathinv_cli::fuzz::FuzzOptions { jobs: default_jobs(), ..Default::default() };
    let mut json_path: Option<String> = None;
    let mut reproducer_dir: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter();
    let mut parse = || -> Result<(), String> {
        while let Some(arg) = it.next() {
            let mut value_for =
                |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
            match arg.as_str() {
                "--seed" => {
                    let v = value_for("--seed")?;
                    opts.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
                }
                "--count" => {
                    let v = value_for("--count")?;
                    opts.count = v.parse().map_err(|_| format!("bad --count `{v}`"))?;
                }
                "--jobs" => {
                    let v = value_for("--jobs")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".to_string());
                    }
                    opts.jobs = n;
                }
                "--cache-sample" => {
                    let v = value_for("--cache-sample")?;
                    opts.cache_sample =
                        v.parse().map_err(|_| format!("bad --cache-sample `{v}`"))?;
                }
                "--shrink-budget" => {
                    let v = value_for("--shrink-budget")?;
                    opts.shrink_budget =
                        v.parse().map_err(|_| format!("bad --shrink-budget `{v}`"))?;
                }
                "--timeout-ms" => {
                    let v = value_for("--timeout-ms")?;
                    let ms: u64 = v.parse().map_err(|_| format!("bad --timeout-ms `{v}`"))?;
                    if ms == 0 {
                        return Err("--timeout-ms must be at least 1".to_string());
                    }
                    opts.timeout_ms = Some(ms);
                }
                "--json" => json_path = Some(value_for("--json")?),
                "--reproducers" => reproducer_dir = Some(value_for("--reproducers")?),
                "--certify" => opts.certify = true,
                "--quiet" => quiet = true,
                other => return Err(format!("unknown fuzz option `{other}`")),
            }
        }
        Ok(())
    };
    if let Err(msg) = parse() {
        eprintln!("error: {msg}\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let report = pathinv_cli::fuzz::run_fuzz(&opts);
    if !quiet {
        print!("{}", report.render_summary());
    }
    if let Some(path) = &json_path {
        let text = report.to_json().pretty();
        if path == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = &reproducer_dir {
        if !report.findings.is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {dir}: {e}");
                return ExitCode::FAILURE;
            }
            for f in &report.findings {
                if f.source.is_empty() {
                    continue;
                }
                let path = format!("{dir}/{}", f.reproducer_name());
                if let Err(e) = std::fs::write(&path, &f.source) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("reproducer written: {path}");
            }
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `serve` subcommand: parse the daemon flags and run until drained.
fn serve_main(args: &[String]) -> ExitCode {
    let mut config = pathinv_cli::serve::ServeConfig::default();
    let mut it = args.iter();
    let mut parse = || -> Result<(), String> {
        while let Some(arg) = it.next() {
            let mut value_for =
                |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
            match arg.as_str() {
                "--socket" => config.socket = Some(value_for("--socket")?.into()),
                "--cache" => config.cache_path = Some(value_for("--cache")?.into()),
                "--workers" => {
                    let v = value_for("--workers")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --workers `{v}`"))?;
                    if n == 0 {
                        return Err("--workers must be at least 1".to_string());
                    }
                    config.workers = n;
                }
                "--queue" => {
                    let v = value_for("--queue")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --queue `{v}`"))?;
                    if n == 0 {
                        return Err("--queue must be at least 1".to_string());
                    }
                    config.queue_capacity = n;
                }
                "--timeout-ms" => {
                    let v = value_for("--timeout-ms")?;
                    let ms: u64 = v.parse().map_err(|_| format!("bad --timeout-ms `{v}`"))?;
                    if ms == 0 {
                        return Err("--timeout-ms must be at least 1".to_string());
                    }
                    config.default_timeout_ms = Some(ms);
                }
                "--drain-grace-ms" => {
                    let v = value_for("--drain-grace-ms")?;
                    config.drain_grace_ms =
                        v.parse().map_err(|_| format!("bad --drain-grace-ms `{v}`"))?;
                }
                "--isolate" => {
                    config.isolation = match value_for("--isolate")?.as_str() {
                        "thread" => pathinv_cli::serve::IsolationMode::Thread,
                        "process" => pathinv_cli::serve::IsolationMode::Process,
                        other => return Err(format!("unknown --isolate mode `{other}`")),
                    };
                }
                "--retries" => {
                    let v = value_for("--retries")?;
                    config.max_retries = v.parse().map_err(|_| format!("bad --retries `{v}`"))?;
                }
                "--retry-backoff-ms" => {
                    let v = value_for("--retry-backoff-ms")?;
                    let ms: u64 = v.parse().map_err(|_| format!("bad --retry-backoff-ms `{v}`"))?;
                    if ms == 0 {
                        return Err("--retry-backoff-ms must be at least 1".to_string());
                    }
                    config.retry_backoff_ms = ms;
                }
                "--breaker-threshold" => {
                    let v = value_for("--breaker-threshold")?;
                    config.breaker_threshold =
                        v.parse().map_err(|_| format!("bad --breaker-threshold `{v}`"))?;
                }
                "--breaker-cooldown-ms" => {
                    let v = value_for("--breaker-cooldown-ms")?;
                    let ms: u64 =
                        v.parse().map_err(|_| format!("bad --breaker-cooldown-ms `{v}`"))?;
                    if ms == 0 {
                        return Err("--breaker-cooldown-ms must be at least 1".to_string());
                    }
                    config.breaker_cooldown_ms = ms;
                }
                "--cache-compact-bytes" => {
                    let v = value_for("--cache-compact-bytes")?;
                    let bytes: u64 =
                        v.parse().map_err(|_| format!("bad --cache-compact-bytes `{v}`"))?;
                    if bytes == 0 {
                        return Err("--cache-compact-bytes must be at least 1".to_string());
                    }
                    config.cache_compact_bytes = Some(bytes);
                }
                "--chaos" => {
                    let v = value_for("--chaos")?;
                    let seed = v
                        .strip_prefix("seed=")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("bad --chaos `{v}` (expected seed=<N>)"))?;
                    config.chaos = Some(pathinv_cli::serve::ChaosConfig::from_seed(seed));
                }
                other => return Err(format!("unknown serve option `{other}`")),
            }
        }
        Ok(())
    };
    if let Err(msg) = parse() {
        eprintln!("error: {msg}\n\n{USAGE}");
        return ExitCode::from(2);
    }
    match pathinv_cli::serve::run_serve(&config) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The `serve-smoke` subcommand: the end-to-end daemon robustness scenario.
fn serve_smoke_main(args: &[String]) -> ExitCode {
    let mut opts = pathinv_cli::smoke::SmokeOptions::default();
    let mut it = args.iter();
    let mut parse = || -> Result<(), String> {
        while let Some(arg) = it.next() {
            let mut value_for =
                |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
            match arg.as_str() {
                "--json" => opts.json_path = Some(value_for("--json")?),
                "--workers" => {
                    let v = value_for("--workers")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --workers `{v}`"))?;
                    if n == 0 {
                        return Err("--workers must be at least 1".to_string());
                    }
                    opts.workers = n;
                }
                "--quiet" => opts.verbose = false,
                other => return Err(format!("unknown serve-smoke option `{other}`")),
            }
        }
        Ok(())
    };
    if let Err(msg) = parse() {
        eprintln!("error: {msg}\n\n{USAGE}");
        return ExitCode::from(2);
    }
    match pathinv_cli::smoke::run_serve_smoke(&opts) {
        Ok(()) => {
            eprintln!("serve-smoke: all contracts held");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: serve-smoke failed: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The `chaos-smoke` subcommand: the seeded fault-injection scenario.
fn chaos_smoke_main(args: &[String]) -> ExitCode {
    let mut opts = pathinv_cli::chaos::ChaosOptions::default();
    let mut it = args.iter();
    let mut parse = || -> Result<(), String> {
        while let Some(arg) = it.next() {
            let mut value_for =
                |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
            match arg.as_str() {
                "--seed" => {
                    let v = value_for("--seed")?;
                    opts.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
                }
                "--json" => opts.json_path = Some(value_for("--json")?),
                "--workers" => {
                    let v = value_for("--workers")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --workers `{v}`"))?;
                    if n == 0 {
                        return Err("--workers must be at least 1".to_string());
                    }
                    opts.workers = n;
                }
                "--quiet" => opts.verbose = false,
                other => return Err(format!("unknown chaos-smoke option `{other}`")),
            }
        }
        Ok(())
    };
    if let Err(msg) = parse() {
        eprintln!("error: {msg}\n\n{USAGE}");
        return ExitCode::from(2);
    }
    match pathinv_cli::chaos::run_chaos(&opts) {
        Ok(stats) => {
            eprintln!(
                "chaos-smoke: all contracts held ({}/{} answered, availability {:.4})",
                stats.answered,
                stats.submitted,
                stats.availability()
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: chaos-smoke failed: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("run-one-job") {
        // The hidden process-isolation entrypoint: one job over pipes.
        // Dispatched before anything else so a supervised child can never
        // fall into the interactive argument parser.
        return ExitCode::from(pathinv_cli::isolate::run_one_job_main() as u8);
    }
    if args.first().map(String::as_str) == Some("trajectory") {
        return trajectory_history(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        return fuzz_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve-smoke") {
        return serve_smoke_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("chaos-smoke") {
        return chaos_smoke_main(&args[1..]);
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.bless {
        return bless(opts.jobs);
    }

    let mut programs = Vec::new();
    let mut load_failures = 0usize;
    if opts.all {
        programs.extend(corpus_programs());
    }
    for file in &opts.files {
        match load_pinv_file(file) {
            Ok(named) => programs.push(named),
            Err(msg) => {
                eprintln!("error: {msg}");
                load_failures += 1;
            }
        }
    }
    if programs.is_empty() {
        eprintln!("error: no programs to verify");
        return ExitCode::FAILURE;
    }

    if opts.race {
        return race_main(programs, &opts, load_failures);
    }

    let mut tasks = make_tasks(programs, opts.engines, opts.choice, opts.max_refinements);
    if opts.certify {
        for t in &mut tasks {
            t.certify = true;
        }
    }
    if opts.timeout_ms.is_some() {
        for t in &mut tasks {
            t.timeout_ms = opts.timeout_ms;
        }
    }
    if opts.no_cache {
        for t in &mut tasks {
            t.disable_cegar_caching();
        }
    }
    if let Some(workers) = opts.beam_workers {
        for t in &mut tasks {
            t.set_beam_workers(workers);
        }
    }
    let report = run_batch(tasks, opts.jobs);
    let differential = opts.engines.is_portfolio().then(|| DifferentialReport::from_batch(&report));

    if !opts.quiet {
        print!("{}", report.render_table());
        if let Some(diff) = &differential {
            print!("{}", diff.render_summary());
        }
    }
    if let Some(path) = &opts.json_path {
        let mut doc = report.to_json();
        if let (Some(diff), pathinv_cli::json::Json::Object(fields)) = (&differential, &mut doc) {
            fields.push(("differential".to_string(), diff.to_json()));
        }
        let text = doc.pretty();
        if path == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.golden_path {
        let text = report.to_golden_json().pretty();
        if path == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let errors = report.tasks.iter().filter(|t| t.verdict == "error").count();
    let disagreements = differential.as_ref().map(|d| d.disagreements().len()).unwrap_or(0);
    if disagreements > 0 {
        eprintln!("error: {disagreements} cross-engine verdict disagreement(s)");
    }
    let mut cert_failures = 0usize;
    if opts.certify {
        for t in &report.tasks {
            if matches!(t.cert_verdict.as_str(), "invalid" | "missing" | "unsupported") {
                eprintln!(
                    "error: {}/{}: {} verdict has certificate audit {}: {}",
                    t.program_name, t.engine, t.verdict, t.cert_verdict, t.cert_reason
                );
                cert_failures += 1;
            }
        }
        if !opts.quiet {
            let valid = report.tasks.iter().filter(|t| t.cert_verdict == "valid").count();
            let vacuous = report.tasks.iter().filter(|t| t.cert_verdict == "vacuous").count();
            let check_ms: f64 = report.tasks.iter().map(|t| t.cert_check_ms).sum();
            println!(
                "certificates: {valid} validated, {vacuous} vacuous, {cert_failures} failed, \
                 checker time {check_ms:.1} ms"
            );
        }
    }
    if errors > 0 || load_failures > 0 || disagreements > 0 || cert_failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
