//! Differential fuzzing harness: the `pathinv-cli fuzz` subcommand.
//!
//! Drives the seeded scenario generator
//! ([`pathinv_bench::generator`]) at scale and cross-checks every generated
//! program three ways:
//!
//! 1. **engine vs engine** — all four portfolio engines run on every
//!    program; a safe-vs-unsafe split is a hard failure;
//! 2. **verifier vs concrete interpreter** — engine verdicts are compared
//!    against the generator's oracle-certified expectation, and every
//!    engine counterexample is validated end-to-end: its path formula must
//!    be satisfiable *over the integers*, and the integral model must
//!    replay concretely into the error location under
//!    [`pathinv_ir::exec::replay`];
//! 3. **cached vs uncached** — a sample of programs re-runs the CEGAR
//!    engine with the incremental caches disabled and compares observable
//!    outcomes.
//!
//! Every disagreement is a [`Finding`].  Findings are shrunk with the
//! vendored proptest greedy minimizer: the scenario is shrunk while the
//! same finding kind still reproduces, and the minimized `.pinv` source is
//! written out as a reproducer.  The whole run is a pure function of
//! `(seed, count)` — worker threads only parallelize independent checks,
//! results are re-sorted by draw index, and the JSON report carries no
//! wall-clock times — so a campaign is byte-identical across `--jobs`
//! values, machines, and reruns.

use crate::json::Json;
use crate::{TaskEngine, DEFAULT_BASELINE_REFINEMENTS};
use pathinv_bench::generator::{
    generate_campaign, realize, Expected, GeneratedProgram, Realized, Scenario,
};
use pathinv_check::{check_certificate, decode_model, Certificate, CheckLimits};
use pathinv_core::{BmcConfig, CegarConfig, PdrConfig, Verdict};
use pathinv_ir::exec::replay;
use pathinv_ir::{path_formula, Path, Program};
use pathinv_smt::{enforce_deadline, IntSatResult, Solver};
use proptest::shrink::minimize;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Node budget for the branch-and-bound integrality check run on every
/// engine counterexample.  Generated programs have short error paths over
/// few variables, so this is generous.
const INTEGRALITY_NODES: usize = 4096;

/// Options for one fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// RNG seed; the campaign is a pure function of `(seed, count)`.
    pub seed: u64,
    /// Number of certified programs to generate and check.
    pub count: usize,
    /// Worker threads for the per-program checks (never affects output).
    pub jobs: usize,
    /// How many programs (from the front of the draw order) also get the
    /// cached-vs-uncached parity check.
    pub cache_sample: usize,
    /// Shrink budget: maximum candidate scenarios tested per finding.
    pub shrink_budget: usize,
    /// Audit every engine certificate with the independent checker: a
    /// conclusive verdict without a valid certificate becomes a finding.
    pub certify: bool,
    /// Per-engine-run wall-clock deadline (`--timeout-ms`), enforced by the
    /// watchdog through each run's [`CancellationToken`](pathinv_core::CancellationToken).  A run that
    /// exceeds it returns the honest `cancelled` — a no-opinion outcome that
    /// can never produce (or mask) a finding.
    pub timeout_ms: Option<u64>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            count: 200,
            jobs: 1,
            cache_sample: 10,
            shrink_budget: 48,
            certify: false,
            timeout_ms: None,
        }
    }
}

/// The classified disagreement kinds, in report order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// The generator contradicted itself (unparseable output or a
    /// constructed-safe scenario that is concretely unsafe).
    GeneratorDefect,
    /// An engine returned `Err` or panicked on a generated-valid program.
    EngineError,
    /// Two engines returned opposite definite verdicts (safe vs unsafe).
    EngineDisagreement,
    /// An engine reported unsafe on an oracle-certified safe program.
    ExpectedSafeViolated,
    /// An engine reported safe on a program with a replayable error trace.
    ExpectedUnsafeViolated,
    /// An engine counterexample whose path formula has no integral model.
    CexIntegrallyInfeasible,
    /// The integrality check on a counterexample ran out of budget.
    CexIntegralityUnknown,
    /// An integral counterexample model that does not replay concretely
    /// into the error location.
    CexReplayDiverged,
    /// A generator-constructed witness failed to replay (oracle defect).
    WitnessReplayFailed,
    /// Cached and uncached CEGAR runs disagree on the verdict.
    CacheParity,
    /// A conclusive verdict without a certificate (`--certify` only).
    CertificateMissing,
    /// A certificate the independent checker rejected, or one attached to
    /// an inconclusive verdict (`--certify` only).
    CertificateRejected,
}

impl FindingKind {
    /// The kebab-case report label.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::GeneratorDefect => "generator-defect",
            FindingKind::EngineError => "engine-error",
            FindingKind::EngineDisagreement => "engine-disagreement",
            FindingKind::ExpectedSafeViolated => "expected-safe-violated",
            FindingKind::ExpectedUnsafeViolated => "expected-unsafe-violated",
            FindingKind::CexIntegrallyInfeasible => "cex-integrally-infeasible",
            FindingKind::CexIntegralityUnknown => "cex-integrality-unknown",
            FindingKind::CexReplayDiverged => "cex-replay-diverged",
            FindingKind::WitnessReplayFailed => "witness-replay-failed",
            FindingKind::CacheParity => "cache-parity",
            FindingKind::CertificateMissing => "certificate-missing",
            FindingKind::CertificateRejected => "certificate-rejected",
        }
    }
}

/// One cross-check disagreement.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Draw index of the program the finding was first observed on.
    pub index: usize,
    /// The disagreement class.
    pub kind: FindingKind,
    /// Name of the (possibly shrunk) program exhibiting the finding.
    pub program: String,
    /// Generator family label, or `"-"` for findings without a scenario.
    pub family: String,
    /// The engine label involved, or `"-"`.
    pub engine: String,
    /// Human-readable elaboration.
    pub detail: String,
    /// The scenario behind the program, when the finding is shrinkable.
    pub scenario: Option<Scenario>,
    /// `.pinv` source of the exhibiting program (shrunk when `shrunk`).
    pub source: String,
    /// Whether greedy shrinking ran to a fixed point on this finding.
    pub shrunk: bool,
}

/// The full campaign report.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// The seed the campaign ran under.
    pub seed: u64,
    /// The requested program count.
    pub count: usize,
    /// Programs actually generated and checked.
    pub generated: usize,
    /// Oracle-certified safe programs among them.
    pub expected_safe: usize,
    /// Oracle-certified unsafe programs among them.
    pub expected_unsafe: usize,
    /// Scenarios skipped because the concrete oracle ran out of budget.
    pub discarded: usize,
    /// Engine runs performed (4 per program, plus cache-parity reruns).
    pub engine_runs: usize,
    /// Engine counterexamples validated through the integral replay chain.
    pub cexes_validated: usize,
    /// Programs that also ran the cached-vs-uncached parity check.
    pub cache_checked: usize,
    /// Engine certificates audited by the independent checker (`--certify`
    /// runs only; one audit per engine verdict, conclusive or not).
    pub certs_audited: usize,
    /// All disagreements, shrunk where possible, in deterministic order.
    pub findings: Vec<Finding>,
}

/// How one engine's verdict is summarized for cross-checking.
#[derive(Clone, Debug)]
enum EngineVerdict {
    Safe,
    Unsafe(Path),
    Unknown(#[allow(dead_code)] String),
    /// The run's `--timeout-ms` deadline expired.  Strictly no-opinion:
    /// never a finding, never evidence for or against any other verdict.
    Cancelled,
    Error(String),
}

impl EngineVerdict {
    fn word(&self) -> &'static str {
        match self {
            EngineVerdict::Safe => "safe",
            EngineVerdict::Unsafe(_) => "unsafe",
            EngineVerdict::Unknown(_) => "unknown",
            EngineVerdict::Cancelled => "cancelled",
            EngineVerdict::Error(_) => "error",
        }
    }
}

/// The fixed engine portfolio every generated program runs through.
fn portfolio() -> Vec<TaskEngine> {
    vec![
        TaskEngine::Cegar(CegarConfig::path_invariants()),
        TaskEngine::Cegar(CegarConfig::path_predicates(DEFAULT_BASELINE_REFINEMENTS)),
        TaskEngine::Bmc(BmcConfig::default()),
        TaskEngine::Pdr(PdrConfig::default()),
    ]
}

fn engine_label(engine: &TaskEngine) -> String {
    match engine {
        TaskEngine::Cegar(_) => format!("{}/{}", engine.engine_name(), engine.refiner_name()),
        _ => engine.engine_name().to_string(),
    }
}

fn run_engine(
    engine: &TaskEngine,
    program: &Program,
    timeout_ms: Option<u64>,
) -> (EngineVerdict, Option<Certificate>) {
    let built = engine.build();
    let token = pathinv_core::CancellationToken::new();
    let _guard =
        timeout_ms.map(|ms| enforce_deadline(&token, std::time::Duration::from_millis(ms)));
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        built.verify_with_cancel(program, &token)
    })) {
        Ok(Ok(result)) => {
            let verdict = match result.verdict {
                Verdict::Safe => EngineVerdict::Safe,
                Verdict::Unsafe { path } => EngineVerdict::Unsafe(path),
                Verdict::Unknown { reason } => EngineVerdict::Unknown(reason),
                // With a deadline configured this is the watchdog having
                // fired; without one no engine may return it, and it is
                // treated as an error so it can never masquerade as a real
                // verdict.
                Verdict::Cancelled if timeout_ms.is_some() => EngineVerdict::Cancelled,
                Verdict::Cancelled => EngineVerdict::Error("cancelled without a token".to_string()),
            };
            (verdict, result.certificate)
        }
        Ok(Err(e)) => (EngineVerdict::Error(e.to_string()), None),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("panic");
            (EngineVerdict::Error(format!("panicked: {msg}")), None)
        }
    }
}

/// Validates one engine counterexample end-to-end: integral satisfiability
/// of the path formula, then concrete replay of the integral model.
fn validate_cex(p: &GeneratedProgram, label: &str, path: &Path, findings: &mut Vec<Finding>) {
    let pf = path_formula(&p.program, path);
    let solver = Solver::new();
    let model = match solver.check_integral(&pf.conjunction(), INTEGRALITY_NODES) {
        Ok(IntSatResult::Sat(model)) => model,
        Ok(IntSatResult::Unsat) => {
            findings.push(p.finding(
                FindingKind::CexIntegrallyInfeasible,
                label,
                format!(
                    "{label} reported a {}-step counterexample whose path formula has no \
                     integral model (rational-only feasibility)",
                    path.len()
                ),
            ));
            return;
        }
        Ok(IntSatResult::Unknown) => {
            findings.push(p.finding(
                FindingKind::CexIntegralityUnknown,
                label,
                format!(
                    "integrality check on the {}-step counterexample of {label} exhausted \
                     its {INTEGRALITY_NODES}-node budget",
                    path.len()
                ),
            ));
            return;
        }
        Err(e) => {
            findings.push(p.finding(
                FindingKind::CexIntegralityUnknown,
                label,
                format!("integrality check on the counterexample of {label} failed: {e}"),
            ));
            return;
        }
    };
    // Decode the model through the same SSA convention every engine's trace
    // certificate uses (inputs at version 0, havoc results at the version
    // each havoc transition bumps its variable to) — one decoder, shared
    // with `pathinv_check`, so fuzzing exercises the exact artifact the
    // certificate checker replays.
    let trace = decode_model(&p.program, path, &pf, &model);
    let outcome = replay(&p.program, &trace.steps, &trace.inputs, &trace.havocs);
    if !outcome.reaches_error() {
        findings.push(p.finding(
            FindingKind::CexReplayDiverged,
            label,
            format!(
                "the integral model of the {}-step counterexample of {label} does not \
                 replay concretely: {outcome:?}",
                path.len()
            ),
        ));
    }
}

/// Builds a [`Finding`] anchored to a generated program.
trait ProgramFinding {
    fn finding(&self, kind: FindingKind, engine: &str, detail: String) -> Finding;
}

impl ProgramFinding for GeneratedProgram {
    fn finding(&self, kind: FindingKind, engine: &str, detail: String) -> Finding {
        Finding {
            index: self.index,
            kind,
            program: self.name.clone(),
            family: self.scenario.family.label().to_string(),
            engine: engine.to_string(),
            detail,
            scenario: Some(self.scenario.clone()),
            source: self.source.clone(),
            shrunk: false,
        }
    }
}

/// Statistics from checking one program.
#[derive(Default)]
struct CheckCounts {
    engine_runs: usize,
    cexes_validated: usize,
    cache_checked: usize,
    certs_audited: usize,
}

/// Audits one engine's certificate against its verdict (`--certify` only):
/// a conclusive verdict must carry a certificate of matching polarity that
/// the independent checker validates; an inconclusive verdict must carry
/// none.
fn audit_engine_certificate(
    p: &GeneratedProgram,
    label: &str,
    verdict: &EngineVerdict,
    certificate: Option<&Certificate>,
    findings: &mut Vec<Finding>,
) {
    let conclusive = matches!(verdict, EngineVerdict::Safe | EngineVerdict::Unsafe(_));
    let Some(cert) = certificate else {
        if conclusive {
            findings.push(p.finding(
                FindingKind::CertificateMissing,
                label,
                format!("{label} concluded {} without emitting a certificate", verdict.word()),
            ));
        }
        return;
    };
    if !conclusive {
        findings.push(p.finding(
            FindingKind::CertificateRejected,
            label,
            format!(
                "{label} attached a {} certificate to a {} verdict",
                cert.kind(),
                verdict.word()
            ),
        ));
        return;
    }
    if cert.claims_safety() != matches!(verdict, EngineVerdict::Safe) {
        findings.push(p.finding(
            FindingKind::CertificateRejected,
            label,
            format!(
                "{label} attached a {} certificate to a {} verdict (polarity mismatch)",
                cert.kind(),
                verdict.word()
            ),
        ));
        return;
    }
    let outcome = check_certificate(&p.program, cert, &CheckLimits::default());
    if !outcome.is_valid() {
        findings.push(p.finding(
            FindingKind::CertificateRejected,
            label,
            format!(
                "the independent checker rejected the {} certificate of {label} ({}): {}",
                cert.kind(),
                outcome.name(),
                outcome.reason().unwrap_or_default()
            ),
        ));
    }
}

/// Runs the full three-way cross-check on one generated program.
fn check_program(
    p: &GeneratedProgram,
    check_cache: bool,
    certify: bool,
    timeout_ms: Option<u64>,
) -> (Vec<Finding>, CheckCounts) {
    let mut findings = Vec::new();
    let mut counts = CheckCounts::default();

    // A constructed witness that does not replay is an oracle defect worth
    // reporting before any engine runs.
    if let Expected::Unsafe(w) = &p.expected {
        let outcome = replay(&p.program, &w.steps, &w.inputs, &w.havocs);
        if !outcome.reaches_error() {
            findings.push(p.finding(
                FindingKind::WitnessReplayFailed,
                "-",
                format!("the generator's construction witness does not replay: {outcome:?}"),
            ));
        }
    }

    let engines = portfolio();
    let verdicts: Vec<(String, EngineVerdict, Option<Certificate>)> = engines
        .iter()
        .map(|e| {
            counts.engine_runs += 1;
            let (verdict, certificate) = run_engine(e, &p.program, timeout_ms);
            (engine_label(e), verdict, certificate)
        })
        .collect();

    if certify {
        for (label, v, cert) in &verdicts {
            counts.certs_audited += 1;
            audit_engine_certificate(p, label, v, cert.as_ref(), &mut findings);
        }
    }

    for (label, v, _) in &verdicts {
        match v {
            EngineVerdict::Error(msg) => {
                findings.push(p.finding(
                    FindingKind::EngineError,
                    label,
                    format!("engine failed on a generated-valid program: {msg}"),
                ));
            }
            EngineVerdict::Unsafe(path) => {
                counts.cexes_validated += 1;
                validate_cex(p, label, path, &mut findings);
                if p.expected == Expected::Safe {
                    findings.push(p.finding(
                        FindingKind::ExpectedSafeViolated,
                        label,
                        format!(
                            "{label} reported unsafe on an oracle-certified safe program \
                             ({}-step counterexample claimed)",
                            path.len()
                        ),
                    ));
                }
            }
            EngineVerdict::Safe => {
                if let Expected::Unsafe(w) = &p.expected {
                    findings.push(p.finding(
                        FindingKind::ExpectedUnsafeViolated,
                        label,
                        format!(
                            "{label} reported safe but a concrete witness of {} steps \
                             replays into the error location",
                            w.steps.len()
                        ),
                    ));
                }
            }
            EngineVerdict::Unknown(_) | EngineVerdict::Cancelled => {}
        }
    }

    // Engine-vs-engine: any safe verdict alongside any unsafe verdict.
    let safe_engine = verdicts.iter().find(|(_, v, _)| matches!(v, EngineVerdict::Safe));
    let unsafe_engine = verdicts.iter().find(|(_, v, _)| matches!(v, EngineVerdict::Unsafe(_)));
    if let (Some((sl, _, _)), Some((ul, uv, _))) = (safe_engine, unsafe_engine) {
        findings.push(p.finding(
            FindingKind::EngineDisagreement,
            &format!("{sl} vs {ul}"),
            format!("{sl} proved the program safe while {ul} reported {}", uv.word()),
        ));
    }

    if check_cache {
        counts.cache_checked = 1;
        let mut uncached_config = CegarConfig::path_invariants();
        uncached_config.caching = false;
        counts.engine_runs += 1;
        let cached = &verdicts[0].1;
        let (uncached, _) = run_engine(&TaskEngine::Cegar(uncached_config), &p.program, timeout_ms);
        // A deadline firing on one side but not the other says nothing about
        // cache parity — cancelled is no-opinion on both sides.
        let either_cancelled = matches!(cached, EngineVerdict::Cancelled)
            || matches!(uncached, EngineVerdict::Cancelled);
        if !either_cancelled && cached.word() != uncached.word() {
            findings.push(p.finding(
                FindingKind::CacheParity,
                "cegar/path-invariants",
                format!(
                    "cached and uncached runs disagree: {} vs {}",
                    cached.word(),
                    uncached.word()
                ),
            ));
        }
    }

    (findings, counts)
}

/// Whether realizing `scenario` still reproduces a finding of `kind`.
fn still_fails(scenario: &Scenario, index: usize, kind: FindingKind, check_cache: bool) -> bool {
    match realize(scenario, index) {
        Realized::Kept(p) => {
            // Shrinking replays without a deadline: cancellation is timing-
            // dependent and never itself a finding, so reproduction must not
            // hinge on whether the watchdog happens to fire.
            let (findings, _) = check_program(&p, check_cache, certify_for(kind), None);
            findings.iter().any(|f| f.kind == kind)
        }
        Realized::Defect(_) => kind == FindingKind::GeneratorDefect,
        Realized::Discarded(_) => false,
    }
}

/// Whether reproducing a finding of `kind` requires the certificate audit.
fn certify_for(kind: FindingKind) -> bool {
    matches!(kind, FindingKind::CertificateMissing | FindingKind::CertificateRejected)
}

/// Shrinks each distinct `(kind, family, engine)` finding to a minimal
/// scenario; duplicates of an already-shrunk group are dropped.
fn shrink_findings(findings: Vec<Finding>, budget: usize) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    let mut seen: Vec<(FindingKind, String, String)> = Vec::new();
    for finding in findings {
        let group = (finding.kind, finding.family.clone(), finding.engine.clone());
        if seen.contains(&group) {
            continue;
        }
        seen.push(group);
        let Some(scenario) = finding.scenario.clone() else {
            out.push(finding);
            continue;
        };
        let index = finding.index;
        let kind = finding.kind;
        let check_cache = kind == FindingKind::CacheParity;
        let (min, stats) = minimize(scenario, |s| still_fails(s, index, kind, check_cache), budget);
        let mut shrunk = finding;
        shrunk.shrunk = !stats.budget_exhausted;
        if let Realized::Kept(p) = realize(&min, index) {
            let (replayed, _) = check_program(&p, check_cache, certify_for(kind), None);
            let engine = shrunk.engine.clone();
            if let Some(f) = replayed
                .iter()
                .find(|f| f.kind == kind && f.engine == engine)
                .or_else(|| replayed.iter().find(|f| f.kind == kind))
            {
                shrunk = Finding { index, shrunk: shrunk.shrunk, ..f.clone() };
            }
        }
        shrunk.scenario = Some(min);
        out.push(shrunk);
    }
    out
}

/// Runs a full campaign: generate, cross-check in parallel, shrink.
///
/// Deterministic in `(seed, count, cache_sample, shrink_budget)`: `jobs`
/// only changes scheduling, never the report.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let campaign = generate_campaign(opts.seed, opts.count);
    let mut findings: Vec<Finding> = campaign
        .defects
        .iter()
        .map(|detail| Finding {
            index: 0,
            kind: FindingKind::GeneratorDefect,
            program: "-".to_string(),
            family: "-".to_string(),
            engine: "-".to_string(),
            detail: detail.clone(),
            scenario: None,
            source: String::new(),
            shrunk: false,
        })
        .collect();

    let expected_safe = campaign.programs.iter().filter(|p| p.expected == Expected::Safe).count();
    let mut report = FuzzReport {
        seed: opts.seed,
        count: opts.count,
        generated: campaign.programs.len(),
        expected_safe,
        expected_unsafe: campaign.programs.len() - expected_safe,
        discarded: campaign.discarded.len(),
        engine_runs: 0,
        cexes_validated: 0,
        cache_checked: 0,
        certs_audited: 0,
        findings: Vec::new(),
    };

    let cache_cutoff = opts.cache_sample.min(campaign.programs.len());
    let queue: Mutex<VecDeque<(usize, &GeneratedProgram)>> =
        Mutex::new(campaign.programs.iter().enumerate().collect());
    let results: Mutex<Vec<(usize, Vec<Finding>, CheckCounts)>> = Mutex::new(Vec::new());
    let jobs = opts.jobs.max(1).min(campaign.programs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let Some((pos, p)) = queue.lock().expect("fuzz queue poisoned").pop_front() else {
                    break;
                };
                let (found, counts) =
                    check_program(p, pos < cache_cutoff, opts.certify, opts.timeout_ms);
                results.lock().expect("fuzz sink poisoned").push((pos, found, counts));
            });
        }
    });
    let mut results = results.into_inner().expect("fuzz sink poisoned");
    results.sort_by_key(|(pos, _, _)| *pos);
    for (_, found, counts) in results {
        findings.extend(found);
        report.engine_runs += counts.engine_runs;
        report.cexes_validated += counts.cexes_validated;
        report.cache_checked += counts.cache_checked;
        report.certs_audited += counts.certs_audited;
    }
    findings.sort_by(|a, b| {
        (a.index, a.kind, a.engine.as_str()).cmp(&(b.index, b.kind, b.engine.as_str()))
    });
    report.findings = shrink_findings(findings, opts.shrink_budget);
    report
}

impl Finding {
    /// The JSON rendering of one finding (no wall times, fully
    /// deterministic).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("kind", Json::Str(self.kind.label().to_string())),
            ("program", Json::Str(self.program.clone())),
            ("family", Json::Str(self.family.clone())),
            ("engine", Json::Str(self.engine.clone())),
            ("detail", Json::Str(self.detail.clone())),
            ("shrunk", Json::Bool(self.shrunk)),
            ("source", Json::Str(self.source.clone())),
        ])
    }

    /// A stable file name for the reproducer of this finding.
    pub fn reproducer_name(&self) -> String {
        let engine: String =
            self.engine.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
        format!("{}_{}_{engine}.pinv", self.kind.label().replace('-', "_"), self.family)
    }
}

impl FuzzReport {
    /// The deterministic JSON rendering of the whole campaign.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Int(crate::SCHEMA_VERSION)),
            ("seed", Json::Int(self.seed as i64)),
            ("count", Json::Int(self.count as i64)),
            ("generated", Json::Int(self.generated as i64)),
            ("expected_safe", Json::Int(self.expected_safe as i64)),
            ("expected_unsafe", Json::Int(self.expected_unsafe as i64)),
            ("discarded", Json::Int(self.discarded as i64)),
            ("engine_runs", Json::Int(self.engine_runs as i64)),
            ("cexes_validated", Json::Int(self.cexes_validated as i64)),
            ("cache_checked", Json::Int(self.cache_checked as i64)),
            ("certs_audited", Json::Int(self.certs_audited as i64)),
            ("findings", Json::Array(self.findings.iter().map(Finding::to_json).collect())),
        ])
    }

    /// A short human-readable summary.
    pub fn render_summary(&self) -> String {
        let mut out = format!(
            "fuzz: seed {} generated {} programs ({} safe, {} unsafe, {} discarded); \
             {} engine runs, {} counterexamples validated, {} cache-parity checks, \
             {} certificates audited\n",
            self.seed,
            self.generated,
            self.expected_safe,
            self.expected_unsafe,
            self.discarded,
            self.engine_runs,
            self.cexes_validated,
            self.cache_checked,
            self.certs_audited,
        );
        if self.findings.is_empty() {
            out.push_str("fuzz: no disagreements\n");
        } else {
            out.push_str(&format!("fuzz: {} finding(s):\n", self.findings.len()));
            for f in &self.findings {
                out.push_str(&format!(
                    "  [{}] {} ({}, {}): {}\n",
                    f.kind.label(),
                    f.program,
                    f.family,
                    f.engine,
                    f.detail
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_kinds_have_distinct_labels() {
        let kinds = [
            FindingKind::GeneratorDefect,
            FindingKind::EngineError,
            FindingKind::EngineDisagreement,
            FindingKind::ExpectedSafeViolated,
            FindingKind::ExpectedUnsafeViolated,
            FindingKind::CexIntegrallyInfeasible,
            FindingKind::CexIntegralityUnknown,
            FindingKind::CexReplayDiverged,
            FindingKind::WitnessReplayFailed,
            FindingKind::CacheParity,
            FindingKind::CertificateMissing,
            FindingKind::CertificateRejected,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn small_campaign_is_deterministic_across_jobs() {
        let base = FuzzOptions { seed: 11, count: 8, cache_sample: 2, ..FuzzOptions::default() };
        let a = run_fuzz(&FuzzOptions { jobs: 1, ..base.clone() });
        let b = run_fuzz(&FuzzOptions { jobs: 3, ..base });
        assert_eq!(a.to_json().pretty(), b.to_json().pretty());
    }

    #[test]
    fn certified_campaign_audits_every_engine_verdict() {
        let opts = FuzzOptions {
            seed: 7,
            count: 6,
            cache_sample: 0,
            certify: true,
            ..FuzzOptions::default()
        };
        let report = run_fuzz(&opts);
        // One audit per portfolio engine per generated program.
        assert_eq!(report.certs_audited, report.generated * 4);
        let cert_findings: Vec<&Finding> =
            report.findings.iter().filter(|f| certify_for(f.kind)).collect();
        assert!(cert_findings.is_empty(), "{cert_findings:?}");
    }
}
