//! The deterministic benchmark-trajectory experiment (`bench`): verifies
//! the full corpus under both refiners, cached and uncached, and emits the
//! `BENCH_pr10.json` trajectory point.
//!
//! This is the CI entry point of the perf trajectory: the `bench-smoke` job
//! runs it with `--check tests/golden/bench.json` (fails the build when the
//! report schema or any deterministic field — verdict, refinement count,
//! solver-call and cache counters — drifts from the committed golden) and
//! `--compare-previous BENCH_pr9.json` (fails on any per-task regression of
//! a gated counter — `solver_calls`, `simplex_calls`, the refine-phase cold
//! simplex calls `phases.refine_simplex_calls`, and the synthesis frontier
//! `synth_branches_explored` — against the committed previous trajectory
//! point; wall-clock stays informational, and counters the previous point's
//! schema predates are not gated).  Local regeneration after an intentional
//! change is `cargo run --release -p pathinv-cli -- --bless`.

use crate::json::{self, Json};
use crate::trajectory::{run_trajectory, TrajectoryReport};

/// Configuration of one `bench` experiment run.
#[derive(Clone, Debug, Default)]
pub struct BenchConfig {
    /// Worker threads (defaults to available parallelism).
    pub jobs: Option<usize>,
    /// Where to write the full trajectory report (`BENCH_pr10.json`).
    pub bench_json: Option<String>,
    /// Where to write the deterministic golden projection.
    pub bench_golden: Option<String>,
    /// A committed golden to diff the run against; any drift is an error.
    pub check: Option<String>,
    /// A committed *previous* trajectory point (`BENCH_pr9.json`); any
    /// per-task regression of a gated counter (`solver_calls`,
    /// `simplex_calls`, `phases.refine_simplex_calls`,
    /// `synth_branches_explored`) against it is an error.
    pub compare_previous: Option<String>,
}

/// Runs the trajectory experiment, writes the requested artifacts, and
/// diffs against the committed golden when asked.
///
/// # Errors
///
/// Returns a human-readable message when a task errors, a file cannot be
/// written, the golden cannot be read, or the run drifts from the golden.
pub fn run_bench(config: &BenchConfig) -> Result<TrajectoryReport, String> {
    let jobs = config
        .jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    println!("verifying the corpus twice on {jobs} worker(s): cached, then uncached baseline");
    let trajectory = run_trajectory(jobs);
    print!("{}", trajectory.cached.render_table());
    let errors = trajectory
        .cached
        .tasks
        .iter()
        .chain(trajectory.uncached.tasks.iter())
        .filter(|t| t.verdict == "error")
        .count();
    if errors > 0 {
        return Err(format!("{errors} task(s) errored; the trajectory point is not valid"));
    }
    let parity = trajectory.parity_failures();
    if !parity.is_empty() {
        return Err(format!(
            "cached and uncached runs disagree on observable outcomes:\n  {}",
            parity.join("\n  ")
        ));
    }
    println!(
        "solver calls: {} cached vs {} uncached baseline ({:.1}% saved; \
         query hit rate {:.1}%, post-memo hit rate {:.1}%)",
        trajectory.totals.solver_calls,
        trajectory.baseline.solver_calls,
        trajectory.solver_call_reduction() * 100.0,
        rate(trajectory.totals.query_cache_hits, trajectory.totals.smt_queries) * 100.0,
        rate(trajectory.totals.post_cache_hits, trajectory.totals.post_queries) * 100.0,
    );
    println!(
        "simplex: {} cold solves + {} warm incremental re-checks (cached run)",
        trajectory.totals.simplex_calls, trajectory.totals.simplex_warm_checks,
    );
    if let Some(path) = &config.bench_json {
        std::fs::write(path, trajectory.to_json().pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &config.bench_golden {
        std::fs::write(path, trajectory.to_golden_json().pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &config.check {
        let golden = load_golden(path)?;
        let failures = trajectory.check_against_golden(&golden);
        if !failures.is_empty() {
            return Err(format!(
                "bench trajectory drifted from {path}:\n  {}\n\nIf the change is intentional, \
                 regenerate the goldens with\n  cargo run --release -p pathinv-cli -- --bless",
                failures.join("\n  ")
            ));
        }
        println!("no drift against {path}");
    }
    if let Some(path) = &config.compare_previous {
        let previous = load_golden(path)?;
        let regressions = counter_regressions(&previous, &trajectory.to_json());
        if !regressions.is_empty() {
            return Err(format!(
                "per-task counter regression against the previous trajectory point {path}:\n  {}",
                regressions.join("\n  ")
            ));
        }
        println!(
            "no per-task regression of the gated counters (solver_calls, simplex_calls, \
             refine_simplex_calls, synth_branches_explored) against {path}"
        );
    }
    Ok(trajectory)
}

/// Compares two full trajectory documents task by task (matched on
/// `(program, refiner)`) and reports every *increase* of a gated counter —
/// `solver_calls`, `simplex_calls`, the refine-phase cold simplex calls
/// (`phases.refine_simplex_calls`), or the synthesis frontier size
/// (`synth_branches_explored`) — in `current` over `previous`, plus any
/// task the current run no longer produces.  New tasks (absent from the
/// previous point), wall-clock changes, and counters the previous point's
/// schema does not carry are not regressions.
///
/// Tasks whose verdict *improved* — `unknown` previously, concluded
/// (`safe`/`unsafe`) now — are exempt from counter gating: a task that
/// used to give up and now finishes legitimately does more solver work,
/// and counting that as a regression would forbid exactly the improvement
/// the trajectory exists to measure.  (Verdict *regressions* are caught by
/// the golden corpus snapshot, not this gate.)
///
/// Similarly, across the bench-schema v4 boundary (the point where
/// counterexamples are certified integral before a task concludes
/// `unsafe`), tasks that are `unsafe` in *both* points are exempt: the
/// certification's solver calls are a class of work the pre-v4 baseline
/// never performed, so a pre-v4 point has no like-for-like counter to
/// regress against on exactly those tasks.  Once both points are v4+, the
/// exemption disappears and `unsafe` tasks gate again.
pub fn counter_regressions(previous: &Json, current: &Json) -> Vec<String> {
    /// A gated counter: its report label and the path to read it from a
    /// task object (top-level field, or one nested under `phases`).
    const GATED: [(&str, &[&str]); 4] = [
        ("solver_calls", &["solver_calls"]),
        ("simplex_calls", &["simplex_calls"]),
        ("refine_simplex_calls", &["phases", "refine_simplex_calls"]),
        ("synth_branches_explored", &["synth_branches_explored"]),
    ];
    fn lookup(task: &Json, path: &[&str]) -> Option<i64> {
        let mut v = task;
        for key in path {
            v = v.get(key)?;
        }
        v.as_int()
    }
    let tasks = |doc: &Json| -> Vec<Json> {
        doc.get("tasks").and_then(Json::as_array).map(<[Json]>::to_vec).unwrap_or_default()
    };
    let key = |t: &Json| {
        (
            t.get("program").and_then(Json::as_str).unwrap_or("?").to_string(),
            t.get("refiner").and_then(Json::as_str).unwrap_or("?").to_string(),
        )
    };
    let bench_schema =
        |doc: &Json| -> i64 { doc.get("bench_schema_version").and_then(Json::as_int).unwrap_or(0) };
    let crosses_certification_boundary = bench_schema(previous) < 4 && bench_schema(current) >= 4;
    let current_tasks = tasks(current);
    let mut out = Vec::new();
    for prev in tasks(previous) {
        let k = key(&prev);
        let Some(cur) = current_tasks.iter().find(|t| key(t) == k) else {
            out.push(format!("{k:?}: in the previous trajectory point but not produced"));
            continue;
        };
        let verdict = |t: &Json| t.get("verdict").and_then(Json::as_str).unwrap_or("?").to_string();
        let (was_verdict, now_verdict) = (verdict(&prev), verdict(cur));
        if was_verdict == "unknown" && matches!(now_verdict.as_str(), "safe" | "unsafe") {
            // The task used to give up and now concludes: extra solver work
            // is the price of the better verdict, not a regression.
            continue;
        }
        if crosses_certification_boundary && was_verdict == "unsafe" && now_verdict == "unsafe" {
            // The previous point predates integral counterexample
            // certification, whose solver calls land exactly on tasks that
            // conclude `unsafe`; there is no like-for-like baseline.
            continue;
        }
        for (label, path) in GATED {
            // A counter the previous point's schema predates cannot have a
            // baseline to regress against; skip it rather than treating the
            // missing value as zero.
            let Some(was) = lookup(&prev, path) else { continue };
            let now = lookup(cur, path).unwrap_or(0);
            if now > was {
                out.push(format!("{k:?}: {label} regressed {was} -> {now}"));
            }
        }
    }
    out
}

/// Reads and parses a committed golden document.
///
/// # Errors
///
/// Returns a readable message when the file is missing or malformed.
pub fn load_golden(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn rate(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The error paths of golden loading produce readable messages, not
    /// panics.  (The full-corpus happy path is exercised by CI's
    /// bench-smoke job; running it here would double the suite wall clock.)
    #[test]
    fn missing_and_malformed_goldens_are_errors_not_panics() {
        let dir = std::env::temp_dir().join("pathinv-bench-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{ not json").unwrap();
        for path in ["/nonexistent/golden.json", bad.to_str().unwrap()] {
            let err = load_golden(path).unwrap_err();
            assert!(err.contains(path), "{err}");
        }
        let good = dir.join("good.json");
        std::fs::write(&good, "{\"bench_schema_version\": 1}").unwrap();
        let doc = load_golden(good.to_str().unwrap()).unwrap();
        assert_eq!(doc.get("bench_schema_version").and_then(Json::as_int), Some(1));
    }

    /// The previous-point comparison flags exactly the per-task increases of
    /// the gated counters, tolerates improvements, new tasks, and counters
    /// the previous schema predates, and reports tasks that vanished.
    #[test]
    fn counter_regression_gate_flags_increases_only() {
        let previous = json::parse(
            r#"{"tasks": [
                {"program": "A", "refiner": "path-invariants",
                 "solver_calls": 100, "simplex_calls": 500, "wall_ms": 10.0,
                 "synth_branches_explored": 40,
                 "phases": {"refine_simplex_calls": 7}},
                {"program": "B", "refiner": "path-predicates",
                 "solver_calls": 50, "simplex_calls": 80, "wall_ms": 5.0},
                {"program": "GONE", "refiner": "path-invariants",
                 "solver_calls": 1, "simplex_calls": 1, "wall_ms": 1.0},
                {"program": "IMPROVED", "refiner": "path-invariants",
                 "verdict": "unknown", "solver_calls": 10, "simplex_calls": 10}
            ]}"#,
        )
        .unwrap();
        let current = json::parse(
            r#"{"tasks": [
                {"program": "A", "refiner": "path-invariants",
                 "solver_calls": 90, "simplex_calls": 501, "wall_ms": 99.0,
                 "synth_branches_explored": 41,
                 "phases": {"refine_simplex_calls": 3}},
                {"program": "B", "refiner": "path-predicates",
                 "solver_calls": 50, "simplex_calls": 40, "wall_ms": 50.0,
                 "synth_branches_explored": 9999,
                 "phases": {"refine_simplex_calls": 9999}},
                {"program": "NEW", "refiner": "path-invariants",
                 "solver_calls": 9999, "simplex_calls": 9999, "wall_ms": 1.0},
                {"program": "IMPROVED", "refiner": "path-invariants",
                 "verdict": "safe", "solver_calls": 500, "simplex_calls": 500}
            ]}"#,
        )
        .unwrap();
        let regressions = counter_regressions(&previous, &current);
        assert_eq!(regressions.len(), 3, "{regressions:?}");
        assert!(
            regressions.iter().any(|r| r.contains('A') && r.contains("simplex_calls")),
            "{regressions:?}"
        );
        // The frontier counter regressed on A (40 -> 41) and is gated; on B
        // the previous point predates the counter, so 9999 is not gated.
        assert!(
            regressions.iter().any(|r| r.contains('A') && r.contains("synth_branches_explored")),
            "{regressions:?}"
        );
        assert!(
            !regressions.iter().any(|r| r.contains('B')),
            "counters absent from the previous schema must not gate: {regressions:?}"
        );
        assert!(regressions.iter().any(|r| r.contains("GONE")), "{regressions:?}");
        // A task that used to be unknown and now concludes is exempt, even
        // though every gated counter grew.
        assert!(
            !regressions.iter().any(|r| r.contains("IMPROVED")),
            "verdict improvements must not gate: {regressions:?}"
        );
        // Identical documents never regress (wall-clock is informational).
        assert!(counter_regressions(&previous, &previous).is_empty());
    }

    /// Across the bench-schema v4 boundary (integral counterexample
    /// certification), `unsafe` tasks are exempt from counter gating; once
    /// both points are v4, the exemption disappears, and it never covers
    /// non-`unsafe` tasks.
    #[test]
    fn certification_boundary_exempts_unsafe_tasks_once() {
        let pre_v4 = json::parse(
            r#"{"bench_schema_version": 3, "tasks": [
                {"program": "BUG", "refiner": "path-invariants",
                 "verdict": "unsafe", "solver_calls": 25, "simplex_calls": 32},
                {"program": "OK", "refiner": "path-invariants",
                 "verdict": "safe", "solver_calls": 10, "simplex_calls": 10}
            ]}"#,
        )
        .unwrap();
        let v4 = json::parse(
            r#"{"bench_schema_version": 4, "tasks": [
                {"program": "BUG", "refiner": "path-invariants",
                 "verdict": "unsafe", "solver_calls": 26, "simplex_calls": 35},
                {"program": "OK", "refiner": "path-invariants",
                 "verdict": "safe", "solver_calls": 11, "simplex_calls": 10}
            ]}"#,
        )
        .unwrap();
        let regressions = counter_regressions(&pre_v4, &v4);
        assert!(
            !regressions.iter().any(|r| r.contains("BUG")),
            "certification cost on unsafe tasks must not gate across the boundary: {regressions:?}"
        );
        assert!(
            regressions.iter().any(|r| r.contains("OK") && r.contains("solver_calls")),
            "safe tasks still gate across the boundary: {regressions:?}"
        );
        // v4 vs v4: the exemption is spent, unsafe tasks gate normally.
        let v4_worse = json::parse(
            r#"{"bench_schema_version": 4, "tasks": [
                {"program": "BUG", "refiner": "path-invariants",
                 "verdict": "unsafe", "solver_calls": 27, "simplex_calls": 35}
            ]}"#,
        )
        .unwrap();
        let later = counter_regressions(&v4, &v4_worse);
        assert!(later.iter().any(|r| r.contains("BUG") && r.contains("solver_calls")), "{later:?}");
    }
}
