//! # pathinv-cli — batch corpus verification harness
//!
//! Library half of the `pathinv-cli` binary: it assembles the benchmark
//! task list (every program in [`pathinv_ir::corpus`] plus any `.pinv`
//! source files), runs each (program, engine) pair across a pool of worker
//! threads, and renders the results as a JSON report and a human-readable
//! summary table.
//!
//! Three verification engines are available behind the
//! [`VerificationEngine`](pathinv_core::VerificationEngine) abstraction —
//! CEGAR (with either refiner), bounded model checking, and PDR-lite — and
//! the [`EngineChoice::Portfolio`] selection runs all of them per program,
//! feeding the [`differential`] harness that hard-fails on any cross-engine
//! verdict disagreement.
//!
//! The JSON report doubles as the substrate for golden-result regression
//! testing: `tests/corpus_regression.rs` (in the workspace root package)
//! re-runs the full portfolio over the corpus and diffs the deterministic
//! fields — verdict, refinement count, solver calls, cache hits, and the
//! per-engine exploration counters per task — against the committed
//! `tests/golden/corpus.json`, so a PR that flips a verdict, blows up
//! refinement counts, or regresses solver-call discipline fails tier-1
//! immediately.  The [`trajectory`] module builds the benchmark trajectory
//! point (`BENCH_pr10.json`) on the same harness.
//!
//! Every conclusive verdict additionally carries a certificate (an
//! inductive invariant map, a bounded-unroll claim, or a concrete trace)
//! whose kind, size, and canonical digest are reported — and pinned by the
//! golden snapshot.  Under `--certify` the independent `pathinv-check`
//! crate audits each certificate and the report gains the audit verdict and
//! check time per task.

#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod differential;
pub mod experiments;
pub mod fuzz;
pub mod isolate;
pub mod race;
pub mod serve;
pub mod smoke;
pub mod trajectory;

use pathinv_core::{BmcConfig, CegarConfig, PdrConfig, RefinerKind, VerifierStats};
use pathinv_ir::{corpus, parse_program, Program};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

// The report schema lives in `pathinv-report` (shared with the service
// daemon); the engine/job abstraction lives in `pathinv-core` (shared with
// every harness).  Both are re-exported under their historical `pathinv-cli`
// paths so downstream callers and tests are unaffected by the extraction.
pub use pathinv_core::{refiner_name, EngineSpec as TaskEngine, NO_REFINER};
pub use pathinv_report::{engine_rank, json, TaskReport, SCHEMA_VERSION};

use json::Json;

/// Default refinement bound for the finite-path baseline, which is expected
/// to diverge on the interesting programs; a modest bound keeps batch runs
/// fast while still distinguishing "settled quickly" from "gave up".
pub const DEFAULT_BASELINE_REFINEMENTS: usize = 6;

/// One unit of work: a named program verified with one engine.
pub struct BatchTask {
    /// Report name of the program (corpus name or file path).
    pub program_name: String,
    /// The engine (and configuration) to run.
    pub engine: TaskEngine,
    /// The program itself.
    pub program: Program,
    /// Whether to audit the emitted certificate with the independent
    /// checker after the run (`--certify`).  Certificate kind, size, and
    /// digest are reported either way; only the audit itself is gated,
    /// since it costs extra wall-clock.
    pub certify: bool,
    /// Per-task wall-clock deadline in milliseconds (`--timeout-ms`),
    /// enforced through the watchdog + the
    /// [`CancellationToken`](pathinv_core::CancellationToken) path the
    /// service uses; an expired
    /// task reports the honest `"cancelled"` verdict.
    pub timeout_ms: Option<u64>,
}

impl BatchTask {
    /// Disables the incremental caches on CEGAR tasks (`--no-cache`).  A
    /// no-op for BMC, whose context is uncached by design, and for PDR,
    /// whose query cache is integral to obligation retries.
    pub fn disable_cegar_caching(&mut self) {
        if let TaskEngine::Cegar(config) = &mut self.engine {
            config.caching = false;
        }
    }

    /// Sets the parallel-beam worker count on CEGAR tasks
    /// (`--beam-workers`).  The parallel beam merges deterministically, so
    /// verdicts, invariants, and golden counters are unchanged at any
    /// worker count; only wall-clock (and the non-golden work counters of
    /// synthesis) can differ.  A no-op for BMC and PDR.
    pub fn set_beam_workers(&mut self, workers: usize) {
        if let TaskEngine::Cegar(config) = &mut self.engine {
            config.synth_workers = workers.max(1);
        }
    }

    /// The [`pathinv_core::JobSpec`] this task executes (engine plus
    /// deadline) — the same spec shape the service daemon runs.
    pub fn job_spec(&self) -> pathinv_core::JobSpec {
        pathinv_core::JobSpec::with_timeout_ms(self.engine.clone(), self.timeout_ms)
    }
}

/// The outcome of a whole batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Worker threads used.
    pub jobs: usize,
    /// Per-task results, sorted by (program name, engine, refiner) so the
    /// report is stable regardless of scheduling order.
    pub tasks: Vec<TaskReport>,
    /// End-to-end wall clock for the whole batch, in milliseconds.
    pub wall_ms_total: f64,
}

/// The committed sample program `programs/array_reset_bug.pinv`, embedded so
/// that the corpus (and therefore the golden regression) always exercises
/// it.
pub const ARRAY_RESET_BUG_SRC: &str = include_str!("../../../programs/array_reset_bug.pinv");

/// Minimized fuzzer reproducer for the rational-relaxation bug
/// (`programs/rational_cex_parity.pinv`): integer-safe, but its error path is
/// rationally satisfiable at a half-integral input.
pub const RATIONAL_CEX_PARITY_SRC: &str =
    include_str!("../../../programs/rational_cex_parity.pinv");

/// Loop-free distillation of the same bug
/// (`programs/half_integer_bug.pinv`): `assert(x + x != 1)` only fails at
/// x = 1/2, so every engine must prove it safe or say unknown.
pub const HALF_INTEGER_BUG_SRC: &str = include_str!("../../../programs/half_integer_bug.pinv");

/// Returns every named program in [`pathinv_ir::corpus`] — the paper's
/// hand-built figures plus the parsed suite entries (prefixed `suite/`) —
/// and the committed `.pinv` samples (prefixed `pinv/`).
pub fn corpus_programs() -> Vec<(String, Program)> {
    let mut programs: Vec<(String, Program)> = vec![
        ("FORWARD".to_string(), corpus::forward()),
        ("INITCHECK".to_string(), corpus::initcheck()),
        ("PARTITION".to_string(), corpus::partition()),
        ("BUGGY_INITCHECK".to_string(), corpus::buggy_initcheck()),
        ("FIGURE4".to_string(), corpus::figure4_program()),
    ];
    for (entry, program) in corpus::suite_programs() {
        programs.push((format!("suite/{}", entry.name), program));
    }
    for (name, src) in [
        ("array_reset_bug", ARRAY_RESET_BUG_SRC),
        ("rational_cex_parity", RATIONAL_CEX_PARITY_SRC),
        ("half_integer_bug", HALF_INTEGER_BUG_SRC),
    ] {
        programs.push((
            format!("pinv/{name}"),
            parse_program(src).unwrap_or_else(|e| {
                panic!("committed sample programs/{name}.pinv must parse: {e}")
            }),
        ));
    }
    programs
}

/// Returns a 16-program *source-level* corpus for harnesses that ship
/// program text over a wire instead of in-process [`Program`] values — the
/// serve protocol and its smoke harness.  Three of the paper's figures have
/// committed front-end sources, the suite and `.pinv` samples are already
/// textual, and two tiny demo programs (one safe, one unsafe) round the set
/// out so both cold-cache verdict kinds appear even in quick runs.
pub fn corpus_sources() -> Vec<(String, String)> {
    let mut sources: Vec<(String, String)> = vec![
        ("FORWARD".to_string(), corpus::forward_src().to_string()),
        ("INITCHECK".to_string(), corpus::initcheck_src().to_string()),
        ("PARTITION".to_string(), corpus::partition_src().to_string()),
    ];
    for entry in corpus::suite() {
        sources.push((format!("suite/{}", entry.name), entry.src.to_string()));
    }
    for (name, src) in [
        ("array_reset_bug", ARRAY_RESET_BUG_SRC),
        ("rational_cex_parity", RATIONAL_CEX_PARITY_SRC),
        ("half_integer_bug", HALF_INTEGER_BUG_SRC),
    ] {
        sources.push((format!("pinv/{name}"), src.to_string()));
    }
    sources.push((
        "demo/assign_safe".to_string(),
        "proc assign_safe(x: int) { x = 3; assert(x == 3); }".to_string(),
    ));
    sources.push((
        "demo/assign_bug".to_string(),
        "proc assign_bug(x: int) { x = 3; assert(x == 4); }".to_string(),
    ));
    sources
}

/// Parses one `.pinv` source file into a named program.
///
/// # Errors
///
/// Returns a human-readable message when the file cannot be read or parsed.
pub fn load_pinv_file(path: &str) -> Result<(String, Program), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = parse_program(&src).map_err(|e| format!("{path}: parse error: {e}"))?;
    Ok((path.to_string(), program))
}

/// Which refiners the CEGAR tasks of a batch run exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefinerChoice {
    /// Only the paper's path-invariant refiner.
    PathInvariants,
    /// Only the finite-path baseline.
    PathPredicates,
    /// Both, as separate tasks per program.
    Both,
}

impl RefinerChoice {
    /// The refiner kinds this choice expands to.
    pub fn kinds(self) -> Vec<RefinerKind> {
        match self {
            RefinerChoice::PathInvariants => vec![RefinerKind::PathInvariants],
            RefinerChoice::PathPredicates => vec![RefinerKind::PathPredicates],
            RefinerChoice::Both => {
                vec![RefinerKind::PathInvariants, RefinerKind::PathPredicates]
            }
        }
    }
}

/// Which engines a batch run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// Only the CEGAR driver (refiners per [`RefinerChoice`]).
    Cegar,
    /// Only the bounded model checker.
    Bmc,
    /// Only the PDR-lite frame engine.
    Pdr,
    /// Every engine, as separate tasks per program; enables the
    /// [`differential`] cross-checking section of the report.
    Portfolio,
}

impl EngineChoice {
    /// Whether this choice runs more than one engine (and therefore feeds
    /// the differential harness).
    pub fn is_portfolio(self) -> bool {
        self == EngineChoice::Portfolio
    }
}

/// Expands named programs into per-engine [`BatchTask`]s.
///
/// CEGAR tasks are expanded per `refiners`; `max_refinements` overrides the
/// per-refiner default bound (40 for path invariants,
/// [`DEFAULT_BASELINE_REFINEMENTS`] for the baseline) when set.  BMC and
/// PDR tasks use their default configurations.
pub fn make_tasks(
    programs: Vec<(String, Program)>,
    engines: EngineChoice,
    refiners: RefinerChoice,
    max_refinements: Option<usize>,
) -> Vec<BatchTask> {
    let mut task_engines: Vec<TaskEngine> = Vec::new();
    if matches!(engines, EngineChoice::Cegar | EngineChoice::Portfolio) {
        for kind in refiners.kinds() {
            let mut config = match kind {
                RefinerKind::PathInvariants => CegarConfig::path_invariants(),
                RefinerKind::PathPredicates => {
                    CegarConfig::path_predicates(DEFAULT_BASELINE_REFINEMENTS)
                }
            };
            if let Some(bound) = max_refinements {
                config.max_refinements = bound;
            }
            task_engines.push(TaskEngine::Cegar(config));
        }
    }
    if matches!(engines, EngineChoice::Bmc | EngineChoice::Portfolio) {
        task_engines.push(TaskEngine::Bmc(BmcConfig::default()));
    }
    if matches!(engines, EngineChoice::Pdr | EngineChoice::Portfolio) {
        task_engines.push(TaskEngine::Pdr(PdrConfig::default()));
    }
    let mut tasks = Vec::new();
    for (name, program) in programs {
        for engine in &task_engines {
            tasks.push(BatchTask {
                program_name: name.clone(),
                engine: engine.clone(),
                program: program.clone(),
                certify: false,
                timeout_ms: None,
            });
        }
    }
    tasks
}

fn run_task(task: &BatchTask) -> TaskReport {
    run_task_with_cancel(task, &pathinv_core::CancellationToken::new())
}

/// Runs one task under `token`, reporting a cancelled run honestly as the
/// `"cancelled"` verdict (the racing harness cancels losing lanes, the
/// deadline watchdog cancels `--timeout-ms` overruns; a default batch run
/// passes a fresh token and sets no deadline, so it never sees either).
///
/// Execution — panic isolation, deadline enforcement, verdict mapping — is
/// [`pathinv_core::run_job`], the same path the service daemon uses; this
/// wrapper only adds the certificate audit and the report projection.
pub(crate) fn run_task_with_cancel(
    task: &BatchTask,
    token: &pathinv_core::CancellationToken,
) -> TaskReport {
    let outcome = pathinv_core::run_job(&task.job_spec(), &task.program, token);
    let mut report = TaskReport::from_outcome(task.program_name.clone(), &task.engine, &outcome);
    if task.certify {
        let (cert_verdict, cert_reason, cert_check_ms) =
            audit_certificate(&task.program, outcome.certificate.as_ref(), &report.verdict);
        report.cert_verdict = cert_verdict;
        report.cert_reason = cert_reason;
        report.cert_check_ms = cert_check_ms;
    }
    report
}

/// Audits one certificate with the independent checker, timing the check.
/// A missing certificate on an *inconclusive* (or errored) verdict is the
/// vacuous pass: the verdict claims nothing, so there is nothing to audit —
/// `--certify` treats it as passing by design.  A missing certificate on a
/// conclusive verdict, by contrast, is reported as `"missing"`: an engine
/// claimed safety or unsafety without the proof artifact to back it.  A
/// certificate whose polarity contradicts the verdict (a trace attached to
/// `safe`, an invariant map attached to `unsafe`) is `"invalid"` before the
/// checker even runs — it could not certify the claim no matter its content.
fn audit_certificate(
    program: &Program,
    certificate: Option<&pathinv_check::Certificate>,
    verdict: &str,
) -> (String, String, f64) {
    let conclusive = verdict == "safe" || verdict == "unsafe";
    let Some(cert) = certificate else {
        return if conclusive {
            ("missing".to_string(), "conclusive verdict without a certificate".to_string(), 0.0)
        } else {
            ("vacuous".to_string(), String::new(), 0.0)
        };
    };
    if cert.claims_safety() != (verdict == "safe") {
        return (
            "invalid".to_string(),
            format!(
                "certificate polarity mismatch: {} certificate for a {verdict} verdict",
                cert.kind()
            ),
            0.0,
        );
    }
    let start = Instant::now();
    let outcome =
        pathinv_check::check_certificate(program, cert, &pathinv_check::CheckLimits::default());
    let check_ms = start.elapsed().as_secs_f64() * 1e3;
    (outcome.name().to_string(), outcome.reason().unwrap_or_default().to_string(), check_ms)
}

/// Runs every task across `jobs` worker threads and collects a report.
///
/// Tasks are pulled from a shared queue, so long-running programs do not
/// serialize the rest of the batch behind them. Results are re-sorted by
/// (program, engine rank, refiner) to keep the report independent of
/// scheduling.
pub fn run_batch(tasks: Vec<BatchTask>, jobs: usize) -> BatchReport {
    let jobs = jobs.max(1).min(tasks.len().max(1));
    let start = Instant::now();
    let queue: Mutex<VecDeque<BatchTask>> = Mutex::new(tasks.into());
    let results: Mutex<Vec<TaskReport>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let Some(task) = queue.lock().expect("task queue poisoned").pop_front() else {
                    break;
                };
                let report = run_task(&task);
                results.lock().expect("result sink poisoned").push(report);
            });
        }
    });
    let mut tasks = results.into_inner().expect("result sink poisoned");
    tasks.sort_by(|a, b| {
        (a.program_name.as_str(), engine_rank(&a.engine, &a.refiner), a.refiner.as_str()).cmp(&(
            b.program_name.as_str(),
            engine_rank(&b.engine, &b.refiner),
            b.refiner.as_str(),
        ))
    });
    BatchReport { jobs, tasks, wall_ms_total: start.elapsed().as_secs_f64() * 1e3 }
}

use pathinv_report::{format_ms, round3};

fn count_verdicts(tasks: &[TaskReport], verdict: &str) -> i64 {
    tasks.iter().filter(|t| t.verdict == verdict).count() as i64
}

fn count_cert_verdicts(tasks: &[TaskReport], cert_verdict: &str) -> i64 {
    tasks.iter().filter(|t| t.cert_verdict == cert_verdict).count() as i64
}

impl BatchReport {
    /// The full JSON rendering of this report.  Portfolio runs append the
    /// differential section separately (see
    /// [`differential::DifferentialReport::to_json`]).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("jobs", Json::Int(self.jobs as i64)),
            ("tasks", Json::Array(self.tasks.iter().map(TaskReport::to_json).collect())),
            (
                "summary",
                Json::object(vec![
                    ("total", Json::Int(self.tasks.len() as i64)),
                    ("safe", Json::Int(count_verdicts(&self.tasks, "safe"))),
                    ("unsafe", Json::Int(count_verdicts(&self.tasks, "unsafe"))),
                    ("unknown", Json::Int(count_verdicts(&self.tasks, "unknown"))),
                    ("error", Json::Int(count_verdicts(&self.tasks, "error"))),
                    ("wall_ms_total", Json::Float(round3(self.wall_ms_total))),
                    // Certificate audit tallies; all zero unless `--certify`
                    // populated the per-task cert_verdict fields.
                    (
                        "certificates",
                        Json::object(vec![
                            ("valid", Json::Int(count_cert_verdicts(&self.tasks, "valid"))),
                            ("invalid", Json::Int(count_cert_verdicts(&self.tasks, "invalid"))),
                            (
                                "unsupported",
                                Json::Int(count_cert_verdicts(&self.tasks, "unsupported")),
                            ),
                            ("vacuous", Json::Int(count_cert_verdicts(&self.tasks, "vacuous"))),
                            ("missing", Json::Int(count_cert_verdicts(&self.tasks, "missing"))),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    /// The golden snapshot rendering: only the fields that are deterministic
    /// across runs and machines (no wall-clock times, no free-form details).
    pub fn to_golden_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            (
                "tasks",
                Json::Array(self.tasks.iter().map(TaskReport::to_golden_task_json).collect()),
            ),
        ])
    }

    /// Sum of a per-task counter over the whole batch.
    pub fn total(&self, field: impl Fn(&VerifierStats) -> u64) -> u64 {
        self.tasks.iter().map(|t| field(&t.stats)).sum()
    }

    /// A human-readable fixed-width summary table.
    pub fn render_table(&self) -> String {
        let name_width = self
            .tasks
            .iter()
            .map(|t| t.program_name.len())
            .chain(std::iter::once("program".len()))
            .max()
            .unwrap_or(8);
        let engine_width = self
            .tasks
            .iter()
            .map(|t| t.engine_label().len())
            .chain(std::iter::once("engine".len()))
            .max()
            .unwrap_or(6);
        let rule = name_width + engine_width + 69;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_width$}  {:<engine_width$}  {:<8}  {:>7}  {:>6}  {:>9}  {:>8}  {:>5}  {:>10}\n",
            "program", "engine", "verdict", "refines", "preds", "ART nodes", "solver", "hit%", "wall",
        ));
        out.push_str(&format!("{}\n", "-".repeat(rule)));
        for t in &self.tasks {
            out.push_str(&format!(
                "{:<name_width$}  {:<engine_width$}  {:<8}  {:>7}  {:>6}  {:>9}  {:>8}  {:>5.1}  {:>10}\n",
                t.program_name,
                t.engine_label(),
                t.verdict,
                t.refinements,
                t.predicates,
                t.art_nodes,
                t.stats.solver_calls,
                t.stats.query_hit_rate() * 100.0,
                format_ms(t.wall_ms),
            ));
        }
        out.push_str(&format!("{}\n", "-".repeat(rule)));
        out.push_str(&format!(
            "{} tasks on {} workers in {}: {} safe, {} unsafe, {} unknown, {} errors; \
             {} solver calls, {} cache hits\n",
            self.tasks.len(),
            self.jobs,
            format_ms(self.wall_ms_total),
            count_verdicts(&self.tasks, "safe"),
            count_verdicts(&self.tasks, "unsafe"),
            count_verdicts(&self.tasks, "unknown"),
            count_verdicts(&self.tasks, "error"),
            self.total(|s| s.solver_calls),
            self.total(|s| s.query_cache_hits + s.post_cache_hits),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_the_paper_programs_and_the_suite() {
        let names: Vec<String> = corpus_programs().into_iter().map(|(n, _)| n).collect();
        for expected in ["FORWARD", "INITCHECK", "PARTITION", "BUGGY_INITCHECK", "FIGURE4"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        assert!(names.iter().filter(|n| n.starts_with("suite/")).count() >= 8);
        for sample in ["array_reset_bug", "rational_cex_parity", "half_integer_bug"] {
            assert!(
                names.contains(&format!("pinv/{sample}")),
                "the committed sample program {sample} must be part of the corpus"
            );
        }
    }

    #[test]
    fn embedded_samples_match_the_committed_files() {
        // `include_str!` guarantees this at compile time; the assertions
        // document the invariant for readers.
        assert!(ARRAY_RESET_BUG_SRC.contains("proc array_reset_bug"));
        assert!(RATIONAL_CEX_PARITY_SRC.contains("proc rational_cex_parity"));
        assert!(HALF_INTEGER_BUG_SRC.contains("proc half_integer_bug"));
    }

    #[test]
    fn make_tasks_expands_cegar_refiners() {
        let programs = vec![("FIGURE4".to_string(), corpus::figure4_program())];
        let tasks = make_tasks(programs, EngineChoice::Cegar, RefinerChoice::Both, None);
        assert_eq!(tasks.len(), 2);
        let TaskEngine::Cegar(c0) = &tasks[0].engine else { panic!("cegar expected") };
        let TaskEngine::Cegar(c1) = &tasks[1].engine else { panic!("cegar expected") };
        assert_eq!(c0.max_refinements, 40);
        assert_eq!(c1.max_refinements, DEFAULT_BASELINE_REFINEMENTS);
    }

    #[test]
    fn make_tasks_portfolio_runs_every_engine() {
        let programs = vec![("FIGURE4".to_string(), corpus::figure4_program())];
        let tasks = make_tasks(programs, EngineChoice::Portfolio, RefinerChoice::Both, None);
        let labels: Vec<&str> = tasks.iter().map(|t| t.engine.engine_name()).collect();
        assert_eq!(labels, ["cegar", "cegar", "bmc", "pdr"]);
    }

    #[test]
    fn run_batch_is_order_independent_and_counts_match() {
        let programs = vec![
            ("FIGURE4".to_string(), corpus::figure4_program()),
            (
                "suite/lockstep".to_string(),
                parse_program(corpus::suite().iter().find(|e| e.name == "lockstep").unwrap().src)
                    .unwrap(),
            ),
        ];
        let report =
            run_batch(make_tasks(programs, EngineChoice::Cegar, RefinerChoice::Both, None), 4);
        assert_eq!(report.tasks.len(), 4);
        let names: Vec<&str> = report.tasks.iter().map(|t| t.program_name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "report must be sorted by program name");
        let json = report.to_json();
        assert_eq!(json.get("schema_version").and_then(Json::as_int), Some(SCHEMA_VERSION));
        assert_eq!(json.get("tasks").and_then(Json::as_array).map(<[Json]>::len), Some(4));
    }

    #[test]
    fn figure4_is_unsafe_under_every_engine() {
        let programs = vec![("FIGURE4".to_string(), corpus::figure4_program())];
        let report =
            run_batch(make_tasks(programs, EngineChoice::Portfolio, RefinerChoice::Both, None), 2);
        assert_eq!(report.tasks.len(), 4);
        for t in &report.tasks {
            assert_eq!(t.verdict, "unsafe", "{}: {}", t.engine_label(), t.detail);
        }
    }

    #[test]
    fn engine_rank_orders_cegar_first() {
        assert!(engine_rank("cegar", "path-invariants") < engine_rank("cegar", "path-predicates"));
        assert!(engine_rank("cegar", "path-predicates") < engine_rank("bmc", NO_REFINER));
        assert!(engine_rank("bmc", NO_REFINER) < engine_rank("pdr", NO_REFINER));
    }
}
