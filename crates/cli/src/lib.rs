//! # pathinv-cli — batch corpus verification harness
//!
//! Library half of the `pathinv-cli` binary: it assembles the benchmark
//! task list (every program in [`pathinv_ir::corpus`] plus any `.pinv`
//! source files), runs each (program, engine) pair across a pool of worker
//! threads, and renders the results as a JSON report and a human-readable
//! summary table.
//!
//! Three verification engines are available behind the
//! [`VerificationEngine`] abstraction —
//! CEGAR (with either refiner), bounded model checking, and PDR-lite — and
//! the [`EngineChoice::Portfolio`] selection runs all of them per program,
//! feeding the [`differential`] harness that hard-fails on any cross-engine
//! verdict disagreement.
//!
//! The JSON report doubles as the substrate for golden-result regression
//! testing: `tests/corpus_regression.rs` (in the workspace root package)
//! re-runs the full portfolio over the corpus and diffs the deterministic
//! fields — verdict, refinement count, solver calls, cache hits, and the
//! per-engine exploration counters per task — against the committed
//! `tests/golden/corpus.json`, so a PR that flips a verdict, blows up
//! refinement counts, or regresses solver-call discipline fails tier-1
//! immediately.  The [`trajectory`] module builds the benchmark trajectory
//! point (`BENCH_pr8.json`) on the same harness.
//!
//! Every conclusive verdict additionally carries a certificate (an
//! inductive invariant map, a bounded-unroll claim, or a concrete trace)
//! whose kind, size, and canonical digest are reported — and pinned by the
//! golden snapshot.  Under `--certify` the independent `pathinv-check`
//! crate audits each certificate and the report gains the audit verdict and
//! check time per task.

#![warn(missing_docs)]

pub mod differential;
pub mod experiments;
pub mod fuzz;
pub mod json;
pub mod race;
pub mod trajectory;

use json::Json;
use pathinv_core::{
    BmcConfig, BmcEngine, CegarConfig, PdrConfig, PdrEngine, RefinerKind, Verdict,
    VerificationEngine, Verifier, VerifierStats,
};
use pathinv_ir::{corpus, parse_program, Program};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Schema version stamped into every report, bumped on breaking changes to
/// the report layout.  Version 2 added the solver-call and cache counters;
/// version 3 added the engine dimension (the `engine` field, the
/// `engine_depth`/`engine_nodes`/`engine_lemmas` counters, and the
/// differential section of portfolio reports); version 4 split the simplex
/// accounting into cold solves (`simplex_calls`) and warm incremental
/// re-checks (`simplex_warm_checks`), added per-phase simplex counters, and
/// pinned `simplex_calls`/`interpolant_calls` in the golden projections;
/// version 5 added the invariant-synthesis counters
/// (`synth_systems_solved`, `synth_branches_explored`,
/// `synth_branches_pruned`, `synth_cores_learned`, `synth_memo_hits`) and
/// pinned them in the golden projections; version 6 added the racing
/// harness (`--race`): `cancelled` joined the verdict vocabulary, and race
/// reports (per-program winner plus per-lane time-to-first-verdict) appear
/// in `--race --json` output and in the `race` section of trajectory
/// points — never in golden projections, whose fields are unchanged;
/// version 7 added checkable certificates: every conclusive verdict reports
/// its certificate's kind, size, and canonical digest (`cert_kind`,
/// `cert_size`, `cert_digest` — the digest is pinned by golden
/// projections), and `--certify` audits each certificate through the
/// independent `pathinv-check` crate, adding `cert_verdict`,
/// `cert_reason`, and `cert_check_ms`.
pub const SCHEMA_VERSION: i64 = 7;

/// Default refinement bound for the finite-path baseline, which is expected
/// to diverge on the interesting programs; a modest bound keeps batch runs
/// fast while still distinguishing "settled quickly" from "gave up".
pub const DEFAULT_BASELINE_REFINEMENTS: usize = 6;

/// The refiner column value for engines that have no refiner dimension
/// (everything except CEGAR).
pub const NO_REFINER: &str = "-";

/// The engine (with configuration) one [`BatchTask`] runs.
#[derive(Clone, Debug)]
pub enum TaskEngine {
    /// The CEGAR driver with the configured refiner.
    Cegar(CegarConfig),
    /// The bounded model checker.
    Bmc(BmcConfig),
    /// The PDR-lite frame engine.
    Pdr(PdrConfig),
}

impl TaskEngine {
    /// The engine's report name (`"cegar"`, `"bmc"`, `"pdr"`).
    pub fn engine_name(&self) -> &'static str {
        match self {
            TaskEngine::Cegar(_) => "cegar",
            TaskEngine::Bmc(_) => "bmc",
            TaskEngine::Pdr(_) => "pdr",
        }
    }

    /// The refiner column for reports: the CEGAR refiner name, or
    /// [`NO_REFINER`] for engines without a refiner dimension.
    pub fn refiner_name(&self) -> &'static str {
        match self {
            TaskEngine::Cegar(config) => refiner_name(config.refiner),
            _ => NO_REFINER,
        }
    }

    /// Builds the runnable engine.
    pub fn build(&self) -> Box<dyn VerificationEngine> {
        match self {
            TaskEngine::Cegar(config) => Box::new(Verifier::new(config.clone())),
            TaskEngine::Bmc(config) => Box::new(BmcEngine::new(*config)),
            TaskEngine::Pdr(config) => Box::new(PdrEngine::new(*config)),
        }
    }
}

/// One unit of work: a named program verified with one engine.
pub struct BatchTask {
    /// Report name of the program (corpus name or file path).
    pub program_name: String,
    /// The engine (and configuration) to run.
    pub engine: TaskEngine,
    /// The program itself.
    pub program: Program,
    /// Whether to audit the emitted certificate with the independent
    /// checker after the run (`--certify`).  Certificate kind, size, and
    /// digest are reported either way; only the audit itself is gated,
    /// since it costs extra wall-clock.
    pub certify: bool,
}

impl BatchTask {
    /// Disables the incremental caches on CEGAR tasks (`--no-cache`).  A
    /// no-op for BMC, whose context is uncached by design, and for PDR,
    /// whose query cache is integral to obligation retries.
    pub fn disable_cegar_caching(&mut self) {
        if let TaskEngine::Cegar(config) = &mut self.engine {
            config.caching = false;
        }
    }

    /// Sets the parallel-beam worker count on CEGAR tasks
    /// (`--beam-workers`).  The parallel beam merges deterministically, so
    /// verdicts, invariants, and golden counters are unchanged at any
    /// worker count; only wall-clock (and the non-golden work counters of
    /// synthesis) can differ.  A no-op for BMC and PDR.
    pub fn set_beam_workers(&mut self, workers: usize) {
        if let TaskEngine::Cegar(config) = &mut self.engine {
            config.synth_workers = workers.max(1);
        }
    }
}

/// The outcome of one [`BatchTask`].
#[derive(Clone, Debug, PartialEq)]
pub struct TaskReport {
    /// Report name of the program.
    pub program_name: String,
    /// `"cegar"`, `"bmc"`, or `"pdr"`.
    pub engine: String,
    /// `"path-invariants"`, `"path-predicates"`, or [`NO_REFINER`] for
    /// engines without a refiner dimension.
    pub refiner: String,
    /// `"safe"`, `"unsafe"`, `"unknown"`, or `"error"`.
    pub verdict: String,
    /// Free-form elaboration: counterexample length, give-up reason, or the
    /// error message. Not compared by the regression test.
    pub detail: String,
    /// Refinement iterations performed (CEGAR only; 0 otherwise).
    pub refinements: usize,
    /// Predicates tracked at the end (CEGAR) or invariant lemmas of a PDR
    /// proof; 0 for errored tasks.
    pub predicates: usize,
    /// Total ART nodes constructed (CEGAR only; 0 otherwise).
    pub art_nodes: usize,
    /// Wall-clock time for this task, in milliseconds.
    pub wall_ms: f64,
    /// Certificate kind (`"inductive"`, `"bounded-unroll"`, `"trace"`), or
    /// empty when the verdict is inconclusive and carries no certificate.
    pub cert_kind: String,
    /// Certificate size measure (atoms / depth / trace length); 0 when no
    /// certificate.
    pub cert_size: usize,
    /// Stable digest of the certificate's canonical rendering (16 hex
    /// digits), pinned by golden projections; empty when no certificate.
    pub cert_digest: String,
    /// Audit verdict under `--certify`: `"valid"`, `"invalid"`,
    /// `"unsupported"`, or `"vacuous"` (no certificate because the verdict
    /// claims nothing).  Empty when the audit was not requested.
    pub cert_verdict: String,
    /// The failing obligation or budget of a non-valid audit; empty
    /// otherwise.
    pub cert_reason: String,
    /// Wall-clock the independent checker spent on this certificate, in
    /// milliseconds (0 when the audit was not requested).
    pub cert_check_ms: f64,
    /// Solver-call, cache, and engine-exploration statistics (all-zero for
    /// errored tasks).
    pub stats: VerifierStats,
}

/// The outcome of a whole batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Worker threads used.
    pub jobs: usize,
    /// Per-task results, sorted by (program name, engine, refiner) so the
    /// report is stable regardless of scheduling order.
    pub tasks: Vec<TaskReport>,
    /// End-to-end wall clock for the whole batch, in milliseconds.
    pub wall_ms_total: f64,
}

/// Renders a [`RefinerKind`] the way reports spell it.
pub fn refiner_name(kind: RefinerKind) -> &'static str {
    match kind {
        RefinerKind::PathInvariants => "path-invariants",
        RefinerKind::PathPredicates => "path-predicates",
    }
}

/// The committed sample program `programs/array_reset_bug.pinv`, embedded so
/// that the corpus (and therefore the golden regression) always exercises
/// it.
pub const ARRAY_RESET_BUG_SRC: &str = include_str!("../../../programs/array_reset_bug.pinv");

/// Minimized fuzzer reproducer for the rational-relaxation bug
/// (`programs/rational_cex_parity.pinv`): integer-safe, but its error path is
/// rationally satisfiable at a half-integral input.
pub const RATIONAL_CEX_PARITY_SRC: &str =
    include_str!("../../../programs/rational_cex_parity.pinv");

/// Loop-free distillation of the same bug
/// (`programs/half_integer_bug.pinv`): `assert(x + x != 1)` only fails at
/// x = 1/2, so every engine must prove it safe or say unknown.
pub const HALF_INTEGER_BUG_SRC: &str = include_str!("../../../programs/half_integer_bug.pinv");

/// Returns every named program in [`pathinv_ir::corpus`] — the paper's
/// hand-built figures plus the parsed suite entries (prefixed `suite/`) —
/// and the committed `.pinv` samples (prefixed `pinv/`).
pub fn corpus_programs() -> Vec<(String, Program)> {
    let mut programs: Vec<(String, Program)> = vec![
        ("FORWARD".to_string(), corpus::forward()),
        ("INITCHECK".to_string(), corpus::initcheck()),
        ("PARTITION".to_string(), corpus::partition()),
        ("BUGGY_INITCHECK".to_string(), corpus::buggy_initcheck()),
        ("FIGURE4".to_string(), corpus::figure4_program()),
    ];
    for (entry, program) in corpus::suite_programs() {
        programs.push((format!("suite/{}", entry.name), program));
    }
    for (name, src) in [
        ("array_reset_bug", ARRAY_RESET_BUG_SRC),
        ("rational_cex_parity", RATIONAL_CEX_PARITY_SRC),
        ("half_integer_bug", HALF_INTEGER_BUG_SRC),
    ] {
        programs.push((
            format!("pinv/{name}"),
            parse_program(src).unwrap_or_else(|e| {
                panic!("committed sample programs/{name}.pinv must parse: {e}")
            }),
        ));
    }
    programs
}

/// Parses one `.pinv` source file into a named program.
///
/// # Errors
///
/// Returns a human-readable message when the file cannot be read or parsed.
pub fn load_pinv_file(path: &str) -> Result<(String, Program), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = parse_program(&src).map_err(|e| format!("{path}: parse error: {e}"))?;
    Ok((path.to_string(), program))
}

/// Which refiners the CEGAR tasks of a batch run exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefinerChoice {
    /// Only the paper's path-invariant refiner.
    PathInvariants,
    /// Only the finite-path baseline.
    PathPredicates,
    /// Both, as separate tasks per program.
    Both,
}

impl RefinerChoice {
    /// The refiner kinds this choice expands to.
    pub fn kinds(self) -> Vec<RefinerKind> {
        match self {
            RefinerChoice::PathInvariants => vec![RefinerKind::PathInvariants],
            RefinerChoice::PathPredicates => vec![RefinerKind::PathPredicates],
            RefinerChoice::Both => {
                vec![RefinerKind::PathInvariants, RefinerKind::PathPredicates]
            }
        }
    }
}

/// Which engines a batch run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// Only the CEGAR driver (refiners per [`RefinerChoice`]).
    Cegar,
    /// Only the bounded model checker.
    Bmc,
    /// Only the PDR-lite frame engine.
    Pdr,
    /// Every engine, as separate tasks per program; enables the
    /// [`differential`] cross-checking section of the report.
    Portfolio,
}

impl EngineChoice {
    /// Whether this choice runs more than one engine (and therefore feeds
    /// the differential harness).
    pub fn is_portfolio(self) -> bool {
        self == EngineChoice::Portfolio
    }
}

/// Expands named programs into per-engine [`BatchTask`]s.
///
/// CEGAR tasks are expanded per `refiners`; `max_refinements` overrides the
/// per-refiner default bound (40 for path invariants,
/// [`DEFAULT_BASELINE_REFINEMENTS`] for the baseline) when set.  BMC and
/// PDR tasks use their default configurations.
pub fn make_tasks(
    programs: Vec<(String, Program)>,
    engines: EngineChoice,
    refiners: RefinerChoice,
    max_refinements: Option<usize>,
) -> Vec<BatchTask> {
    let mut task_engines: Vec<TaskEngine> = Vec::new();
    if matches!(engines, EngineChoice::Cegar | EngineChoice::Portfolio) {
        for kind in refiners.kinds() {
            let mut config = match kind {
                RefinerKind::PathInvariants => CegarConfig::path_invariants(),
                RefinerKind::PathPredicates => {
                    CegarConfig::path_predicates(DEFAULT_BASELINE_REFINEMENTS)
                }
            };
            if let Some(bound) = max_refinements {
                config.max_refinements = bound;
            }
            task_engines.push(TaskEngine::Cegar(config));
        }
    }
    if matches!(engines, EngineChoice::Bmc | EngineChoice::Portfolio) {
        task_engines.push(TaskEngine::Bmc(BmcConfig::default()));
    }
    if matches!(engines, EngineChoice::Pdr | EngineChoice::Portfolio) {
        task_engines.push(TaskEngine::Pdr(PdrConfig::default()));
    }
    let mut tasks = Vec::new();
    for (name, program) in programs {
        for engine in &task_engines {
            tasks.push(BatchTask {
                program_name: name.clone(),
                engine: engine.clone(),
                program: program.clone(),
                certify: false,
            });
        }
    }
    tasks
}

fn run_task(task: &BatchTask) -> TaskReport {
    run_task_with_cancel(task, &pathinv_core::CancellationToken::new())
}

/// Runs one task under `token`, reporting a cancelled run honestly as the
/// `"cancelled"` verdict (the racing harness cancels losing lanes; a default
/// batch run passes a fresh token and never sees it).
pub(crate) fn run_task_with_cancel(
    task: &BatchTask,
    token: &pathinv_core::CancellationToken,
) -> TaskReport {
    let start = Instant::now();
    let engine = task.engine.build();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.verify_with_cancel(&task.program, token)
    }));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let (verdict, detail, refinements, predicates, art_nodes, certificate, stats) = match outcome {
        Ok(Ok(result)) => {
            let (verdict, detail) = match &result.verdict {
                Verdict::Safe => ("safe".to_string(), String::new()),
                Verdict::Unsafe { path } => {
                    ("unsafe".to_string(), format!("counterexample of {} steps", path.len()))
                }
                Verdict::Unknown { reason } => ("unknown".to_string(), reason.clone()),
                Verdict::Cancelled => {
                    ("cancelled".to_string(), "cancelled by the racing harness".to_string())
                }
            };
            (
                verdict,
                detail,
                result.refinements,
                result.predicates,
                result.art_nodes,
                result.certificate,
                result.stats,
            )
        }
        Ok(Err(e)) => ("error".to_string(), e.to_string(), 0, 0, 0, None, VerifierStats::default()),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("panic");
            (
                "error".to_string(),
                format!("panicked: {msg}"),
                0,
                0,
                0,
                None,
                VerifierStats::default(),
            )
        }
    };
    let (cert_kind, cert_size, cert_digest) = match &certificate {
        Some(cert) => (cert.kind().to_string(), cert.size(), cert.digest()),
        None => (String::new(), 0, String::new()),
    };
    let (cert_verdict, cert_reason, cert_check_ms) = if task.certify {
        audit_certificate(&task.program, certificate.as_ref(), &verdict)
    } else {
        (String::new(), String::new(), 0.0)
    };
    TaskReport {
        program_name: task.program_name.clone(),
        engine: task.engine.engine_name().to_string(),
        refiner: task.engine.refiner_name().to_string(),
        verdict,
        detail,
        refinements,
        predicates,
        art_nodes,
        wall_ms,
        cert_kind,
        cert_size,
        cert_digest,
        cert_verdict,
        cert_reason,
        cert_check_ms,
        stats,
    }
}

/// Audits one certificate with the independent checker, timing the check.
/// A missing certificate on an *inconclusive* (or errored) verdict is the
/// vacuous pass: the verdict claims nothing, so there is nothing to audit —
/// `--certify` treats it as passing by design.  A missing certificate on a
/// conclusive verdict, by contrast, is reported as `"missing"`: an engine
/// claimed safety or unsafety without the proof artifact to back it.  A
/// certificate whose polarity contradicts the verdict (a trace attached to
/// `safe`, an invariant map attached to `unsafe`) is `"invalid"` before the
/// checker even runs — it could not certify the claim no matter its content.
fn audit_certificate(
    program: &Program,
    certificate: Option<&pathinv_check::Certificate>,
    verdict: &str,
) -> (String, String, f64) {
    let conclusive = verdict == "safe" || verdict == "unsafe";
    let Some(cert) = certificate else {
        return if conclusive {
            ("missing".to_string(), "conclusive verdict without a certificate".to_string(), 0.0)
        } else {
            ("vacuous".to_string(), String::new(), 0.0)
        };
    };
    if cert.claims_safety() != (verdict == "safe") {
        return (
            "invalid".to_string(),
            format!(
                "certificate polarity mismatch: {} certificate for a {verdict} verdict",
                cert.kind()
            ),
            0.0,
        );
    }
    let start = Instant::now();
    let outcome =
        pathinv_check::check_certificate(program, cert, &pathinv_check::CheckLimits::default());
    let check_ms = start.elapsed().as_secs_f64() * 1e3;
    (outcome.name().to_string(), outcome.reason().unwrap_or_default().to_string(), check_ms)
}

/// The deterministic ordering of engine columns in reports and in the
/// differential combination: CEGAR first (path invariants before the
/// baseline), then BMC, then PDR-lite.
pub fn engine_rank(engine: &str, refiner: &str) -> usize {
    match (engine, refiner) {
        ("cegar", "path-invariants") => 0,
        ("cegar", _) => 1,
        ("bmc", _) => 2,
        ("pdr", _) => 3,
        _ => 4,
    }
}

/// Runs every task across `jobs` worker threads and collects a report.
///
/// Tasks are pulled from a shared queue, so long-running programs do not
/// serialize the rest of the batch behind them. Results are re-sorted by
/// (program, engine rank, refiner) to keep the report independent of
/// scheduling.
pub fn run_batch(tasks: Vec<BatchTask>, jobs: usize) -> BatchReport {
    let jobs = jobs.max(1).min(tasks.len().max(1));
    let start = Instant::now();
    let queue: Mutex<VecDeque<BatchTask>> = Mutex::new(tasks.into());
    let results: Mutex<Vec<TaskReport>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let Some(task) = queue.lock().expect("task queue poisoned").pop_front() else {
                    break;
                };
                let report = run_task(&task);
                results.lock().expect("result sink poisoned").push(report);
            });
        }
    });
    let mut tasks = results.into_inner().expect("result sink poisoned");
    tasks.sort_by(|a, b| {
        (a.program_name.as_str(), engine_rank(&a.engine, &a.refiner), a.refiner.as_str()).cmp(&(
            b.program_name.as_str(),
            engine_rank(&b.engine, &b.refiner),
            b.refiner.as_str(),
        ))
    });
    BatchReport { jobs, tasks, wall_ms_total: start.elapsed().as_secs_f64() * 1e3 }
}

impl TaskReport {
    /// The column label combining engine and refiner (`"cegar/path-
    /// invariants"`, `"bmc"`, ...), used by the differential harness and the
    /// summary table.
    pub fn engine_label(&self) -> String {
        if self.refiner == NO_REFINER {
            self.engine.clone()
        } else {
            format!("{}/{}", self.engine, self.refiner)
        }
    }

    /// The full JSON rendering of this task.
    pub fn to_json(&self) -> Json {
        let s = &self.stats;
        Json::object(vec![
            ("program", Json::Str(self.program_name.clone())),
            ("engine", Json::Str(self.engine.clone())),
            ("refiner", Json::Str(self.refiner.clone())),
            ("verdict", Json::Str(self.verdict.clone())),
            ("detail", Json::Str(self.detail.clone())),
            ("refinements", Json::Int(self.refinements as i64)),
            ("predicates", Json::Int(self.predicates as i64)),
            ("art_nodes", Json::Int(self.art_nodes as i64)),
            ("wall_ms", Json::Float(round3(self.wall_ms))),
            ("solver_calls", Json::Int(s.solver_calls as i64)),
            ("simplex_calls", Json::Int(s.simplex_calls as i64)),
            ("simplex_warm_checks", Json::Int(s.simplex_warm_checks as i64)),
            ("interpolant_calls", Json::Int(s.interpolant_calls as i64)),
            ("smt_queries", Json::Int(s.smt_queries as i64)),
            ("query_cache_hits", Json::Int(s.query_cache_hits as i64)),
            ("post_queries", Json::Int(s.post_queries as i64)),
            ("post_cache_hits", Json::Int(s.post_cache_hits as i64)),
            ("query_hit_rate", Json::Float(round3(s.query_hit_rate()))),
            ("engine_depth", Json::Int(s.engine_depth as i64)),
            ("engine_nodes", Json::Int(s.engine_nodes as i64)),
            ("engine_lemmas", Json::Int(s.engine_lemmas as i64)),
            ("cert_kind", Json::Str(self.cert_kind.clone())),
            ("cert_size", Json::Int(self.cert_size as i64)),
            ("cert_digest", Json::Str(self.cert_digest.clone())),
            ("cert_verdict", Json::Str(self.cert_verdict.clone())),
            ("cert_reason", Json::Str(self.cert_reason.clone())),
            ("cert_check_ms", Json::Float(round3(self.cert_check_ms))),
            ("synth_systems_solved", Json::Int(s.synth_systems_solved as i64)),
            ("synth_branches_explored", Json::Int(s.synth_branches_explored as i64)),
            ("synth_branches_pruned", Json::Int(s.synth_branches_pruned as i64)),
            ("synth_cores_learned", Json::Int(s.synth_cores_learned as i64)),
            ("synth_memo_hits", Json::Int(s.synth_memo_hits as i64)),
            (
                "phases",
                Json::object(vec![
                    ("reach_solver_calls", Json::Int(s.reach_solver_calls as i64)),
                    ("cex_solver_calls", Json::Int(s.cex_solver_calls as i64)),
                    ("refine_solver_calls", Json::Int(s.refine_solver_calls as i64)),
                    ("reach_simplex_calls", Json::Int(s.reach_simplex_calls as i64)),
                    ("cex_simplex_calls", Json::Int(s.cex_simplex_calls as i64)),
                    ("refine_simplex_calls", Json::Int(s.refine_simplex_calls as i64)),
                    ("reach_ms", Json::Float(round3(s.reach_ms))),
                    ("cex_ms", Json::Float(round3(s.cex_ms))),
                    ("refine_ms", Json::Float(round3(s.refine_ms))),
                ]),
            ),
        ])
    }

    /// The golden (regression-compared) JSON rendering: only fields that are
    /// deterministic across runs, machines, and worker counts.
    pub fn to_golden_task_json(&self) -> Json {
        Json::object(vec![
            ("program", Json::Str(self.program_name.clone())),
            ("engine", Json::Str(self.engine.clone())),
            ("refiner", Json::Str(self.refiner.clone())),
            ("verdict", Json::Str(self.verdict.clone())),
            ("refinements", Json::Int(self.refinements as i64)),
            ("predicates", Json::Int(self.predicates as i64)),
            ("art_nodes", Json::Int(self.art_nodes as i64)),
            ("solver_calls", Json::Int(self.stats.solver_calls as i64)),
            ("simplex_calls", Json::Int(self.stats.simplex_calls as i64)),
            ("simplex_warm_checks", Json::Int(self.stats.simplex_warm_checks as i64)),
            ("interpolant_calls", Json::Int(self.stats.interpolant_calls as i64)),
            ("query_cache_hits", Json::Int(self.stats.query_cache_hits as i64)),
            ("post_cache_hits", Json::Int(self.stats.post_cache_hits as i64)),
            ("engine_depth", Json::Int(self.stats.engine_depth as i64)),
            ("engine_nodes", Json::Int(self.stats.engine_nodes as i64)),
            ("engine_lemmas", Json::Int(self.stats.engine_lemmas as i64)),
            ("cert_kind", Json::Str(self.cert_kind.clone())),
            ("cert_size", Json::Int(self.cert_size as i64)),
            ("cert_digest", Json::Str(self.cert_digest.clone())),
            ("refine_simplex_calls", Json::Int(self.stats.refine_simplex_calls as i64)),
            ("synth_systems_solved", Json::Int(self.stats.synth_systems_solved as i64)),
            ("synth_branches_explored", Json::Int(self.stats.synth_branches_explored as i64)),
            ("synth_branches_pruned", Json::Int(self.stats.synth_branches_pruned as i64)),
            ("synth_cores_learned", Json::Int(self.stats.synth_cores_learned as i64)),
            ("synth_memo_hits", Json::Int(self.stats.synth_memo_hits as i64)),
        ])
    }
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn count_verdicts(tasks: &[TaskReport], verdict: &str) -> i64 {
    tasks.iter().filter(|t| t.verdict == verdict).count() as i64
}

fn count_cert_verdicts(tasks: &[TaskReport], cert_verdict: &str) -> i64 {
    tasks.iter().filter(|t| t.cert_verdict == cert_verdict).count() as i64
}

impl BatchReport {
    /// The full JSON rendering of this report.  Portfolio runs append the
    /// differential section separately (see
    /// [`differential::DifferentialReport::to_json`]).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("jobs", Json::Int(self.jobs as i64)),
            ("tasks", Json::Array(self.tasks.iter().map(TaskReport::to_json).collect())),
            (
                "summary",
                Json::object(vec![
                    ("total", Json::Int(self.tasks.len() as i64)),
                    ("safe", Json::Int(count_verdicts(&self.tasks, "safe"))),
                    ("unsafe", Json::Int(count_verdicts(&self.tasks, "unsafe"))),
                    ("unknown", Json::Int(count_verdicts(&self.tasks, "unknown"))),
                    ("error", Json::Int(count_verdicts(&self.tasks, "error"))),
                    ("wall_ms_total", Json::Float(round3(self.wall_ms_total))),
                    // Certificate audit tallies; all zero unless `--certify`
                    // populated the per-task cert_verdict fields.
                    (
                        "certificates",
                        Json::object(vec![
                            ("valid", Json::Int(count_cert_verdicts(&self.tasks, "valid"))),
                            ("invalid", Json::Int(count_cert_verdicts(&self.tasks, "invalid"))),
                            (
                                "unsupported",
                                Json::Int(count_cert_verdicts(&self.tasks, "unsupported")),
                            ),
                            ("vacuous", Json::Int(count_cert_verdicts(&self.tasks, "vacuous"))),
                            ("missing", Json::Int(count_cert_verdicts(&self.tasks, "missing"))),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    /// The golden snapshot rendering: only the fields that are deterministic
    /// across runs and machines (no wall-clock times, no free-form details).
    pub fn to_golden_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            (
                "tasks",
                Json::Array(self.tasks.iter().map(TaskReport::to_golden_task_json).collect()),
            ),
        ])
    }

    /// Sum of a per-task counter over the whole batch.
    pub fn total(&self, field: impl Fn(&VerifierStats) -> u64) -> u64 {
        self.tasks.iter().map(|t| field(&t.stats)).sum()
    }

    /// A human-readable fixed-width summary table.
    pub fn render_table(&self) -> String {
        let name_width = self
            .tasks
            .iter()
            .map(|t| t.program_name.len())
            .chain(std::iter::once("program".len()))
            .max()
            .unwrap_or(8);
        let engine_width = self
            .tasks
            .iter()
            .map(|t| t.engine_label().len())
            .chain(std::iter::once("engine".len()))
            .max()
            .unwrap_or(6);
        let rule = name_width + engine_width + 69;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_width$}  {:<engine_width$}  {:<8}  {:>7}  {:>6}  {:>9}  {:>8}  {:>5}  {:>10}\n",
            "program", "engine", "verdict", "refines", "preds", "ART nodes", "solver", "hit%", "wall",
        ));
        out.push_str(&format!("{}\n", "-".repeat(rule)));
        for t in &self.tasks {
            out.push_str(&format!(
                "{:<name_width$}  {:<engine_width$}  {:<8}  {:>7}  {:>6}  {:>9}  {:>8}  {:>5.1}  {:>10}\n",
                t.program_name,
                t.engine_label(),
                t.verdict,
                t.refinements,
                t.predicates,
                t.art_nodes,
                t.stats.solver_calls,
                t.stats.query_hit_rate() * 100.0,
                format_ms(t.wall_ms),
            ));
        }
        out.push_str(&format!("{}\n", "-".repeat(rule)));
        out.push_str(&format!(
            "{} tasks on {} workers in {}: {} safe, {} unsafe, {} unknown, {} errors; \
             {} solver calls, {} cache hits\n",
            self.tasks.len(),
            self.jobs,
            format_ms(self.wall_ms_total),
            count_verdicts(&self.tasks, "safe"),
            count_verdicts(&self.tasks, "unsafe"),
            count_verdicts(&self.tasks, "unknown"),
            count_verdicts(&self.tasks, "error"),
            self.total(|s| s.solver_calls),
            self.total(|s| s.query_cache_hits + s.post_cache_hits),
        ));
        out
    }
}

fn format_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else {
        format!("{ms:.1} ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_the_paper_programs_and_the_suite() {
        let names: Vec<String> = corpus_programs().into_iter().map(|(n, _)| n).collect();
        for expected in ["FORWARD", "INITCHECK", "PARTITION", "BUGGY_INITCHECK", "FIGURE4"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        assert!(names.iter().filter(|n| n.starts_with("suite/")).count() >= 8);
        for sample in ["array_reset_bug", "rational_cex_parity", "half_integer_bug"] {
            assert!(
                names.contains(&format!("pinv/{sample}")),
                "the committed sample program {sample} must be part of the corpus"
            );
        }
    }

    #[test]
    fn embedded_samples_match_the_committed_files() {
        // `include_str!` guarantees this at compile time; the assertions
        // document the invariant for readers.
        assert!(ARRAY_RESET_BUG_SRC.contains("proc array_reset_bug"));
        assert!(RATIONAL_CEX_PARITY_SRC.contains("proc rational_cex_parity"));
        assert!(HALF_INTEGER_BUG_SRC.contains("proc half_integer_bug"));
    }

    #[test]
    fn make_tasks_expands_cegar_refiners() {
        let programs = vec![("FIGURE4".to_string(), corpus::figure4_program())];
        let tasks = make_tasks(programs, EngineChoice::Cegar, RefinerChoice::Both, None);
        assert_eq!(tasks.len(), 2);
        let TaskEngine::Cegar(c0) = &tasks[0].engine else { panic!("cegar expected") };
        let TaskEngine::Cegar(c1) = &tasks[1].engine else { panic!("cegar expected") };
        assert_eq!(c0.max_refinements, 40);
        assert_eq!(c1.max_refinements, DEFAULT_BASELINE_REFINEMENTS);
    }

    #[test]
    fn make_tasks_portfolio_runs_every_engine() {
        let programs = vec![("FIGURE4".to_string(), corpus::figure4_program())];
        let tasks = make_tasks(programs, EngineChoice::Portfolio, RefinerChoice::Both, None);
        let labels: Vec<&str> = tasks.iter().map(|t| t.engine.engine_name()).collect();
        assert_eq!(labels, ["cegar", "cegar", "bmc", "pdr"]);
    }

    #[test]
    fn run_batch_is_order_independent_and_counts_match() {
        let programs = vec![
            ("FIGURE4".to_string(), corpus::figure4_program()),
            (
                "suite/lockstep".to_string(),
                parse_program(corpus::suite().iter().find(|e| e.name == "lockstep").unwrap().src)
                    .unwrap(),
            ),
        ];
        let report =
            run_batch(make_tasks(programs, EngineChoice::Cegar, RefinerChoice::Both, None), 4);
        assert_eq!(report.tasks.len(), 4);
        let names: Vec<&str> = report.tasks.iter().map(|t| t.program_name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "report must be sorted by program name");
        let json = report.to_json();
        assert_eq!(json.get("schema_version").and_then(Json::as_int), Some(SCHEMA_VERSION));
        assert_eq!(json.get("tasks").and_then(Json::as_array).map(<[Json]>::len), Some(4));
    }

    #[test]
    fn figure4_is_unsafe_under_every_engine() {
        let programs = vec![("FIGURE4".to_string(), corpus::figure4_program())];
        let report =
            run_batch(make_tasks(programs, EngineChoice::Portfolio, RefinerChoice::Both, None), 2);
        assert_eq!(report.tasks.len(), 4);
        for t in &report.tasks {
            assert_eq!(t.verdict, "unsafe", "{}: {}", t.engine_label(), t.detail);
        }
    }

    #[test]
    fn engine_rank_orders_cegar_first() {
        assert!(engine_rank("cegar", "path-invariants") < engine_rank("cegar", "path-predicates"));
        assert!(engine_rank("cegar", "path-predicates") < engine_rank("bmc", NO_REFINER));
        assert!(engine_rank("bmc", NO_REFINER) < engine_rank("pdr", NO_REFINER));
    }
}
