//! A small, dependency-free JSON value type with a serializer and parser.
//!
//! The build environment has no network access, so `serde`/`serde_json` are
//! unavailable; reports only need objects, arrays, strings, integers, floats
//! and booleans, which this module covers. Object key order is preserved so
//! emitted reports are stable and diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (reports never need non-integral exponents).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no whitespace — the wire format of
    /// the service protocol and the verdict-cache journal, where one value
    /// must occupy exactly one `\n`-terminated line (the newline is *not*
    /// included; callers append it when framing).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message describing the first syntax error (with byte offset).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed for report content.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe: copy raw
                    // bytes until the next char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>().map(Json::Int).map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::object(vec![
            ("name", Json::Str("FORWARD \"quoted\"\n".to_string())),
            ("n", Json::Int(-42)),
            ("t", Json::Float(1.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Array(vec![Json::Int(1), Json::Int(2)])),
            ("empty_obj", Json::Object(vec![])),
            ("empty_arr", Json::Array(vec![])),
        ]);
        let text = v.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn compact_round_trips_and_stays_on_one_line() {
        let v = Json::object(vec![
            ("op", Json::Str("verify\nline".to_string())),
            ("n", Json::Int(7)),
            ("xs", Json::Array(vec![Json::Bool(false), Json::Null, Json::Float(0.5)])),
            ("inner", Json::object(vec![("k", Json::Str(String::new()))])),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n'), "framing requires a single physical line: {line}");
        assert_eq!(parse(&line).unwrap(), v);
        assert_eq!(Json::Object(vec![]).compact(), "{}");
        assert_eq!(Json::Array(vec![]).compact(), "[]");
    }

    #[test]
    fn parses_whole_floats_emitted_with_trailing_digit() {
        let v = Json::Float(2.0);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"open").is_err());
    }
}
