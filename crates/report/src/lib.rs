//! # pathinv-report — the one report schema every harness emits
//!
//! Four harnesses produce verification reports — the batch runner, the
//! racing portfolio, the differential fuzzer, and the verification service —
//! and they must all spell them identically: one verdict vocabulary, one
//! per-task record layout, one schema version.  This crate is that single
//! source of truth, extracted from `pathinv-cli` so the service daemon (and
//! any future harness) can emit the format without linking the whole CLI:
//!
//! * [`json`] — the dependency-free JSON value type with a pretty printer
//!   (reports, goldens), a compact single-line serializer (the service's
//!   wire protocol, the verdict-cache journal), and a parser.
//! * [`TaskReport`] — the outcome of one (program, engine) job with its
//!   full and golden JSON projections.
//! * [`SCHEMA_VERSION`] — stamped into every report; bumped on breaking
//!   layout changes so golden snapshots are re-blessed deliberately.
//! * [`engine_rank`] — the deterministic engine column ordering.

#![warn(missing_docs)]

pub mod json;

use json::Json;
use pathinv_core::{EngineSpec, JobOutcome, VerifierStats};

// One refiner-column vocabulary across harnesses: defined next to the
// engines in `pathinv-core`, re-exported here so report consumers need not
// know which crate owns it.
pub use pathinv_core::{refiner_name, NO_REFINER};

/// Schema version stamped into every report, bumped on breaking changes to
/// the report layout.  Version 2 added the solver-call and cache counters;
/// version 3 added the engine dimension (the `engine` field, the
/// `engine_depth`/`engine_nodes`/`engine_lemmas` counters, and the
/// differential section of portfolio reports); version 4 split the simplex
/// accounting into cold solves (`simplex_calls`) and warm incremental
/// re-checks (`simplex_warm_checks`), added per-phase simplex counters, and
/// pinned `simplex_calls`/`interpolant_calls` in the golden projections;
/// version 5 added the invariant-synthesis counters
/// (`synth_systems_solved`, `synth_branches_explored`,
/// `synth_branches_pruned`, `synth_cores_learned`, `synth_memo_hits`) and
/// pinned them in the golden projections; version 6 added the racing
/// harness (`--race`): `cancelled` joined the verdict vocabulary, and race
/// reports (per-program winner plus per-lane time-to-first-verdict) appear
/// in `--race --json` output and in the `race` section of trajectory
/// points — never in golden projections, whose fields are unchanged;
/// version 7 added checkable certificates: every conclusive verdict reports
/// its certificate's kind, size, and canonical digest (`cert_kind`,
/// `cert_size`, `cert_digest` — the digest is pinned by golden
/// projections), and `--certify` audits each certificate through the
/// independent `pathinv-check` crate, adding `cert_verdict`,
/// `cert_reason`, and `cert_check_ms`; version 8 moved the schema into the
/// `pathinv-report` crate shared by batch, race, fuzz, and the new
/// verification service (`pathinv-cli serve`), whose result lines carry
/// task records in this same layout plus service envelope fields
/// (`id`, `status`, `cached`) — and `--timeout-ms` made `cancelled`
/// reachable in plain batch reports (an expired deadline), not only races;
/// version 9 added the service supervision layer: `quarantined` joined the
/// service status vocabulary (a per-engine circuit breaker fast-failing
/// while open), `{"op":"stats"}` grew `cache`/`jobs`/`breakers` sections,
/// and the fault-injection engines `abort-shim`, `memhog-shim`, and
/// `flaky-shim` joined the engine vocabulary for chaos testing — batch and
/// golden task layouts are unchanged.
pub const SCHEMA_VERSION: i64 = 9;

/// The deterministic ordering of engine columns in reports and in the
/// differential combination: CEGAR first (path invariants before the
/// baseline), then BMC, then PDR-lite; fault-injection shims and anything
/// unknown sort last.
pub fn engine_rank(engine: &str, refiner: &str) -> usize {
    match (engine, refiner) {
        ("cegar", "path-invariants") => 0,
        ("cegar", _) => 1,
        ("bmc", _) => 2,
        ("pdr", _) => 3,
        _ => 4,
    }
}

/// The outcome of one job: a named program verified with one engine.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskReport {
    /// Report name of the program.
    pub program_name: String,
    /// `"cegar"`, `"bmc"`, `"pdr"`, or a fault-injection shim name.
    pub engine: String,
    /// `"path-invariants"`, `"path-predicates"`, or [`NO_REFINER`] for
    /// engines without a refiner dimension.
    pub refiner: String,
    /// `"safe"`, `"unsafe"`, `"unknown"`, `"cancelled"`, or `"error"`.
    pub verdict: String,
    /// Free-form elaboration: counterexample length, give-up reason, the
    /// deadline that expired, or the error message.  Not compared by the
    /// regression test.
    pub detail: String,
    /// Refinement iterations performed (CEGAR only; 0 otherwise).
    pub refinements: usize,
    /// Predicates tracked at the end (CEGAR) or invariant lemmas of a PDR
    /// proof; 0 for errored tasks.
    pub predicates: usize,
    /// Total ART nodes constructed (CEGAR only; 0 otherwise).
    pub art_nodes: usize,
    /// Wall-clock time for this task, in milliseconds.
    pub wall_ms: f64,
    /// Certificate kind (`"inductive"`, `"bounded-unroll"`, `"trace"`), or
    /// empty when the verdict is inconclusive and carries no certificate.
    pub cert_kind: String,
    /// Certificate size measure (atoms / depth / trace length); 0 when no
    /// certificate.
    pub cert_size: usize,
    /// Stable digest of the certificate's canonical rendering (16 hex
    /// digits), pinned by golden projections; empty when no certificate.
    pub cert_digest: String,
    /// Audit verdict under `--certify`: `"valid"`, `"invalid"`,
    /// `"unsupported"`, or `"vacuous"` (no certificate because the verdict
    /// claims nothing).  Empty when the audit was not requested.
    pub cert_verdict: String,
    /// The failing obligation or budget of a non-valid audit; empty
    /// otherwise.
    pub cert_reason: String,
    /// Wall-clock the independent checker spent on this certificate, in
    /// milliseconds (0 when the audit was not requested).
    pub cert_check_ms: f64,
    /// Solver-call, cache, and engine-exploration statistics (all-zero for
    /// errored tasks).
    pub stats: VerifierStats,
}

impl TaskReport {
    /// Builds the report record from a [`JobOutcome`] — the shared path by
    /// which every harness turns an engine run into report rows.  The
    /// certificate audit fields are left empty; harnesses that audit
    /// (`--certify`) fill `cert_verdict`/`cert_reason`/`cert_check_ms`
    /// afterwards.
    pub fn from_outcome(program_name: String, engine: &EngineSpec, outcome: &JobOutcome) -> Self {
        let (cert_kind, cert_size, cert_digest) = match &outcome.certificate {
            Some(cert) => (cert.kind().to_string(), cert.size(), cert.digest()),
            None => (String::new(), 0, String::new()),
        };
        TaskReport {
            program_name,
            engine: engine.engine_name().to_string(),
            refiner: engine.refiner_name().to_string(),
            verdict: outcome.verdict.clone(),
            detail: outcome.detail.clone(),
            refinements: outcome.refinements,
            predicates: outcome.predicates,
            art_nodes: outcome.art_nodes,
            wall_ms: outcome.wall_ms,
            cert_kind,
            cert_size,
            cert_digest,
            cert_verdict: String::new(),
            cert_reason: String::new(),
            cert_check_ms: 0.0,
            stats: outcome.stats,
        }
    }

    /// The column label combining engine and refiner (`"cegar/path-
    /// invariants"`, `"bmc"`, ...), used by the differential harness and the
    /// summary table.
    pub fn engine_label(&self) -> String {
        if self.refiner == NO_REFINER {
            self.engine.clone()
        } else {
            format!("{}/{}", self.engine, self.refiner)
        }
    }

    /// The full JSON rendering of this task.
    pub fn to_json(&self) -> Json {
        let s = &self.stats;
        Json::object(vec![
            ("program", Json::Str(self.program_name.clone())),
            ("engine", Json::Str(self.engine.clone())),
            ("refiner", Json::Str(self.refiner.clone())),
            ("verdict", Json::Str(self.verdict.clone())),
            ("detail", Json::Str(self.detail.clone())),
            ("refinements", Json::Int(self.refinements as i64)),
            ("predicates", Json::Int(self.predicates as i64)),
            ("art_nodes", Json::Int(self.art_nodes as i64)),
            ("wall_ms", Json::Float(round3(self.wall_ms))),
            ("solver_calls", Json::Int(s.solver_calls as i64)),
            ("simplex_calls", Json::Int(s.simplex_calls as i64)),
            ("simplex_warm_checks", Json::Int(s.simplex_warm_checks as i64)),
            ("interpolant_calls", Json::Int(s.interpolant_calls as i64)),
            ("smt_queries", Json::Int(s.smt_queries as i64)),
            ("query_cache_hits", Json::Int(s.query_cache_hits as i64)),
            ("post_queries", Json::Int(s.post_queries as i64)),
            ("post_cache_hits", Json::Int(s.post_cache_hits as i64)),
            ("query_hit_rate", Json::Float(round3(s.query_hit_rate()))),
            ("engine_depth", Json::Int(s.engine_depth as i64)),
            ("engine_nodes", Json::Int(s.engine_nodes as i64)),
            ("engine_lemmas", Json::Int(s.engine_lemmas as i64)),
            ("cert_kind", Json::Str(self.cert_kind.clone())),
            ("cert_size", Json::Int(self.cert_size as i64)),
            ("cert_digest", Json::Str(self.cert_digest.clone())),
            ("cert_verdict", Json::Str(self.cert_verdict.clone())),
            ("cert_reason", Json::Str(self.cert_reason.clone())),
            ("cert_check_ms", Json::Float(round3(self.cert_check_ms))),
            ("synth_systems_solved", Json::Int(s.synth_systems_solved as i64)),
            ("synth_branches_explored", Json::Int(s.synth_branches_explored as i64)),
            ("synth_branches_pruned", Json::Int(s.synth_branches_pruned as i64)),
            ("synth_cores_learned", Json::Int(s.synth_cores_learned as i64)),
            ("synth_memo_hits", Json::Int(s.synth_memo_hits as i64)),
            (
                "phases",
                Json::object(vec![
                    ("reach_solver_calls", Json::Int(s.reach_solver_calls as i64)),
                    ("cex_solver_calls", Json::Int(s.cex_solver_calls as i64)),
                    ("refine_solver_calls", Json::Int(s.refine_solver_calls as i64)),
                    ("reach_simplex_calls", Json::Int(s.reach_simplex_calls as i64)),
                    ("cex_simplex_calls", Json::Int(s.cex_simplex_calls as i64)),
                    ("refine_simplex_calls", Json::Int(s.refine_simplex_calls as i64)),
                    ("reach_ms", Json::Float(round3(s.reach_ms))),
                    ("cex_ms", Json::Float(round3(s.cex_ms))),
                    ("refine_ms", Json::Float(round3(s.refine_ms))),
                ]),
            ),
        ])
    }

    /// The golden (regression-compared) JSON rendering: only fields that are
    /// deterministic across runs, machines, and worker counts.
    pub fn to_golden_task_json(&self) -> Json {
        Json::object(vec![
            ("program", Json::Str(self.program_name.clone())),
            ("engine", Json::Str(self.engine.clone())),
            ("refiner", Json::Str(self.refiner.clone())),
            ("verdict", Json::Str(self.verdict.clone())),
            ("refinements", Json::Int(self.refinements as i64)),
            ("predicates", Json::Int(self.predicates as i64)),
            ("art_nodes", Json::Int(self.art_nodes as i64)),
            ("solver_calls", Json::Int(self.stats.solver_calls as i64)),
            ("simplex_calls", Json::Int(self.stats.simplex_calls as i64)),
            ("simplex_warm_checks", Json::Int(self.stats.simplex_warm_checks as i64)),
            ("interpolant_calls", Json::Int(self.stats.interpolant_calls as i64)),
            ("query_cache_hits", Json::Int(self.stats.query_cache_hits as i64)),
            ("post_cache_hits", Json::Int(self.stats.post_cache_hits as i64)),
            ("engine_depth", Json::Int(self.stats.engine_depth as i64)),
            ("engine_nodes", Json::Int(self.stats.engine_nodes as i64)),
            ("engine_lemmas", Json::Int(self.stats.engine_lemmas as i64)),
            ("cert_kind", Json::Str(self.cert_kind.clone())),
            ("cert_size", Json::Int(self.cert_size as i64)),
            ("cert_digest", Json::Str(self.cert_digest.clone())),
            ("refine_simplex_calls", Json::Int(self.stats.refine_simplex_calls as i64)),
            ("synth_systems_solved", Json::Int(self.stats.synth_systems_solved as i64)),
            ("synth_branches_explored", Json::Int(self.stats.synth_branches_explored as i64)),
            ("synth_branches_pruned", Json::Int(self.stats.synth_branches_pruned as i64)),
            ("synth_cores_learned", Json::Int(self.stats.synth_cores_learned as i64)),
            ("synth_memo_hits", Json::Int(self.stats.synth_memo_hits as i64)),
        ])
    }
}

/// Rounds to three decimal places, the precision every report emits
/// wall-clock and rate fields at.
pub fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// Renders milliseconds for humans: seconds above one second.
pub fn format_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else {
        format!("{ms:.1} ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_core::{run_job, CancellationToken, CegarConfig, JobSpec};
    use pathinv_ir::parse_program;

    #[test]
    fn engine_rank_orders_cegar_first_and_shims_last() {
        assert!(engine_rank("cegar", "path-invariants") < engine_rank("cegar", "path-predicates"));
        assert!(engine_rank("cegar", "path-predicates") < engine_rank("bmc", NO_REFINER));
        assert!(engine_rank("bmc", NO_REFINER) < engine_rank("pdr", NO_REFINER));
        assert_eq!(engine_rank("panic-shim", NO_REFINER), 4);
    }

    #[test]
    fn from_outcome_projects_the_job_and_leaves_audit_empty() {
        let program = parse_program("proc ok(x: int) { x = 1; assert(x == 1); }").unwrap();
        let engine = EngineSpec::Cegar(CegarConfig::path_invariants());
        let outcome = run_job(&JobSpec::new(engine.clone()), &program, &CancellationToken::new());
        let report = TaskReport::from_outcome("demo".to_string(), &engine, &outcome);
        assert_eq!(report.verdict, "safe");
        assert_eq!(report.engine_label(), "cegar/path-invariants");
        assert_eq!(report.cert_kind, "inductive");
        assert_eq!(report.cert_digest.len(), 16);
        assert!(report.cert_verdict.is_empty(), "audit fields are filled by the harness");
        let golden = report.to_golden_task_json();
        assert_eq!(golden.get("verdict").and_then(Json::as_str), Some("safe"));
        assert!(golden.get("wall_ms").is_none(), "goldens carry no wall-clock");
    }
}
