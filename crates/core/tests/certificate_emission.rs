//! Engine-level certificate emission contract:
//!
//! * every conclusive verdict (`Safe`/`Unsafe`) carries a certificate of the
//!   matching polarity, and the independent `pathinv-check` crate validates
//!   it;
//! * every inconclusive verdict (`Unknown`/`Cancelled`) carries none — an
//!   engine that claims nothing has nothing to certify.
//!
//! The full 16-program corpus sweep lives in the workspace-root test
//! `tests/certificates.rs`; this file pins the contract per engine on the
//! canonical paper programs, where a failure is easiest to localize.

use pathinv_check::{check_certificate, CheckLimits};
use pathinv_core::{
    BmcConfig, BmcEngine, CancellationToken, PdrEngine, Verdict, VerificationEngine, Verifier,
};
use pathinv_ir::{corpus, parse_program, Program};

/// Asserts the emission contract on one engine result and, for conclusive
/// verdicts, validates the certificate independently.
fn assert_contract(program: &Program, result: &pathinv_core::VerificationResult, label: &str) {
    match &result.verdict {
        Verdict::Safe => {
            let cert = result
                .certificate
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: Safe verdict must carry a certificate"));
            assert!(cert.claims_safety(), "{label}: Safe verdict carries a trace certificate");
            let v = check_certificate(program, cert, &CheckLimits::default());
            assert!(v.is_valid(), "{label}: certificate rejected: {:?}", v.reason());
        }
        Verdict::Unsafe { .. } => {
            let cert = result
                .certificate
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: Unsafe verdict must carry a certificate"));
            assert!(!cert.claims_safety(), "{label}: Unsafe verdict carries a safety certificate");
            let v = check_certificate(program, cert, &CheckLimits::default());
            assert!(v.is_valid(), "{label}: certificate rejected: {:?}", v.reason());
        }
        Verdict::Unknown { .. } | Verdict::Cancelled => {
            assert!(
                result.certificate.is_none(),
                "{label}: inconclusive verdict must not carry a certificate"
            );
        }
    }
}

#[test]
fn cegar_safe_proof_is_certified() {
    let p = corpus::forward();
    let result = Verifier::path_invariants().verify(&p).unwrap();
    assert!(result.verdict.is_safe(), "{:?}", result.verdict);
    assert_contract(&p, &result, "cegar/FORWARD");
}

#[test]
fn cegar_counterexample_is_certified() {
    let p = corpus::figure4_program();
    let result = Verifier::path_invariants().verify(&p).unwrap();
    assert!(result.verdict.is_unsafe(), "{:?}", result.verdict);
    assert_contract(&p, &result, "cegar/FIGURE4");
}

#[test]
fn cegar_unknown_emits_no_certificate() {
    let p = corpus::forward();
    let result = Verifier::path_predicates(4).verify(&p).unwrap();
    assert!(matches!(result.verdict, Verdict::Unknown { .. }), "{:?}", result.verdict);
    assert_contract(&p, &result, "cegar-pp/FORWARD");
}

#[test]
fn cancelled_runs_emit_no_certificate() {
    let p = corpus::forward();
    let token = CancellationToken::new();
    token.cancel();
    for engine in [pathinv_core::engine_named("cegar"), pathinv_core::engine_named("bmc")] {
        let engine = engine.unwrap();
        let result = engine.verify_with_cancel(&p, &token).unwrap();
        assert!(
            matches!(result.verdict, Verdict::Cancelled),
            "{}: {:?}",
            engine.name(),
            result.verdict
        );
        assert_contract(&p, &result, engine.name());
    }
}

#[test]
fn bmc_bounded_proof_is_certified() {
    let p = parse_program(
        "proc ok(a: int[]) {
            var i: int;
            for (i = 0; i < 2; i++) { a[i] = 7; }
            assert(a[0] == 7);
        }",
    )
    .unwrap();
    let result = BmcEngine::default().verify(&p).unwrap();
    assert!(result.verdict.is_safe(), "{:?}", result.verdict);
    assert_contract(&p, &result, "bmc/bounded-loop");
}

#[test]
fn bmc_unreachable_error_proof_is_certified_without_search() {
    let p = parse_program("proc ok(x: int) { x = 1; }").unwrap();
    let result = BmcEngine::default().verify(&p).unwrap();
    assert!(result.verdict.is_safe(), "{:?}", result.verdict);
    assert_contract(&p, &result, "bmc/no-assert");
}

#[test]
fn bmc_counterexample_is_certified() {
    let p = corpus::figure4_program();
    let result = BmcEngine::default().verify(&p).unwrap();
    assert!(result.verdict.is_unsafe(), "{:?}", result.verdict);
    assert_contract(&p, &result, "bmc/FIGURE4");
}

#[test]
fn bmc_unknown_at_depth_emits_no_certificate() {
    let p = corpus::forward();
    let result = BmcEngine::new(BmcConfig { max_depth: 8, max_checks: 400 }).verify(&p).unwrap();
    assert!(matches!(result.verdict, Verdict::Unknown { .. }), "{:?}", result.verdict);
    assert_contract(&p, &result, "bmc/FORWARD");
}

#[test]
fn pdr_safe_frame_is_certified() {
    let p = parse_program("proc ok(x: int) { x = 1; assert(x == 1); }").unwrap();
    let result = PdrEngine::default().verify(&p).unwrap();
    assert!(result.verdict.is_safe(), "{:?}", result.verdict);
    assert_contract(&p, &result, "pdr/straight-line");
}

#[test]
fn pdr_counterexample_is_certified() {
    let p = parse_program(
        "proc bug(n: int) {
            var i: int; var s: int;
            assume(n > 0);
            i = 0; s = 1;
            while (i < n) { s = s + 1; i = i + 1; }
            assert(s == n);
        }",
    )
    .unwrap();
    let result = PdrEngine::default().verify(&p).unwrap();
    assert!(result.verdict.is_unsafe(), "{:?}", result.verdict);
    assert_contract(&p, &result, "pdr/loop-bug");
}

#[test]
fn pdr_unreachable_error_proof_is_certified() {
    let p = parse_program("proc ok(x: int) { x = 1; }").unwrap();
    let result = PdrEngine::default().verify(&p).unwrap();
    assert!(result.verdict.is_safe(), "{:?}", result.verdict);
    assert_contract(&p, &result, "pdr/no-assert");
}
