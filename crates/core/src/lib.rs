//! # pathinv-core — the Path Invariants algorithm
//!
//! This crate contains the paper's primary contribution:
//!
//! * [`pathprog`] — construction of *path programs* from spurious
//!   counterexample paths (§3): the smallest syntactic sub-program containing
//!   the path, with hatted loop copies so that all loop unwindings are
//!   represented.
//! * [`predabs`] — cartesian predicate abstraction with location-local
//!   predicates, the abstraction the CEGAR loop refines (§4.1).
//! * [`refine`] — the two refiners: the BLAST-style finite-path baseline and
//!   the path-invariant refiner that synthesises invariants for the path
//!   program and tracks their atoms.
//! * [`cegar`] — the CEGAR driver (abstract reachability tree,
//!   counterexample feasibility, refinement) with a pluggable refiner.
//!
//! Around the paper's algorithm the crate grew an engine portfolio behind
//! one interface:
//!
//! * [`engine`] — the [`VerificationEngine`] trait every algorithm
//!   implements, with its soundness contract (DESIGN.md §8).
//! * [`bmc`] — a bounded model checker: depth-first loop unrolling over the
//!   SSA-encoded CFG with incremental solver push/pop.
//! * [`pdr`] — PDR-lite: property-directed reachability over frames of
//!   predicate clauses, generalized by literal dropping and Farkas
//!   interpolants.
//! * [`job`] — the fault-isolated job abstraction every harness shares:
//!   panic containment, wall-clock deadlines, fault-injection engine shims,
//!   and the stable job fingerprint keying the persistent verdict cache.
//!
//! ## Quick start
//!
//! ```
//! use pathinv_core::Verifier;
//! use pathinv_ir::parse_program;
//!
//! let program = parse_program(
//!     "proc double(n: int) {
//!          var i: int; var j: int;
//!          assume(n >= 0);
//!          i = 0; j = 0;
//!          while (i < n) { j = j + 2; i = i + 1; }
//!          assert(j == 2 * n);
//!      }",
//! )?;
//! let result = Verifier::path_invariants().verify(&program)?;
//! assert!(result.verdict.is_safe());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod bmc;
pub mod cegar;
pub mod engine;
pub mod error;
pub mod job;
pub mod pathprog;
pub mod pdr;
pub mod predabs;
pub mod refine;

pub use bmc::{BmcConfig, BmcEngine};
pub use cegar::{CegarConfig, RefinerKind, Verdict, VerificationResult, Verifier, VerifierStats};
pub use engine::{engine_named, verdict_name, VerificationEngine};
pub use error::{CoreError, CoreResult};
pub use job::{
    job_fingerprint, program_structure_id, refiner_name, run_job, EngineSpec, JobOutcome, JobSpec,
    NO_REFINER,
};
pub use pathprog::{path_program, PathProgram};
pub use pdr::{PdrConfig, PdrEngine};
pub use predabs::{AbstractPost, AbstractState, PostStats, PredicateMap};
pub use refine::{NewPredicates, PathInvariantRefiner, PathPredicateRefiner, Refiner};

// Part of the `VerificationEngine::verify_with_cancel` signature, re-exported
// so harnesses need not depend on `pathinv-smt` just to build a token.
pub use pathinv_smt::CancellationToken;
// Certificate types appear in `VerificationResult`; re-exported so engine
// consumers need not name the checker crate just to inspect a result.
pub use pathinv_check::{CertVerdict, Certificate};
