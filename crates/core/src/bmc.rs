//! Bounded model checking by loop unrolling over the control-flow graph.
//!
//! The engine enumerates program paths depth-first up to a configurable
//! depth, building the SSA path formula *incrementally*: every transition
//! taken pushes one assumption frame onto a
//! [`SolverContext`] and checks satisfiability of the stack, so an
//! infeasible prefix prunes its whole subtree and backtracking is a single
//! [`pop`](SolverContext::pop).  This is the classic unrolling view of BMC
//! specialised to CFGs: a path reaching the error location with a
//! satisfiable stack *is* a concrete counterexample (the stack is exactly
//! the path formula of §2.1), and if the exploration exhausts every path
//! without truncating any at the depth bound, the program has finitely many
//! paths and the error location is unreachable — a proof.
//!
//! BMC complements the CEGAR engine: it needs no abstraction and no
//! refinement, finds shallow bugs quickly, and proves programs whose loops
//! are concretely bounded; but on an unbounded loop it can only answer
//! [`Verdict::Unknown`] at its depth bound, which is why the differential
//! harness treats a bounded `Unknown` as "no opinion", never as a
//! disagreement.
//!
//! # Example
//!
//! ```
//! use pathinv_core::{BmcEngine, VerificationEngine};
//! use pathinv_ir::parse_program;
//!
//! // A concretely bounded loop: BMC both falsifies the bug and *proves*
//! // the fixed version, because every path is shorter than the bound.
//! let buggy = parse_program(
//!     "proc b(a: int[]) {
//!          var i: int;
//!          for (i = 0; i < 2; i++) { a[i] = 7; }
//!          assert(a[0] == 0);
//!      }",
//! )?;
//! let result = BmcEngine::default().verify(&buggy)?;
//! assert!(result.verdict.is_unsafe());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cegar::{Verdict, VerificationResult, VerifierStats, CEX_INTEGRALITY_NODES};
use crate::engine::VerificationEngine;
use crate::error::{CoreError, CoreResult};
use crate::predabs::PredicateMap;
use pathinv_check::{decode_model, BoundedCert, Certificate};
use pathinv_ir::ssa::{encode_action, VersionMap};
use pathinv_ir::{ssa, Formula, Loc, Path, Program, TransId};
use pathinv_smt::{stats_snapshot, CancellationToken, IntSatResult, Solver, SolverContext};

/// Configuration of the bounded model checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BmcConfig {
    /// Maximum number of transitions along any explored path.  Paths cut off
    /// at this bound make the exploration incomplete, so a run that finds no
    /// counterexample but truncated at least one path reports
    /// [`Verdict::Unknown`] instead of `Safe`.
    pub max_depth: usize,
    /// Budget of feasibility checks (one per explored transition with a
    /// non-trivial constraint).  Exhausting it is resource exhaustion and
    /// yields [`Verdict::Unknown`]; it bounds the exponential worst case of
    /// programs with branching loop bodies.
    pub max_checks: u64,
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig { max_depth: 26, max_checks: 1200 }
    }
}

impl BmcConfig {
    /// A configuration with the given depth bound and the default check
    /// budget.
    pub fn with_depth(max_depth: usize) -> BmcConfig {
        BmcConfig { max_depth, ..BmcConfig::default() }
    }
}

/// The bounded-model-checking engine.  See the [module docs](self).
#[derive(Clone, Copy, Debug, Default)]
pub struct BmcEngine {
    config: BmcConfig,
}

impl BmcEngine {
    /// Creates a bounded model checker with the given configuration.
    pub fn new(config: BmcConfig) -> BmcEngine {
        BmcEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &BmcConfig {
        &self.config
    }
}

/// One frame of the depth-first exploration: a location, the SSA versions in
/// effect there, and the index of the next outgoing transition to try.
struct SearchFrame {
    loc: Loc,
    versions: VersionMap,
    next_out: usize,
}

/// Why the search loop stopped.
enum SearchOutcome {
    /// Every path was explored (none truncated): the program is safe.
    Exhausted,
    /// Exploration was cut off at the depth bound on at least one path.
    Truncated,
    /// A feasible error path was found, with its decoded trace certificate.
    Counterexample(Path, Certificate),
}

impl VerificationEngine for BmcEngine {
    fn name(&self) -> &'static str {
        "bmc"
    }

    fn verify_with_cancel(
        &self,
        program: &Program,
        token: &CancellationToken,
    ) -> CoreResult<VerificationResult> {
        let _ambient = token.install();
        let smt_start = stats_snapshot();
        let mut search = Search::new(program, self.config);
        let (verdict, certificate) = match search.run(token) {
            Ok(SearchOutcome::Counterexample(path, cert)) => (Verdict::Unsafe { path }, Some(cert)),
            // An exhausted exploration is certified by its depth bound: the
            // checker re-unrolls to that depth and re-refutes every error
            // path and every truncation point.
            Ok(SearchOutcome::Exhausted) => (
                Verdict::Safe,
                Some(Certificate::BoundedUnroll(BoundedCert { depth: self.config.max_depth })),
            ),
            Ok(SearchOutcome::Truncated) => (
                Verdict::Unknown {
                    reason: format!(
                        "bounded exploration to depth {} found no counterexample but truncated \
                         at least one path",
                        self.config.max_depth
                    ),
                },
                None,
            ),
            Err(e) => {
                if e.is_cancellation() {
                    (Verdict::Cancelled, None)
                } else if e.is_resource_exhaustion() {
                    (Verdict::Unknown { reason: e.to_string() }, None)
                } else {
                    return Err(e);
                }
            }
        };
        let delta = stats_snapshot().since(&smt_start);
        let ctx_stats = search.ctx.stats();
        let stats = VerifierStats {
            solver_calls: delta.sat_checks,
            simplex_calls: delta.simplex_calls,
            simplex_warm_checks: delta.simplex_warm_checks,
            interpolant_calls: delta.interpolant_calls,
            smt_queries: ctx_stats.queries,
            query_cache_hits: ctx_stats.cache_hits,
            engine_depth: search.deepest as u64,
            engine_nodes: search.expansions,
            ..VerifierStats::default()
        };
        Ok(VerificationResult {
            verdict,
            refinements: 0,
            predicates: 0,
            art_nodes: 0,
            predicate_map: PredicateMap::new(),
            certificate,
            stats,
        })
    }
}

/// The depth-first search state.  Splitting it out of the trait method keeps
/// the counters accessible after an early `?` return.
struct Search<'p> {
    program: &'p Program,
    config: BmcConfig,
    /// The incremental context holding the SSA constraints of the current
    /// path prefix, one assumption frame per transition.  BMC stacks are
    /// never revisited, so the keyed cache would only burn memory — the
    /// uncached context is used on purpose.
    ctx: SolverContext,
    /// Transition ids of the current path prefix (parallel to the non-root
    /// search frames).
    steps: Vec<TransId>,
    deepest: usize,
    expansions: u64,
    checks: u64,
    truncated: bool,
}

impl<'p> Search<'p> {
    fn new(program: &'p Program, config: BmcConfig) -> Search<'p> {
        Search {
            program,
            config,
            ctx: SolverContext::uncached(),
            steps: Vec::new(),
            deepest: 0,
            expansions: 0,
            checks: 0,
            truncated: false,
        }
    }

    fn run(&mut self, token: &CancellationToken) -> CoreResult<SearchOutcome> {
        let program = self.program;
        // Syntactically unreachable error locations need no search at all.
        if !program.reachable_locs().contains(&program.error()) {
            return Ok(SearchOutcome::Exhausted);
        }
        if program.entry() == program.error() {
            // Degenerate: every initial state is an error state, but a
            // counterexample `Path` needs at least one transition.
            return Err(CoreError::Limit {
                message: "the entry location is the error location".to_string(),
            });
        }
        let mut initial_versions = VersionMap::new();
        for d in program.vars() {
            initial_versions.insert(d.sym, 0);
        }
        let mut frames =
            vec![SearchFrame { loc: program.entry(), versions: initial_versions, next_out: 0 }];
        while let Some((loc, next_out)) = frames.last().map(|f| (f.loc, f.next_out)) {
            // Same granularity as the check-budget accounting below: one
            // poll per transition unrolling.
            token.check().map_err(CoreError::from)?;
            // A frame at the depth bound with outgoing transitions cannot be
            // expanded: the exploration is no longer exhaustive.
            if self.steps.len() >= self.config.max_depth && !program.outgoing(loc).is_empty() {
                self.truncated = true;
                Self::backtrack(&mut frames, &mut self.steps, &mut self.ctx);
                continue;
            }
            let Some(&tid) = program.outgoing(loc).get(next_out) else {
                Self::backtrack(&mut frames, &mut self.steps, &mut self.ctx);
                continue;
            };
            let top = frames.last_mut().expect("frame checked above");
            top.next_out += 1;
            let t = program.transition(tid);
            let mut versions = top.versions.clone();
            let constraint = encode_action(&t.action, &mut versions);
            self.expansions += 1;
            self.ctx.push();
            let trivial = matches!(constraint, Formula::True);
            self.ctx.assume(constraint);
            // A trivial constraint leaves the stack equisatisfiable, and the
            // search only ever stands on satisfiable prefixes — skip the
            // solver for those steps.
            let feasible = if trivial {
                true
            } else {
                self.checks += 1;
                if self.checks > self.config.max_checks {
                    return Err(CoreError::Limit {
                        message: format!(
                            "bounded model checking exceeded {} feasibility checks",
                            self.config.max_checks
                        ),
                    });
                }
                self.ctx.is_sat().map_err(CoreError::from)?
            };
            if !feasible {
                self.ctx.pop();
                continue;
            }
            if t.to == program.error() {
                let mut steps = self.steps.clone();
                steps.push(tid);
                self.deepest = self.deepest.max(steps.len());
                let path = Path::new(program, steps).map_err(CoreError::from)?;
                // The stack is only rationally satisfiable — a relaxation
                // for this integer-valued language.  Certify the path over
                // the integers before reporting it; an integrally
                // infeasible error edge is pruned like any other infeasible
                // step, and an undecided one degrades the exploration to
                // inexhaustive (unknown, never a wrong verdict).
                let pf = ssa::path_formula(program, &path);
                match Solver::new()
                    .check_integral(&pf.conjunction(), CEX_INTEGRALITY_NODES)
                    .map_err(CoreError::from)?
                {
                    IntSatResult::Sat(model) => {
                        // Decode through the shared decoder — the same SSA
                        // conventions as every other engine's trace.
                        let cert = Certificate::Trace(decode_model(program, &path, &pf, &model));
                        return Ok(SearchOutcome::Counterexample(path, cert));
                    }
                    IntSatResult::Unsat => {
                        self.ctx.pop();
                        continue;
                    }
                    IntSatResult::Unknown => {
                        self.truncated = true;
                        self.ctx.pop();
                        continue;
                    }
                }
            }
            self.steps.push(tid);
            self.deepest = self.deepest.max(self.steps.len());
            frames.push(SearchFrame { loc: t.to, versions, next_out: 0 });
        }
        Ok(if self.truncated { SearchOutcome::Truncated } else { SearchOutcome::Exhausted })
    }

    /// Pops the deepest search frame and, for non-root frames, the matching
    /// context frame and path step.
    fn backtrack(frames: &mut Vec<SearchFrame>, steps: &mut Vec<TransId>, ctx: &mut SolverContext) {
        frames.pop();
        if !frames.is_empty() {
            ctx.pop();
            steps.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathinv_ir::{corpus, parse_program};

    #[test]
    fn straight_line_verdicts_are_definitive() {
        let safe = parse_program("proc ok(x: int) { x = 1; assert(x == 1); }").unwrap();
        let result = BmcEngine::default().verify(&safe).unwrap();
        assert!(result.verdict.is_safe(), "{:?}", result.verdict);
        let buggy = parse_program("proc bug(x: int) { x = 1; assert(x == 2); }").unwrap();
        let result = BmcEngine::default().verify(&buggy).unwrap();
        assert!(result.verdict.is_unsafe(), "{:?}", result.verdict);
    }

    #[test]
    fn bounded_loop_bug_yields_a_concrete_counterexample() {
        let p = parse_program(
            "proc b(a: int[]) {
                var i: int;
                for (i = 0; i < 2; i++) { a[i] = 7; }
                assert(a[0] == 0);
            }",
        )
        .unwrap();
        let result = BmcEngine::default().verify(&p).unwrap();
        let Verdict::Unsafe { path } = &result.verdict else {
            panic!("expected a counterexample: {:?}", result.verdict);
        };
        assert!(path.is_error_path(&p));
        assert!(result.stats.engine_nodes > 0);
    }

    #[test]
    fn concretely_bounded_safe_loop_is_proved() {
        let p = parse_program(
            "proc ok(a: int[]) {
                var i: int;
                for (i = 0; i < 2; i++) { a[i] = 7; }
                assert(a[0] == 7);
            }",
        )
        .unwrap();
        let result = BmcEngine::default().verify(&p).unwrap();
        assert!(result.verdict.is_safe(), "{:?}", result.verdict);
    }

    #[test]
    fn unbounded_safe_loop_is_unknown_at_the_bound() {
        let p = corpus::forward();
        let result = BmcEngine::new(BmcConfig { max_depth: 8, max_checks: 400 }).verify(&p);
        let result = result.unwrap();
        match &result.verdict {
            Verdict::Unknown { reason } => {
                assert!(
                    reason.contains("depth") || reason.contains("checks"),
                    "unexpected reason: {reason}"
                );
            }
            other => panic!("FORWARD must not be settled by bounded unrolling: {other:?}"),
        }
        assert!(result.stats.engine_depth > 0);
    }

    #[test]
    fn check_budget_exhaustion_is_unknown_not_an_error() {
        let p = corpus::forward();
        let result = BmcEngine::new(BmcConfig { max_depth: 26, max_checks: 5 }).verify(&p).unwrap();
        match &result.verdict {
            Verdict::Unknown { reason } => assert!(reason.contains("feasibility checks")),
            other => panic!("a tiny budget must give up: {other:?}"),
        }
    }

    #[test]
    fn figure4_bug_is_found() {
        let p = corpus::figure4_program();
        let result = BmcEngine::default().verify(&p).unwrap();
        assert!(result.verdict.is_unsafe(), "{:?}", result.verdict);
    }

    #[test]
    fn syntactically_unreachable_error_is_safe_without_search() {
        let p = parse_program("proc ok(x: int) { x = 1; }").unwrap();
        let result = BmcEngine::default().verify(&p).unwrap();
        assert!(result.verdict.is_safe());
        assert_eq!(result.stats.engine_nodes, 0);
    }
}
